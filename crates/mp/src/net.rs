//! The asynchronous message-passing substrate: FIFO channels, adversarial
//! seeded scheduling, fault injection.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_topology::{Graph, NodeId};
use std::collections::VecDeque;
use std::fmt::Debug;

/// A directed link `(from, to)` between neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Sending endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

/// Messages a node wants to transmit, collected during a handler call.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(NodeId, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues `msg` for transmission to neighbour `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.msgs.push((to, msg));
    }
}

/// A node of the message-passing model: reacts to received messages and to
/// local timeouts (its only spontaneous action source).
pub trait MpNode {
    /// Wire message type.
    type Msg: Clone + Debug;

    /// Handles a message delivered from a neighbour.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Handles a local timeout (retransmissions, spontaneous moves).
    fn on_timeout(&mut self, out: &mut Outbox<Self::Msg>);

    /// Whether the node has pending local work (used for quiescence
    /// detection together with empty channels).
    fn is_idle(&self) -> bool;
}

/// Scheduler event chosen at each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// Deliver the head message of a link.
    Deliver(LinkId),
    /// Fire a node's timeout.
    Timeout(NodeId),
}

/// Configuration of the substrate's scheduler.
#[derive(Debug, Clone, Copy)]
pub struct MpConfig {
    /// RNG seed (schedule + fault injection).
    pub seed: u64,
    /// Probability that a step is a timeout rather than a delivery when
    /// both are possible (models relative speed of links vs local clocks).
    pub timeout_bias: f64,
}

impl Default for MpConfig {
    fn default() -> Self {
        MpConfig {
            seed: 0,
            timeout_bias: 0.3,
        }
    }
}

/// Transient link-level fault budgets: while a budget lasts, each delivery
/// may (seeded coin per opportunity) drop the message, duplicate it, or
/// deliver out of FIFO order. Budgets are *transient* by construction —
/// once exhausted the channels are reliable again, which is what lets a
/// test quantify over the post-fault suffix (messages sent after the last
/// link fault) exactly like the state-model fault plans do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFaults {
    /// RNG seed of the fault coin (independent of the scheduler's).
    pub seed: u64,
    /// Remaining message drops.
    pub drop: u32,
    /// Remaining duplications.
    pub duplicate: u32,
    /// Remaining reorders (deliver a random non-head channel slot).
    pub reorder: u32,
}

impl ChannelFaults {
    /// A budget of `k` faults of each kind.
    pub fn budget(seed: u64, k: u32) -> Self {
        ChannelFaults {
            seed,
            drop: k,
            duplicate: k,
            reorder: k,
        }
    }

    /// Whether every budget is spent.
    pub fn exhausted(&self) -> bool {
        self.drop == 0 && self.duplicate == 0 && self.reorder == 0
    }
}

struct FaultState {
    budgets: ChannelFaults,
    rng: ChaCha8Rng,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
}

/// The asynchronous network: nodes plus FIFO channels per directed edge.
pub struct MpNetwork<N: MpNode> {
    graph: Graph,
    nodes: Vec<N>,
    /// `channels[i]` is the FIFO queue of link `links[i]`.
    links: Vec<LinkId>,
    channels: Vec<VecDeque<N::Msg>>,
    rng: ChaCha8Rng,
    config: MpConfig,
    faults: Option<FaultState>,
    steps: u64,
    delivered_msgs: u64,
    timeouts: u64,
}

impl<N: MpNode> MpNetwork<N> {
    /// Builds the network from per-node states.
    pub fn new(graph: Graph, nodes: Vec<N>, config: MpConfig) -> Self {
        assert_eq!(nodes.len(), graph.n());
        let mut links = Vec::new();
        for &(p, q) in graph.edges() {
            links.push(LinkId { from: p, to: q });
            links.push(LinkId { from: q, to: p });
        }
        let channels = vec![VecDeque::new(); links.len()];
        MpNetwork {
            graph,
            nodes,
            links,
            channels,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
            faults: None,
            steps: 0,
            delivered_msgs: 0,
            timeouts: 0,
        }
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Immutable access to a node.
    pub fn node(&self, p: NodeId) -> &N {
        &self.nodes[p]
    }

    /// Mutable access to a node (fault injection, higher-layer input).
    pub fn node_mut(&mut self, p: NodeId) -> &mut N {
        &mut self.nodes[p]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Steps executed (deliveries + timeouts).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Wire messages delivered so far.
    pub fn delivered_msgs(&self) -> u64 {
        self.delivered_msgs
    }

    /// Timeouts fired so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Messages currently in flight across all channels.
    pub fn in_flight(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    /// Installs transient link-fault budgets. Each subsequent delivery
    /// opportunity flips a seeded coin per remaining budget; once all
    /// budgets are spent the channels are reliable again.
    pub fn set_channel_faults(&mut self, faults: ChannelFaults) {
        self.faults = Some(FaultState {
            rng: ChaCha8Rng::seed_from_u64(faults.seed),
            budgets: faults,
            dropped: 0,
            duplicated: 0,
            reordered: 0,
        });
    }

    /// Remaining fault budgets, if faults are installed.
    pub fn channel_faults(&self) -> Option<ChannelFaults> {
        self.faults.as_ref().map(|f| f.budgets)
    }

    /// True when no further link fault can occur (none installed, or all
    /// budgets spent). The post-fault suffix of the execution starts here.
    pub fn channel_faults_exhausted(&self) -> bool {
        self.faults.as_ref().is_none_or(|f| f.budgets.exhausted())
    }

    /// `(dropped, duplicated, reordered)` wire messages so far.
    pub fn channel_fault_counts(&self) -> (u64, u64, u64) {
        self.faults
            .as_ref()
            .map_or((0, 0, 0), |f| (f.dropped, f.duplicated, f.reordered))
    }

    /// Injects a message into a channel (fault injection: the initial
    /// configuration may contain arbitrary in-flight messages).
    pub fn inject_wire(&mut self, link: LinkId, msg: N::Msg) {
        let idx = self
            .links
            .iter()
            .position(|l| *l == link)
            .expect("link must exist");
        self.channels[idx].push_back(msg);
    }

    fn link_index(&self, from: NodeId, to: NodeId) -> usize {
        self.links
            .iter()
            .position(|l| l.from == from && l.to == to)
            .expect("messages may only be sent to neighbours")
    }

    fn flush_outbox(&mut self, from: NodeId, out: Outbox<N::Msg>) {
        for (to, msg) in out.msgs {
            let idx = self.link_index(from, to);
            self.channels[idx].push_back(msg);
        }
    }

    /// Pops the next message of channel `idx`, applying link faults while
    /// budgets remain. Returns `None` when the message was dropped on the
    /// wire (the step still counts; nothing is delivered).
    fn pop_with_faults(&mut self, idx: usize) -> Option<N::Msg> {
        let Some(fs) = self.faults.as_mut() else {
            return Some(self.channels[idx].pop_front().expect("busy link"));
        };
        let len = self.channels[idx].len();
        let msg = if fs.budgets.reorder > 0 && len >= 2 && fs.rng.gen_bool(0.5) {
            fs.budgets.reorder -= 1;
            fs.reordered += 1;
            let at = fs.rng.gen_range(1..len);
            self.channels[idx].remove(at).expect("index in range")
        } else {
            self.channels[idx].pop_front().expect("busy link")
        };
        if fs.budgets.drop > 0 && fs.rng.gen_bool(0.5) {
            fs.budgets.drop -= 1;
            fs.dropped += 1;
            return None;
        }
        if fs.budgets.duplicate > 0 && fs.rng.gen_bool(0.5) {
            fs.budgets.duplicate -= 1;
            fs.duplicated += 1;
            self.channels[idx].push_back(msg.clone());
        }
        Some(msg)
    }

    /// Executes one scheduler step. Returns the event, or `None` if the
    /// system is fully quiescent (no in-flight messages, all nodes idle).
    pub fn step(&mut self) -> Option<SchedulerEvent> {
        let busy_links: Vec<usize> = (0..self.channels.len())
            .filter(|&i| !self.channels[i].is_empty())
            .collect();
        let busy_nodes: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&p| !self.nodes[p].is_idle())
            .collect();
        let event = if busy_links.is_empty() && busy_nodes.is_empty() {
            return None;
        } else if busy_links.is_empty() {
            SchedulerEvent::Timeout(busy_nodes[self.rng.gen_range(0..busy_nodes.len())])
        } else if busy_nodes.is_empty() {
            SchedulerEvent::Deliver(self.links[busy_links[self.rng.gen_range(0..busy_links.len())]])
        } else if self.rng.gen_bool(self.config.timeout_bias) {
            SchedulerEvent::Timeout(busy_nodes[self.rng.gen_range(0..busy_nodes.len())])
        } else {
            SchedulerEvent::Deliver(self.links[busy_links[self.rng.gen_range(0..busy_links.len())]])
        };
        match event {
            SchedulerEvent::Deliver(link) => {
                let idx = self.link_index(link.from, link.to);
                if let Some(msg) = self.pop_with_faults(idx) {
                    let mut out = Outbox::new();
                    self.nodes[link.to].on_message(link.from, msg, &mut out);
                    self.flush_outbox(link.to, out);
                    self.delivered_msgs += 1;
                }
            }
            SchedulerEvent::Timeout(p) => {
                let mut out = Outbox::new();
                self.nodes[p].on_timeout(&mut out);
                self.flush_outbox(p, out);
                self.timeouts += 1;
            }
        }
        self.steps += 1;
        Some(event)
    }

    /// Runs until quiescence or `max_steps`. Returns true if quiescent.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if self.step().is_none() {
                return true;
            }
        }
        self.step().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    /// Echo node: replies `x+1` to every received value below a cap; one
    /// initial ping from its timeout.
    struct Echo {
        cap: u64,
        kick: bool,
        peer: NodeId,
        received: Vec<u64>,
    }

    impl MpNode for Echo {
        type Msg = u64;

        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            self.received.push(msg);
            if msg < self.cap {
                out.send(from, msg + 1);
            }
        }

        fn on_timeout(&mut self, out: &mut Outbox<u64>) {
            if self.kick {
                self.kick = false;
                out.send(self.peer, 0);
            }
        }

        fn is_idle(&self) -> bool {
            !self.kick
        }
    }

    #[test]
    fn ping_pong_terminates() {
        let g = gen::line(2);
        let nodes = vec![
            Echo {
                cap: 10,
                kick: true,
                peer: 1,
                received: vec![],
            },
            Echo {
                cap: 10,
                kick: false,
                peer: 0,
                received: vec![],
            },
        ];
        let mut net = MpNetwork::new(g, nodes, MpConfig::default());
        assert!(net.run_to_quiescence(1_000));
        // 0 → 1 → 2 → … → 10: eleven deliveries, alternating receivers.
        assert_eq!(net.delivered_msgs(), 11);
        assert_eq!(net.node(1).received, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(net.node(0).received, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn channels_are_fifo() {
        struct Sink {
            got: Vec<u64>,
        }
        impl MpNode for Sink {
            type Msg = u64;
            fn on_message(&mut self, _from: NodeId, msg: u64, _out: &mut Outbox<u64>) {
                self.got.push(msg);
            }
            fn on_timeout(&mut self, _out: &mut Outbox<u64>) {}
            fn is_idle(&self) -> bool {
                true
            }
        }
        let g = gen::line(2);
        let mut net = MpNetwork::new(
            g,
            vec![Sink { got: vec![] }, Sink { got: vec![] }],
            MpConfig::default(),
        );
        for v in 0..5 {
            net.inject_wire(LinkId { from: 0, to: 1 }, v);
        }
        assert!(net.run_to_quiescence(100));
        assert_eq!(net.node(1).got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn injected_garbage_is_delivered() {
        let g = gen::ring(3);
        let nodes = (0..3)
            .map(|p| Echo {
                cap: 0,
                kick: false,
                peer: p,
                received: vec![],
            })
            .collect();
        let mut net = MpNetwork::new(
            g,
            nodes,
            MpConfig {
                seed: 5,
                ..Default::default()
            },
        );
        net.inject_wire(LinkId { from: 0, to: 1 }, 99);
        net.inject_wire(LinkId { from: 2, to: 1 }, 98);
        assert!(net.run_to_quiescence(100));
        let mut got = net.node(1).received.clone();
        got.sort_unstable();
        assert_eq!(got, vec![98, 99]);
    }

    #[test]
    fn scheduler_is_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, u64) {
            let g = gen::line(2);
            let nodes = vec![
                Echo {
                    cap: 50,
                    kick: true,
                    peer: 1,
                    received: vec![],
                },
                Echo {
                    cap: 50,
                    kick: false,
                    peer: 0,
                    received: vec![],
                },
            ];
            let mut net = MpNetwork::new(
                g,
                nodes,
                MpConfig {
                    seed,
                    ..Default::default()
                },
            );
            net.run_to_quiescence(10_000);
            (net.steps(), net.delivered_msgs())
        };
        assert_eq!(run(7), run(7));
    }
}
