//! The asynchronous message-passing substrate: FIFO channels, adversarial
//! seeded scheduling, fault injection.
//!
//! Since PR 5 the channel storage lives behind the [`Transport`] trait, so
//! the same node logic — and the same exactly-once property suite — runs
//! over the in-process [`ChannelTransport`] *and* over the socket-backed
//! transport in `crates/cluster`. The fault machinery ([`ChannelFaults`]
//! budgets applied by a [`FaultClerk`]) is shared too: a dropped frame on a
//! real Unix-domain socket and a dropped message on a simulated channel go
//! through the identical seeded decision procedure.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_topology::{Graph, NodeId};
use std::collections::VecDeque;
use std::fmt::Debug;

/// A directed link `(from, to)` between neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Sending endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

/// Messages a node wants to transmit, collected during a handler call.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(NodeId, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// An empty outbox. Public so external drivers (the cluster runtime's
    /// socket loop) can collect a node's sends without an `MpNetwork`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `msg` for transmission to neighbour `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Drains the collected `(to, msg)` sends in queue order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (NodeId, M)> {
        self.msgs.drain(..)
    }
}

/// A node of the message-passing model: reacts to received messages and to
/// local timeouts (its only spontaneous action source).
pub trait MpNode {
    /// Wire message type.
    type Msg: Clone + Debug;

    /// Handles a message delivered from a neighbour.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Handles a local timeout (retransmissions, spontaneous moves).
    fn on_timeout(&mut self, out: &mut Outbox<Self::Msg>);

    /// Whether the node has pending local work (used for quiescence
    /// detection together with empty channels).
    fn is_idle(&self) -> bool;
}

/// Scheduler event chosen at each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// Deliver the head message of a link.
    Deliver(LinkId),
    /// Fire a node's timeout.
    Timeout(NodeId),
}

/// Configuration of the substrate's scheduler.
#[derive(Debug, Clone, Copy)]
pub struct MpConfig {
    /// RNG seed (schedule + fault injection).
    pub seed: u64,
    /// Probability that a step is a timeout rather than a delivery when
    /// both are possible (models relative speed of links vs local clocks).
    pub timeout_bias: f64,
}

impl Default for MpConfig {
    fn default() -> Self {
        MpConfig {
            seed: 0,
            timeout_bias: 0.3,
        }
    }
}

/// Transient link-level fault budgets: while a budget lasts, each delivery
/// may (seeded coin per opportunity) drop the message, duplicate it, or
/// deliver out of FIFO order. Budgets are *transient* by construction —
/// once exhausted the channels are reliable again, which is what lets a
/// test quantify over the post-fault suffix (messages sent after the last
/// link fault) exactly like the state-model fault plans do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFaults {
    /// RNG seed of the fault coin (independent of the scheduler's).
    pub seed: u64,
    /// Remaining message drops.
    pub drop: u32,
    /// Remaining duplications.
    pub duplicate: u32,
    /// Remaining reorders (deliver a random non-head channel slot).
    pub reorder: u32,
}

impl ChannelFaults {
    /// A budget of `k` faults of each kind.
    pub fn budget(seed: u64, k: u32) -> Self {
        ChannelFaults {
            seed,
            drop: k,
            duplicate: k,
            reorder: k,
        }
    }

    /// Whether every budget is spent.
    pub fn exhausted(&self) -> bool {
        self.drop == 0 && self.duplicate == 0 && self.reorder == 0
    }
}

/// Applies [`ChannelFaults`] budgets to a FIFO queue of messages, one
/// delivery opportunity at a time. This is the single fault decision
/// procedure shared by every transport: the in-process channels, the
/// suite's socketpair transport, and the cluster runtime's per-link inbound
/// chaos shim all call [`FaultClerk::pull`] instead of `pop_front`.
#[derive(Debug)]
pub struct FaultClerk {
    budgets: ChannelFaults,
    rng: ChaCha8Rng,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
}

impl FaultClerk {
    /// A clerk with the given budgets (the clerk's RNG is seeded from
    /// `faults.seed`, independent of any scheduler RNG).
    pub fn new(faults: ChannelFaults) -> Self {
        FaultClerk {
            rng: ChaCha8Rng::seed_from_u64(faults.seed),
            budgets: faults,
            dropped: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// Takes the next message from `q`, applying link faults while budgets
    /// remain. Returns `None` when the message was dropped on the wire
    /// (the delivery opportunity still counts; nothing is delivered).
    ///
    /// Panics if `q` is empty — callers pull only from busy queues.
    pub fn pull<M: Clone>(&mut self, q: &mut VecDeque<M>) -> Option<M> {
        let len = q.len();
        let msg = if self.budgets.reorder > 0 && len >= 2 && self.rng.gen_bool(0.5) {
            self.budgets.reorder -= 1;
            self.reordered += 1;
            let at = self.rng.gen_range(1..len);
            q.remove(at).expect("index in range")
        } else {
            q.pop_front().expect("busy queue")
        };
        if self.budgets.drop > 0 && self.rng.gen_bool(0.5) {
            self.budgets.drop -= 1;
            self.dropped += 1;
            return None;
        }
        if self.budgets.duplicate > 0 && self.rng.gen_bool(0.5) {
            self.budgets.duplicate -= 1;
            self.duplicated += 1;
            q.push_back(msg.clone());
        }
        Some(msg)
    }

    /// Remaining budgets.
    pub fn budgets(&self) -> ChannelFaults {
        self.budgets
    }

    /// Whether every budget is spent.
    pub fn exhausted(&self) -> bool {
        self.budgets.exhausted()
    }

    /// `(dropped, duplicated, reordered)` messages so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.dropped, self.duplicated, self.reordered)
    }
}

/// A point-to-point frame transport between the nodes of one topology.
///
/// The contract is deliberately minimal — queue a message on a directed
/// link, enumerate links with something deliverable, take the next
/// deliverable message — so that both the simulated FIFO channels and a
/// real socket mesh fit behind it. Fault budgets are part of the trait
/// because the exactly-once suite quantifies over them: a transport that
/// cannot inject faults reports itself permanently exhausted.
pub trait Transport<M> {
    /// Queues `msg` on the directed link `link`. Panics (or silently
    /// refuses, for lossy real-world transports) when the link does not
    /// exist in the topology.
    fn send(&mut self, link: LinkId, msg: M);

    /// Advances any nonblocking machinery the transport owns: flush
    /// coalesced write buffers, poll readiness, run reconnect/heartbeat
    /// timers. Called once at the top of every scheduler step. The
    /// default is a no-op — purely in-memory transports (and transports
    /// whose I/O runs on background threads) have nothing to drive.
    fn drive(&mut self) {}

    /// Appends every link that currently has at least one deliverable
    /// message to `out` (cleared by the caller). For socket transports
    /// this drains readable OS buffers first, so "deliverable" means the
    /// frame physically crossed the wire.
    fn busy_links(&mut self, out: &mut Vec<LinkId>);

    /// Takes the next deliverable message on `link`, applying link faults
    /// while budgets remain. Returns `None` when the message was consumed
    /// by a fault (dropped). Panics if the link is not busy.
    fn recv(&mut self, link: LinkId) -> Option<M>;

    /// Messages currently in flight (sent but not yet received/dropped).
    fn in_flight(&self) -> usize;

    /// Installs transient link-fault budgets.
    fn set_faults(&mut self, faults: ChannelFaults);

    /// True when no further link fault can occur.
    fn faults_exhausted(&self) -> bool;

    /// `(dropped, duplicated, reordered)` messages so far.
    fn fault_counts(&self) -> (u64, u64, u64);
}

/// The in-process transport: one FIFO `VecDeque` per directed edge, with
/// an optional [`FaultClerk`] applying [`ChannelFaults`] budgets across
/// all links (global budgets, matching the pre-trait behaviour).
#[derive(Debug)]
pub struct ChannelTransport<M> {
    links: Vec<LinkId>,
    channels: Vec<VecDeque<M>>,
    clerk: Option<FaultClerk>,
}

impl<M: Clone> ChannelTransport<M> {
    /// Empty channels for every directed edge of `graph`.
    pub fn new(graph: &Graph) -> Self {
        let mut links = Vec::new();
        for &(p, q) in graph.edges() {
            links.push(LinkId { from: p, to: q });
            links.push(LinkId { from: q, to: p });
        }
        let channels = vec![VecDeque::new(); links.len()];
        ChannelTransport {
            links,
            channels,
            clerk: None,
        }
    }

    fn index(&self, link: LinkId) -> usize {
        self.links
            .iter()
            .position(|l| *l == link)
            .expect("messages may only be sent to neighbours")
    }
}

impl<M: Clone> Transport<M> for ChannelTransport<M> {
    fn send(&mut self, link: LinkId, msg: M) {
        let idx = self.index(link);
        self.channels[idx].push_back(msg);
    }

    fn busy_links(&mut self, out: &mut Vec<LinkId>) {
        for (i, c) in self.channels.iter().enumerate() {
            if !c.is_empty() {
                out.push(self.links[i]);
            }
        }
    }

    fn recv(&mut self, link: LinkId) -> Option<M> {
        let idx = self.index(link);
        match &mut self.clerk {
            Some(clerk) => clerk.pull(&mut self.channels[idx]),
            None => Some(self.channels[idx].pop_front().expect("busy link")),
        }
    }

    fn in_flight(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    fn set_faults(&mut self, faults: ChannelFaults) {
        self.clerk = Some(FaultClerk::new(faults));
    }

    fn faults_exhausted(&self) -> bool {
        self.clerk.as_ref().is_none_or(FaultClerk::exhausted)
    }

    fn fault_counts(&self) -> (u64, u64, u64) {
        self.clerk.as_ref().map_or((0, 0, 0), FaultClerk::counts)
    }
}

/// The asynchronous network: nodes plus a [`Transport`] carrying their
/// frames, driven by a seeded adversarial scheduler.
pub struct MpNetwork<N: MpNode, T: Transport<N::Msg> = ChannelTransport<<N as MpNode>::Msg>> {
    graph: Graph,
    nodes: Vec<N>,
    transport: T,
    rng: ChaCha8Rng,
    config: MpConfig,
    steps: u64,
    delivered_msgs: u64,
    timeouts: u64,
    busy_scratch: Vec<LinkId>,
}

impl<N: MpNode> MpNetwork<N> {
    /// Builds the network from per-node states over in-process channels.
    pub fn new(graph: Graph, nodes: Vec<N>, config: MpConfig) -> Self {
        let transport = ChannelTransport::new(&graph);
        Self::with_transport(graph, nodes, config, transport)
    }
}

impl<N: MpNode, T: Transport<N::Msg>> MpNetwork<N, T> {
    /// Builds the network from per-node states over an arbitrary transport
    /// (the cluster crate passes a socket-backed one here to run the same
    /// suite over real OS sockets).
    pub fn with_transport(graph: Graph, nodes: Vec<N>, config: MpConfig, transport: T) -> Self {
        assert_eq!(nodes.len(), graph.n());
        MpNetwork {
            graph,
            nodes,
            transport,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
            steps: 0,
            delivered_msgs: 0,
            timeouts: 0,
            busy_scratch: Vec::new(),
        }
    }

    /// The topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Immutable access to a node.
    pub fn node(&self, p: NodeId) -> &N {
        &self.nodes[p]
    }

    /// Mutable access to a node (fault injection, higher-layer input).
    pub fn node_mut(&mut self, p: NodeId) -> &mut N {
        &mut self.nodes[p]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Steps executed (deliveries + timeouts).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Wire messages delivered so far.
    pub fn delivered_msgs(&self) -> u64 {
        self.delivered_msgs
    }

    /// Timeouts fired so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Messages currently in flight across all channels.
    pub fn in_flight(&self) -> usize {
        self.transport.in_flight()
    }

    /// Installs transient link-fault budgets. Each subsequent delivery
    /// opportunity flips a seeded coin per remaining budget; once all
    /// budgets are spent the channels are reliable again.
    pub fn set_channel_faults(&mut self, faults: ChannelFaults) {
        self.transport.set_faults(faults);
    }

    /// True when no further link fault can occur (none installed, or all
    /// budgets spent). The post-fault suffix of the execution starts here.
    pub fn channel_faults_exhausted(&self) -> bool {
        self.transport.faults_exhausted()
    }

    /// `(dropped, duplicated, reordered)` wire messages so far.
    pub fn channel_fault_counts(&self) -> (u64, u64, u64) {
        self.transport.fault_counts()
    }

    /// Injects a message into a channel (fault injection: the initial
    /// configuration may contain arbitrary in-flight messages).
    pub fn inject_wire(&mut self, link: LinkId, msg: N::Msg) {
        assert!(self.graph.has_edge(link.from, link.to), "link must exist");
        self.transport.send(link, msg);
    }

    fn flush_outbox(&mut self, from: NodeId, out: Outbox<N::Msg>) {
        for (to, msg) in out.msgs {
            self.transport.send(LinkId { from, to }, msg);
        }
    }

    /// Executes one scheduler step. Returns the event, or `None` if the
    /// system is fully quiescent (no in-flight messages, all nodes idle).
    pub fn step(&mut self) -> Option<SchedulerEvent> {
        self.transport.drive();
        let mut busy_links = std::mem::take(&mut self.busy_scratch);
        busy_links.clear();
        self.transport.busy_links(&mut busy_links);
        let busy_nodes: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&p| !self.nodes[p].is_idle())
            .collect();
        let event = if busy_links.is_empty() && busy_nodes.is_empty() {
            self.busy_scratch = busy_links;
            return None;
        } else if busy_links.is_empty() {
            SchedulerEvent::Timeout(busy_nodes[self.rng.gen_range(0..busy_nodes.len())])
        } else if busy_nodes.is_empty() {
            SchedulerEvent::Deliver(busy_links[self.rng.gen_range(0..busy_links.len())])
        } else if self.rng.gen_bool(self.config.timeout_bias) {
            SchedulerEvent::Timeout(busy_nodes[self.rng.gen_range(0..busy_nodes.len())])
        } else {
            SchedulerEvent::Deliver(busy_links[self.rng.gen_range(0..busy_links.len())])
        };
        self.busy_scratch = busy_links;
        match event {
            SchedulerEvent::Deliver(link) => {
                if let Some(msg) = self.transport.recv(link) {
                    let mut out = Outbox::new();
                    self.nodes[link.to].on_message(link.from, msg, &mut out);
                    self.flush_outbox(link.to, out);
                    self.delivered_msgs += 1;
                }
            }
            SchedulerEvent::Timeout(p) => {
                let mut out = Outbox::new();
                self.nodes[p].on_timeout(&mut out);
                self.flush_outbox(p, out);
                self.timeouts += 1;
            }
        }
        self.steps += 1;
        Some(event)
    }

    /// Runs until quiescence or `max_steps`. Returns true if quiescent.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if self.step().is_none() {
                return true;
            }
        }
        self.step().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    /// Echo node: replies `x+1` to every received value below a cap; one
    /// initial ping from its timeout.
    struct Echo {
        cap: u64,
        kick: bool,
        peer: NodeId,
        received: Vec<u64>,
    }

    impl MpNode for Echo {
        type Msg = u64;

        fn on_message(&mut self, from: NodeId, msg: u64, out: &mut Outbox<u64>) {
            self.received.push(msg);
            if msg < self.cap {
                out.send(from, msg + 1);
            }
        }

        fn on_timeout(&mut self, out: &mut Outbox<u64>) {
            if self.kick {
                self.kick = false;
                out.send(self.peer, 0);
            }
        }

        fn is_idle(&self) -> bool {
            !self.kick
        }
    }

    #[test]
    fn ping_pong_terminates() {
        let g = gen::line(2);
        let nodes = vec![
            Echo {
                cap: 10,
                kick: true,
                peer: 1,
                received: vec![],
            },
            Echo {
                cap: 10,
                kick: false,
                peer: 0,
                received: vec![],
            },
        ];
        let mut net = MpNetwork::new(g, nodes, MpConfig::default());
        assert!(net.run_to_quiescence(1_000));
        // 0 → 1 → 2 → … → 10: eleven deliveries, alternating receivers.
        assert_eq!(net.delivered_msgs(), 11);
        assert_eq!(net.node(1).received, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(net.node(0).received, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn channels_are_fifo() {
        struct Sink {
            got: Vec<u64>,
        }
        impl MpNode for Sink {
            type Msg = u64;
            fn on_message(&mut self, _from: NodeId, msg: u64, _out: &mut Outbox<u64>) {
                self.got.push(msg);
            }
            fn on_timeout(&mut self, _out: &mut Outbox<u64>) {}
            fn is_idle(&self) -> bool {
                true
            }
        }
        let g = gen::line(2);
        let mut net = MpNetwork::new(
            g,
            vec![Sink { got: vec![] }, Sink { got: vec![] }],
            MpConfig::default(),
        );
        for v in 0..5 {
            net.inject_wire(LinkId { from: 0, to: 1 }, v);
        }
        assert!(net.run_to_quiescence(100));
        assert_eq!(net.node(1).got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn injected_garbage_is_delivered() {
        let g = gen::ring(3);
        let nodes = (0..3)
            .map(|p| Echo {
                cap: 0,
                kick: false,
                peer: p,
                received: vec![],
            })
            .collect();
        let mut net = MpNetwork::new(
            g,
            nodes,
            MpConfig {
                seed: 5,
                ..Default::default()
            },
        );
        net.inject_wire(LinkId { from: 0, to: 1 }, 99);
        net.inject_wire(LinkId { from: 2, to: 1 }, 98);
        assert!(net.run_to_quiescence(100));
        let mut got = net.node(1).received.clone();
        got.sort_unstable();
        assert_eq!(got, vec![98, 99]);
    }

    #[test]
    fn scheduler_is_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, u64) {
            let g = gen::line(2);
            let nodes = vec![
                Echo {
                    cap: 50,
                    kick: true,
                    peer: 1,
                    received: vec![],
                },
                Echo {
                    cap: 50,
                    kick: false,
                    peer: 0,
                    received: vec![],
                },
            ];
            let mut net = MpNetwork::new(
                g,
                nodes,
                MpConfig {
                    seed,
                    ..Default::default()
                },
            );
            net.run_to_quiescence(10_000);
            (net.steps(), net.delivered_msgs())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn fault_clerk_budgets_bound_every_kind() {
        let mut clerk = FaultClerk::new(ChannelFaults::budget(3, 2));
        let mut q: VecDeque<u64> = VecDeque::new();
        let mut delivered = 0u64;
        for v in 0..200u64 {
            q.push_back(v);
            while q.len() >= 2 {
                if clerk.pull(&mut q).is_some() {
                    delivered += 1;
                }
            }
        }
        while !q.is_empty() {
            if clerk.pull(&mut q).is_some() {
                delivered += 1;
            }
        }
        let (d, u, r) = clerk.counts();
        assert!(clerk.exhausted());
        assert!(d <= 2 && u <= 2 && r <= 2);
        // Every message not dropped is delivered exactly once, duplicates
        // add on top.
        assert_eq!(delivered, 200 - d + u);
    }
}
