//! The client-layer ghost convention: packing a `(client, seq)` identity
//! into the 64-bit [`MpGhost`] space so the existing audit pipeline
//! carries per-client identities end-to-end with zero forwarder changes.
//!
//! In **client mode** every ghost a cluster node mints — primaries and
//! acks alike — uses this layout (most significant bit first):
//!
//! ```text
//! bit 63        : ack flag (primary = 0, ack = 1)
//! bits [47, 63) : hosting node id            (< 2^16 nodes)
//! bits [24, 47) : session index on that node (< 2^23 sessions/node)
//! bits [0, 24)  : the client's sequence       (< 2^24 messages/client)
//! ```
//!
//! A logical client is identified cluster-wide by `(node, session)`,
//! flattened to `node * 2^23 + session` for the audit. The ack a
//! destination returns reuses the *primary's* packed identity with the
//! ack flag set, so ack ghosts stay globally unique and the destination
//! needs no per-client state. The caps multiply out to `2^63` distinct
//! primaries — validated up front by the cluster crate's client-spec
//! checks, not rechecked per message on the hot path.

use crate::MpGhost;
use ssmfp_topology::NodeId;

/// Ack flag bit.
pub const CLIENT_ACK_BIT: u64 = 1 << 63;
/// Bits for the hosting node id.
pub const CLIENT_NODE_BITS: u32 = 16;
/// Bits for the per-node session index.
pub const CLIENT_SESSION_BITS: u32 = 23;
/// Bits for the per-client sequence number.
pub const CLIENT_SEQ_BITS: u32 = 24;
/// Maximum cluster size in client mode.
pub const MAX_CLIENT_NODES: usize = 1 << CLIENT_NODE_BITS;
/// Maximum sessions hosted by one node.
pub const MAX_SESSIONS_PER_NODE: u64 = 1 << CLIENT_SESSION_BITS;
/// Maximum messages one client may issue.
pub const MAX_SEQS_PER_CLIENT: u64 = 1 << CLIENT_SEQ_BITS;

const SESSION_SHIFT: u32 = CLIENT_SEQ_BITS;
const NODE_SHIFT: u32 = CLIENT_SEQ_BITS + CLIENT_SESSION_BITS;

/// A decoded client-mode ghost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientParts {
    /// Whether this is an ack (vs a primary).
    pub ack: bool,
    /// The node hosting the issuing session.
    pub node: NodeId,
    /// The session's index on that node.
    pub session: u32,
    /// The client's sequence number.
    pub seq: u32,
}

impl ClientParts {
    /// The cluster-wide flat client id `(node, session)` maps to.
    pub fn client_id(&self) -> u64 {
        (self.node as u64) << CLIENT_SESSION_BITS | self.session as u64
    }
}

/// Ghost of the `seq`-th primary issued by `(node, session)`.
pub fn client_ghost(node: NodeId, session: u32, seq: u32) -> MpGhost {
    debug_assert!(node < MAX_CLIENT_NODES);
    debug_assert!((session as u64) < MAX_SESSIONS_PER_NODE);
    debug_assert!((seq as u64) < MAX_SEQS_PER_CLIENT);
    MpGhost::Valid((node as u64) << NODE_SHIFT | (session as u64) << SESSION_SHIFT | seq as u64)
}

/// The ack ghost paired with a primary's ghost: same packed identity,
/// ack flag set. Returns the input unchanged for invalid ghosts (they
/// never get acked; total for defensiveness).
pub fn ack_ghost_of(primary: MpGhost) -> MpGhost {
    match primary {
        MpGhost::Valid(k) => MpGhost::Valid(k | CLIENT_ACK_BIT),
        inv @ MpGhost::Invalid(_) => inv,
    }
}

/// Decodes a client-mode ghost; `None` for invalid ghosts (garbage from
/// the initial configuration, never client traffic).
pub fn decode_client_ghost(g: MpGhost) -> Option<ClientParts> {
    let MpGhost::Valid(k) = g else { return None };
    Some(ClientParts {
        ack: k & CLIENT_ACK_BIT != 0,
        node: ((k & !CLIENT_ACK_BIT) >> NODE_SHIFT) as NodeId,
        session: ((k >> SESSION_SHIFT) & (MAX_SESSIONS_PER_NODE - 1)) as u32,
        seq: (k & (MAX_SEQS_PER_CLIENT - 1)) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrips_at_the_corners() {
        for (node, session, seq) in [
            (0usize, 0u32, 0u32),
            (1, 2, 3),
            (MAX_CLIENT_NODES - 1, 0, 0),
            (0, (MAX_SESSIONS_PER_NODE - 1) as u32, 0),
            (0, 0, (MAX_SEQS_PER_CLIENT - 1) as u32),
            (
                MAX_CLIENT_NODES - 1,
                (MAX_SESSIONS_PER_NODE - 1) as u32,
                (MAX_SEQS_PER_CLIENT - 1) as u32,
            ),
        ] {
            let g = client_ghost(node, session, seq);
            let p = decode_client_ghost(g).unwrap();
            assert_eq!(
                (p.ack, p.node, p.session, p.seq),
                (false, node, session, seq)
            );
            let a = decode_client_ghost(ack_ghost_of(g)).unwrap();
            assert_eq!(
                (a.ack, a.node, a.session, a.seq),
                (true, node, session, seq)
            );
        }
    }

    #[test]
    fn ghosts_are_unique_across_fields_and_kinds() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for node in [0usize, 1, 7] {
            for session in [0u32, 1, 100] {
                for seq in [0u32, 1, 50] {
                    let g = client_ghost(node, session, seq);
                    assert!(seen.insert(g));
                    assert!(seen.insert(ack_ghost_of(g)));
                }
            }
        }
    }

    #[test]
    fn client_id_is_injective_over_node_session() {
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        for node in 0..4usize {
            for session in 0..4u32 {
                let p = decode_client_ghost(client_ghost(node, session, 0)).unwrap();
                assert!(ids.insert(p.client_id()));
            }
        }
    }

    #[test]
    fn invalid_ghosts_do_not_decode() {
        assert_eq!(decode_client_ghost(MpGhost::Invalid(42)), None);
        assert_eq!(ack_ghost_of(MpGhost::Invalid(42)), MpGhost::Invalid(42));
    }
}
