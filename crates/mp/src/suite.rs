//! Transport-generic exactly-once conformance suite.
//!
//! The satellite requirement: the in-process channel transport and the
//! cluster crate's socket transport must be property-tested against the
//! *same* suite instead of diverging copies. Each check here is generic
//! over a transport factory `FnMut(&Graph) -> T`; `crates/mp`'s own tests
//! instantiate it with [`ChannelTransport`], and `crates/cluster` runs the
//! identical checks over its loopback socket transport.

use crate::conc::{COMPONENT, DRIVER_ROLE};
use crate::net::{ChannelFaults, MpConfig, Transport};
use crate::port::{MpGhost, PortNetwork, WireMsg};
use ssmfp_core::conc::{observed_threads, register_thread};
use ssmfp_topology::{gen, Graph};

/// Registers the caller as the declared driver thread and, in debug
/// builds, asserts no undeclared `mp` role has been observed — the
/// runtime half of the `conc-coverage` contract.
fn assert_conc_coverage() {
    register_thread(COMPONENT, DRIVER_ROLE);
    if cfg!(debug_assertions) {
        let undeclared = crate::conc::model().undeclared_observed(&observed_threads(COMPONENT));
        assert!(
            undeclared.is_empty(),
            "threads outside the declared mp concurrency model: {undeclared:?}"
        );
    }
}

/// Outcome of one suite run, for reporting in callers' test output.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SuiteOutcome {
    /// Messages sent by the suite.
    pub sent: u64,
    /// Messages delivered exactly once at their destination.
    pub exactly_once: u64,
    /// Seeds exercised.
    pub seeds: u64,
}

impl SuiteOutcome {
    /// True iff every sent message was delivered exactly once.
    pub fn clean(&self) -> bool {
        self.sent == self.exactly_once
    }
}

fn topologies() -> Vec<Graph> {
    vec![gen::line(4), gen::ring(5), gen::caterpillar(3, 2)]
}

fn drive<T: Transport<WireMsg>>(
    net: &mut PortNetwork<T>,
    sends: &[(usize, usize, u64)],
    budget: u64,
    outcome: &mut SuiteOutcome,
) {
    let ghosts: Vec<MpGhost> = sends.iter().map(|&(s, d, p)| net.send(s, d, p)).collect();
    assert!(
        net.run_to_quiescence(budget),
        "transport suite: network failed to quiesce within {budget} steps"
    );
    for g in ghosts {
        outcome.sent += 1;
        assert_eq!(
            net.deliveries_of(g),
            1,
            "transport suite: {g:?} not delivered exactly once"
        );
        assert!(
            net.delivered_at_destination(g),
            "transport suite: {g:?} delivered at a wrong node"
        );
        outcome.exactly_once += 1;
    }
    let ledger = net.audit();
    assert_eq!(ledger.lost, 0, "transport suite: lost messages {ledger:?}");
    assert_eq!(
        ledger.duplicated, 0,
        "transport suite: duplicated messages {ledger:?}"
    );
}

/// Clean-network exactly-once: several topologies, several seeds, no
/// faults. Every message must be delivered exactly once at its
/// destination and the network must drain.
pub fn exactly_once_clean<T, F>(mut make: F, seeds: std::ops::Range<u64>) -> SuiteOutcome
where
    T: Transport<WireMsg>,
    F: FnMut(&Graph) -> T,
{
    assert_conc_coverage();
    let mut outcome = SuiteOutcome::default();
    for seed in seeds {
        outcome.seeds += 1;
        for graph in topologies() {
            let n = graph.n();
            let config = MpConfig {
                seed,
                timeout_bias: 0.3,
            };
            let transport = make(&graph);
            let mut net = PortNetwork::with_transport(graph, config, transport, false, 0, 0, 0);
            let sends: Vec<(usize, usize, u64)> = (0..n)
                .map(|s| (s, (s + n - 1) % n, seed.wrapping_add(s as u64)))
                .collect();
            drive(&mut net, &sends, 400_000, &mut outcome);
        }
    }
    assert_conc_coverage();
    outcome
}

/// Exactly-once under transient link faults: drop/duplicate/reorder
/// budgets are armed on the transport, and *every* message — including
/// those sent while faults were live — must still be delivered exactly
/// once. This is the loss-tolerance property the hardened handshake
/// (re-`Confirm` cache + promoted-handshake memory) provides.
pub fn exactly_once_under_faults<T, F>(mut make: F, seeds: std::ops::Range<u64>) -> SuiteOutcome
where
    T: Transport<WireMsg>,
    F: FnMut(&Graph) -> T,
{
    assert_conc_coverage();
    let mut outcome = SuiteOutcome::default();
    for seed in seeds {
        outcome.seeds += 1;
        for graph in topologies() {
            let n = graph.n();
            let config = MpConfig {
                seed,
                timeout_bias: 0.3,
            };
            let transport = make(&graph);
            let mut net = PortNetwork::with_transport(graph, config, transport, false, 0, 0, 0);
            net.set_channel_faults(ChannelFaults::budget(seed ^ 0x5EED, 3));
            let sends: Vec<(usize, usize, u64)> = (0..n)
                .map(|s| (s, (s + 1) % n, seed.wrapping_mul(31).wrapping_add(s as u64)))
                .collect();
            drive(&mut net, &sends, 800_000, &mut outcome);
        }
    }
    assert_conc_coverage();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ChannelTransport;

    #[test]
    fn channel_transport_exactly_once_clean() {
        let outcome = exactly_once_clean(ChannelTransport::new, 0..6);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }

    #[test]
    fn channel_transport_exactly_once_under_faults() {
        let outcome = exactly_once_under_faults(ChannelTransport::new, 0..12);
        assert!(outcome.clean());
        assert!(outcome.sent > 0);
    }
}
