//! The message-passing simulator's declared concurrency model.
//!
//! Deliberately boring: `crates/mp` is a *single-threaded* simulation —
//! the scheduler interleaves deliveries and timeouts inside one driver
//! thread, with no locks and no cross-thread channels. Declaring that
//! emptiness is the point: the `conc-coverage` pass confronts the
//! debug-build thread registry with this model, so the moment anyone
//! threads the simulator the declaration (and the lint gate) must move
//! with it.

use ssmfp_core::conc::{ConcModel, Multiplicity, ThreadDecl, EXTERN_ROLE};

/// Component name under which mp threads register.
pub const COMPONENT: &str = "mp";

/// The driver role every suite entry point registers itself as.
pub const DRIVER_ROLE: &str = "mp.driver";

/// The declared model: one driver thread, nothing else.
pub fn model() -> ConcModel {
    ConcModel {
        component: COMPONENT,
        threads: vec![ThreadDecl {
            role: DRIVER_ROLE,
            multiplicity: Multiplicity::One,
            spawned_by: EXTERN_ROLE,
            doc: "the single thread driving the simulated network (tests, suite callers)",
        }],
        locks: vec![],
        channels: vec![],
        edges: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_declares_exactly_the_driver() {
        let m = model();
        assert_eq!(m.component, COMPONENT);
        assert!(m.thread(DRIVER_ROLE).is_some());
        assert!(m.locks.is_empty() && m.channels.is_empty() && m.edges.is_empty());
    }
}
