//! **E14 — the message-passing port** (the paper's §4 closing problem).
//!
//! §4: *"it will be interesting to carry our protocol in the message
//! passing model (a more realistic model of distributed system) … The
//! problem to carry automatically a protocol from the state model to the
//! message passing model is still open."*
//!
//! This crate explores that open problem **empirically**. It provides:
//!
//! * [`net`] — an asynchronous message-passing substrate: identified nodes,
//!   FIFO channels per directed link, a seeded adversarial scheduler that
//!   interleaves message deliveries and node timeouts, and arbitrary
//!   initial channel/node contents (transient-fault injection);
//! * [`port`] — a hand-built port of SSMFP's forwarding core. The state
//!   model's composite-atomic reads (`R3` reads a neighbour's `bufE`,
//!   `R4` reads all neighbours' `bufR`) cannot be read directly over a
//!   network, so the port replaces them with a **three-way handshake**
//!   per hop — `Offer → Accept → Confirm/Deny` — whose Confirm/Deny step
//!   plays the role of rules R4/R5 (erase the source copy only once the
//!   unique successor copy is certified; drop tentative copies the source
//!   disowns). Colors survive as the per-hop disambiguator of
//!   consecutive same-payload messages, exactly as in Algorithm 1.
//!
//! **Status of the claim.** This port is *not* proven snap-stabilizing —
//! the paper says the general transformation is open, and we do not close
//! it. What the test suite establishes is empirical: across the seeds,
//! schedules, topologies, and garbage injections exercised here, every
//! generated message is delivered exactly once and the system drains.
//! The port is faithful to the original's resource model (two buffers per
//! destination per node) and to its mechanisms (colors, next-hop
//! certification, single-successor erasure).
//!
//! [`clients`] adds the layer above: the ghost-packing convention that
//! lets a per-node client multiplexer stamp every message with a
//! `(client, seq)` identity the audit can reconcile per client.

pub mod clients;
pub mod conc;
pub mod net;
pub mod port;
pub mod suite;

pub use conc::model as conc_model;

pub use clients::{ack_ghost_of, client_ghost, decode_client_ghost, ClientParts};
pub use net::{
    ChannelFaults, ChannelTransport, FaultClerk, LinkId, MpConfig, MpNetwork, MpNode, Outbox,
    SchedulerEvent, Transport,
};
pub use port::{MpForwarder, MpGhost, MpLedger, MpMessage, PortNetwork, WireMsg};
