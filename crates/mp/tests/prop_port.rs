//! Property tests for the message-passing port: exactly-once delivery and
//! drainage across random topologies, schedules, corruption, and garbage.

use proptest::prelude::*;
use ssmfp_mp::{MpConfig, PortNetwork};
use ssmfp_topology::{gen, Graph};

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3usize..7).prop_map(gen::ring),
        (2usize..7).prop_map(gen::line),
        (3usize..7).prop_map(gen::star),
        ((4usize..8), (0usize..4), any::<u64>())
            .prop_map(|(n, e, s)| gen::random_connected(n, e, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generated message is delivered exactly once at its
    /// destination, whatever the schedule, topology, corruption, and
    /// garbage.
    #[test]
    fn port_exactly_once(
        graph in arb_graph(),
        seed in any::<u64>(),
        timeout_bias in 0.05f64..0.95,
        corrupt in any::<bool>(),
        wire_garbage in 0usize..16,
        buffer_garbage in 0usize..3,
        sends in proptest::collection::vec((any::<u16>(), any::<u16>(), 0u64..8), 1..8),
    ) {
        let n = graph.n();
        let mut net = PortNetwork::new(
            graph,
            MpConfig { seed, timeout_bias },
            corrupt,
            if corrupt { 8 } else { 0 },
            wire_garbage,
            buffer_garbage,
        );
        let ghosts: Vec<_> = sends
            .iter()
            .map(|&(s, d, p)| net.send(s as usize % n, d as usize % n, p))
            .collect();
        prop_assert!(net.run_to_quiescence(10_000_000), "port must drain");
        for g in &ghosts {
            prop_assert_eq!(net.deliveries_of(*g), 1, "{:?}", g);
            prop_assert!(net.delivered_at_destination(*g));
        }
        let audit = net.audit();
        prop_assert_eq!(audit.lost, 0, "{:?}", audit);
        prop_assert_eq!(audit.duplicated, 0, "{:?}", audit);
    }

    /// Self-sends work in the port too.
    #[test]
    fn port_self_send(n in 2usize..6, seed in any::<u64>()) {
        let mut net = PortNetwork::new(
            gen::line(n),
            MpConfig { seed, timeout_bias: 0.3 },
            false,
            0,
            0,
            0,
        );
        let g = net.send(1 % n, 1 % n, 5);
        prop_assert!(net.run_to_quiescence(500_000));
        prop_assert_eq!(net.deliveries_of(g), 1);
    }
}
