//! Property-based tests for the topology generators: every generated graph
//! must satisfy the §2 model invariants (connected, simple, identified), and
//! its metrics must match the closed forms of the family.

use proptest::prelude::*;
use ssmfp_topology::{gen, Graph, GraphMetrics};

fn assert_model_invariants(g: &Graph) {
    // Connectivity is enforced at build time; re-derive it via distances.
    let m = GraphMetrics::new(g);
    for p in g.nodes() {
        for q in g.nodes() {
            assert_ne!(m.dist(p, q), u32::MAX, "graph must be connected");
        }
        // Simple graph: sorted, duplicate-free adjacency, no self-loop.
        let nb = g.neighbors(p);
        assert!(nb.windows(2).all(|w| w[0] < w[1]));
        assert!(!nb.contains(&p));
        // Symmetry of the neighbour relation.
        for &q in nb {
            assert!(g.neighbors(q).contains(&p));
        }
    }
    // Handshake lemma.
    let deg_sum: usize = g.nodes().map(|p| g.degree(p)).sum();
    assert_eq!(deg_sum, 2 * g.m());
}

proptest! {
    #[test]
    fn lines_are_valid(n in 1usize..60) {
        let g = gen::line(n);
        assert_model_invariants(&g);
        prop_assert_eq!(g.m(), n - 1);
        prop_assert_eq!(GraphMetrics::new(&g).diameter() as usize, n - 1);
    }

    #[test]
    fn rings_are_valid(n in 3usize..60) {
        let g = gen::ring(n);
        assert_model_invariants(&g);
        prop_assert_eq!(g.m(), n);
        prop_assert_eq!(GraphMetrics::new(&g).diameter() as usize, n / 2);
    }

    #[test]
    fn stars_are_valid(n in 2usize..60) {
        let g = gen::star(n);
        assert_model_invariants(&g);
        prop_assert_eq!(g.max_degree(), n - 1);
        let d = GraphMetrics::new(&g).diameter();
        prop_assert_eq!(d, if n == 2 { 1 } else { 2 });
    }

    #[test]
    fn complete_graphs_are_valid(n in 1usize..25) {
        let g = gen::complete(n);
        assert_model_invariants(&g);
        prop_assert_eq!(g.m(), n * (n - 1) / 2);
    }

    #[test]
    fn kary_trees_are_valid(n in 1usize..80, k in 1usize..5) {
        let g = gen::kary_tree(n, k);
        assert_model_invariants(&g);
        prop_assert_eq!(g.m(), n - 1);
    }

    #[test]
    fn grids_are_valid(r in 1usize..8, c in 1usize..8) {
        let g = gen::grid(r, c);
        assert_model_invariants(&g);
        prop_assert_eq!(GraphMetrics::new(&g).diameter() as usize, r + c - 2);
    }

    #[test]
    fn tori_are_valid(r in 3usize..7, c in 3usize..7) {
        let g = gen::torus(r, c);
        assert_model_invariants(&g);
        prop_assert_eq!(GraphMetrics::new(&g).diameter() as usize, r / 2 + c / 2);
    }

    #[test]
    fn hypercubes_are_valid(dim in 0u32..7) {
        let g = gen::hypercube(dim);
        assert_model_invariants(&g);
        prop_assert_eq!(GraphMetrics::new(&g).diameter(), dim);
    }

    #[test]
    fn random_trees_are_trees(n in 1usize..80, seed in any::<u64>()) {
        let g = gen::random_tree(n, seed);
        assert_model_invariants(&g);
        prop_assert_eq!(g.m(), n.saturating_sub(1));
    }

    #[test]
    fn random_connected_are_connected(n in 1usize..50, extra in 0usize..30, seed in any::<u64>()) {
        let g = gen::random_connected(n, extra, seed);
        assert_model_invariants(&g);
        prop_assert!(g.m() >= n.saturating_sub(1));
        prop_assert!(g.m() <= n.saturating_sub(1) + extra);
    }

    #[test]
    fn generators_are_deterministic(n in 2usize..40, seed in any::<u64>()) {
        prop_assert_eq!(gen::random_tree(n, seed), gen::random_tree(n, seed));
        prop_assert_eq!(
            gen::random_connected(n, 5, seed),
            gen::random_connected(n, 5, seed)
        );
    }
}
