//! The identified, undirected, connected network graph of §2.
//!
//! Processors are identified by dense integer [`NodeId`]s `0..n` (the paper's
//! identity set `I = {0, …, n−1}`). Neighbour sets `N_p` are stored as sorted
//! adjacency lists, so iteration order is deterministic — a requirement for
//! reproducible daemon schedules and for the deterministic tie-breaking rules
//! of the routing substrate.

use std::fmt;

/// Identity of a processor. The paper assumes a fully identified network:
/// identities are unique and globally known. We use dense indices `0..n`.
pub type NodeId = usize;

/// Errors raised while constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a node outside `0..n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// A self-loop `(p, p)` was supplied; the model forbids them.
    SelfLoop(NodeId),
    /// The same undirected edge was supplied twice.
    DuplicateEdge(NodeId, NodeId),
    /// The graph is not connected; the model requires connectivity.
    Disconnected { reached: usize, n: usize },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph of {n} nodes")
            }
            GraphError::SelfLoop(p) => write!(f, "self-loop at node {p} is not allowed"),
            GraphError::DuplicateEdge(p, q) => write!(f, "duplicate edge ({p}, {q})"),
            GraphError::Disconnected { reached, n } => {
                write!(f, "graph is disconnected: reached {reached} of {n} nodes")
            }
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected, connected, simple graph with identified nodes.
///
/// Invariants (enforced at construction):
/// * at least one node,
/// * no self-loops, no parallel edges,
/// * connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// `adj[p]` is the sorted list of neighbours `N_p`.
    adj: Vec<Vec<NodeId>>,
    /// Undirected edge list with `p < q`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph from an edge list over nodes `0..n`.
    ///
    /// Returns an error if the edge list references out-of-range nodes,
    /// contains self-loops or duplicates, or does not connect all `n` nodes.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(p, q) in edges {
            b.edge(p, q)?;
        }
        b.build()
    }

    /// The single-node graph (a network of one processor, trivially
    /// connected). Useful as a degenerate base case in tests.
    pub fn singleton() -> Self {
        Graph {
            n: 1,
            adj: vec![Vec::new()],
            edges: Vec::new(),
        }
    }

    /// Number of processors `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node identities `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        0..self.n
    }

    /// The sorted neighbour set `N_p`.
    #[inline]
    pub fn neighbors(&self, p: NodeId) -> &[NodeId] {
        &self.adj[p]
    }

    /// Degree of `p` (`|N_p|`).
    #[inline]
    pub fn degree(&self, p: NodeId) -> usize {
        self.adj[p].len()
    }

    /// Maximal degree `Δ` of the network.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `p` and `q` are neighbours (binary search over sorted list).
    #[inline]
    pub fn has_edge(&self, p: NodeId, q: NodeId) -> bool {
        self.adj[p].binary_search(&q).is_ok()
    }

    /// The undirected edge list, each edge once with `p < q`, sorted.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Index of neighbour `q` within `N_p` (its local port label), if any.
    #[inline]
    pub fn port_of(&self, p: NodeId, q: NodeId) -> Option<usize> {
        self.adj[p].binary_search(&q).ok()
    }
}

/// Incremental builder for [`Graph`], validating as edges are added.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    adj: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Starts a builder for a graph over nodes `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds the undirected edge `(p, q)`.
    pub fn edge(&mut self, p: NodeId, q: NodeId) -> Result<&mut Self, GraphError> {
        if p >= self.n {
            return Err(GraphError::NodeOutOfRange { node: p, n: self.n });
        }
        if q >= self.n {
            return Err(GraphError::NodeOutOfRange { node: q, n: self.n });
        }
        if p == q {
            return Err(GraphError::SelfLoop(p));
        }
        if self.adj[p].contains(&q) {
            return Err(GraphError::DuplicateEdge(p, q));
        }
        self.adj[p].push(q);
        self.adj[q].push(p);
        Ok(self)
    }

    /// Adds the edge if absent; silently ignores duplicates. Used by random
    /// generators that may propose the same pair twice.
    pub fn edge_dedup(&mut self, p: NodeId, q: NodeId) -> Result<&mut Self, GraphError> {
        match self.edge(p, q) {
            Ok(_) | Err(GraphError::DuplicateEdge(..)) => Ok(self),
            Err(e) => Err(e),
        }
    }

    /// Finalizes the graph, checking connectivity.
    pub fn build(mut self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        for list in &mut self.adj {
            list.sort_unstable();
        }
        // Connectivity check (iterative DFS).
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut reached = 1;
        while let Some(p) = stack.pop() {
            for &q in &self.adj[p] {
                if !seen[q] {
                    seen[q] = true;
                    reached += 1;
                    stack.push(q);
                }
            }
        }
        if reached != self.n {
            return Err(GraphError::Disconnected { reached, n: self.n });
        }
        let mut edges = Vec::new();
        for p in 0..self.n {
            for &q in &self.adj[p] {
                if p < q {
                    edges.push((p, q));
                }
            }
        }
        edges.sort_unstable();
        Ok(Graph {
            n: self.n,
            adj: self.adj,
            edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 0), (0, 1)]).unwrap_err(),
            GraphError::SelfLoop(0)
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 1), (1, 0)]).unwrap_err(),
            GraphError::DuplicateEdge(1, 0)
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5)]).unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 2 }
        );
    }

    #[test]
    fn rejects_disconnected() {
        assert_eq!(
            Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap_err(),
            GraphError::Disconnected { reached: 2, n: 4 }
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Graph::from_edges(0, &[]).unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn singleton_is_valid() {
        let g = Graph::singleton();
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn ports_are_sorted_positions() {
        let g = Graph::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.port_of(2, 0), Some(0));
        assert_eq!(g.port_of(2, 1), Some(1));
        assert_eq!(g.port_of(2, 3), Some(2));
        assert_eq!(g.port_of(2, 2), None);
    }

    #[test]
    fn edge_dedup_ignores_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.edge_dedup(0, 1).unwrap();
        b.edge_dedup(1, 0).unwrap();
        b.edge_dedup(1, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_is_canonical() {
        let g = Graph::from_edges(4, &[(3, 1), (0, 2), (1, 0)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1), (0, 2), (1, 3)]);
    }
}
