//! Network topology substrate for the SSMFP reproduction.
//!
//! The paper (§2 *Preliminaries*) models the network as an undirected
//! connected graph `G = (V, E)` of *identified* processors: every processor
//! has a unique identity, knows the set `I` of all identities, and can
//! distinguish its incident links by the neighbour's label. This crate
//! provides exactly that object — [`Graph`] — together with
//!
//! * deterministic **generators** for the topology families used by the
//!   experiments (lines, rings, stars, trees, grids, tori, hypercubes,
//!   complete graphs, random connected graphs) in [`gen`],
//! * **metrics** the paper's complexity bounds are stated in (`Δ` the maximal
//!   degree, `D` the diameter, `dist(p, q)` shortest-path distances) in
//!   [`metrics`],
//! * per-destination **BFS trees** `T_d` used by the destination-based buffer
//!   graphs of Figures 1 and 2 in [`spanning`],
//! * a tiny **DOT** exporter for documentation and debugging in [`dot`].
//!
//! All generators are pure functions of their parameters (no hidden RNG); the
//! random generator takes an explicit seed, so every experiment in the
//! workspace is reproducible.

pub mod dot;
pub mod gen;
pub mod graph;
pub mod metrics;
pub mod spanning;

pub use graph::{Graph, GraphBuilder, GraphError, NodeId};
pub use metrics::{AllPairs, GraphMetrics};
pub use spanning::BfsTree;
