//! Minimal Graphviz DOT export, for documentation and debugging of the
//! experiment topologies (e.g. rendering the Figure 3 network).

use crate::graph::Graph;
use crate::spanning::BfsTree;
use std::fmt::Write;

/// Renders `g` as an undirected DOT graph. Node labels are identities.
pub fn graph_to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "graph {name} {{").expect("write to String cannot fail");
    for p in g.nodes() {
        writeln!(out, "  {p};").expect("write to String cannot fail");
    }
    for &(p, q) in g.edges() {
        writeln!(out, "  {p} -- {q};").expect("write to String cannot fail");
    }
    out.push_str("}\n");
    out
}

/// Renders a BFS tree as a directed DOT graph, edges oriented toward the
/// root — the orientation of the buffer-graph components of Figure 1.
pub fn tree_to_dot(t: &BfsTree, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").expect("write to String cannot fail");
    writeln!(out, "  {} [shape=doublecircle];", t.root()).expect("write to String cannot fail");
    for p in 0..t.n() {
        if let Some(q) = t.parent(p) {
            writeln!(out, "  {p} -> {q};").expect("write to String cannot fail");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dot_contains_all_edges() {
        let g = gen::ring(4);
        let dot = graph_to_dot(&g, "ring4");
        assert!(dot.starts_with("graph ring4 {"));
        for &(p, q) in g.edges() {
            assert!(dot.contains(&format!("{p} -- {q};")));
        }
    }

    #[test]
    fn tree_dot_marks_root() {
        let g = gen::line(4);
        let t = BfsTree::new(&g, 2);
        let dot = tree_to_dot(&t, "t");
        assert!(dot.contains("2 [shape=doublecircle];"));
        assert!(dot.contains("3 -> 2;"));
        assert!(dot.contains("0 -> 1;"));
    }
}
