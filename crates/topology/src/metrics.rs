//! Graph metrics used throughout the paper's complexity analysis: shortest
//! path distances `dist(p, q)`, the diameter `D`, the maximal degree `Δ`.
//!
//! Distances are computed by one BFS per node ([`AllPairs`]); for the graph
//! sizes the state-model simulator can handle (thousands of nodes) this is
//! far below the cost of a single simulation run.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// All-pairs shortest path distances (unweighted BFS).
#[derive(Debug, Clone)]
pub struct AllPairs {
    n: usize,
    /// Row-major `n × n` distance matrix.
    dist: Vec<u32>,
}

impl AllPairs {
    /// Runs a BFS from every node of `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut dist = vec![u32::MAX; n * n];
        let mut queue = VecDeque::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(p) = queue.pop_front() {
                let dp = row[p];
                for &q in g.neighbors(p) {
                    if row[q] == u32::MAX {
                        row[q] = dp + 1;
                        queue.push_back(q);
                    }
                }
            }
        }
        AllPairs { n, dist }
    }

    /// `dist(p, q)`: length of the shortest path between `p` and `q`.
    #[inline]
    pub fn dist(&self, p: NodeId, q: NodeId) -> u32 {
        self.dist[p * self.n + q]
    }

    /// Eccentricity of `p`: max distance from `p` to any node.
    pub fn eccentricity(&self, p: NodeId) -> u32 {
        (0..self.n).map(|q| self.dist(p, q)).max().unwrap_or(0)
    }

    /// The diameter `D` (max eccentricity).
    pub fn diameter(&self) -> u32 {
        (0..self.n).map(|p| self.eccentricity(p)).max().unwrap_or(0)
    }

    /// The radius (min eccentricity).
    pub fn radius(&self) -> u32 {
        (0..self.n).map(|p| self.eccentricity(p)).min().unwrap_or(0)
    }
}

/// Bundle of the metrics the paper's bounds are stated in.
#[derive(Debug, Clone)]
pub struct GraphMetrics {
    n: usize,
    m: usize,
    max_degree: usize,
    all_pairs: AllPairs,
}

impl GraphMetrics {
    /// Computes all metrics for `g`.
    pub fn new(g: &Graph) -> Self {
        GraphMetrics {
            n: g.n(),
            m: g.m(),
            max_degree: g.max_degree(),
            all_pairs: AllPairs::new(g),
        }
    }

    /// Number of processors `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Maximal degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Diameter `D`.
    pub fn diameter(&self) -> u32 {
        self.all_pairs.diameter()
    }

    /// Radius of the graph.
    pub fn radius(&self) -> u32 {
        self.all_pairs.radius()
    }

    /// `dist(p, q)`.
    pub fn dist(&self, p: NodeId, q: NodeId) -> u32 {
        self.all_pairs.dist(p, q)
    }

    /// The underlying all-pairs table.
    pub fn all_pairs(&self) -> &AllPairs {
        &self.all_pairs
    }

    /// Histogram of node degrees: `hist[k]` = number of nodes of degree `k`.
    pub fn degree_histogram(&self, g: &Graph) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree + 1];
        for p in g.nodes() {
            hist[g.degree(p)] += 1;
        }
        hist
    }

    /// Mean shortest-path distance over ordered pairs `p ≠ q` (0 for the
    /// singleton graph). The expected uncontended hop count of uniform
    /// all-pairs traffic.
    pub fn average_distance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut sum = 0u64;
        for p in 0..self.n {
            for q in 0..self.n {
                if p != q {
                    sum += self.all_pairs.dist(p, q) as u64;
                }
            }
        }
        sum as f64 / (self.n * (self.n - 1)) as f64
    }

    /// The paper's worst-case per-message bound of Proposition 5, `Δ^D`,
    /// saturating at `u64::MAX` (the bound is astronomically loose already
    /// for moderate graphs — that looseness is itself one of our findings).
    pub fn delta_pow_d(&self) -> u64 {
        let delta = self.max_degree as u64;
        let d = self.diameter();
        let mut acc: u64 = 1;
        for _ in 0..d {
            acc = acc.saturating_mul(delta.max(1));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn line_distances() {
        let g = gen::line(5);
        let ap = AllPairs::new(&g);
        assert_eq!(ap.dist(0, 4), 4);
        assert_eq!(ap.dist(2, 2), 0);
        assert_eq!(ap.dist(1, 3), 2);
        assert_eq!(ap.diameter(), 4);
        assert_eq!(ap.radius(), 2);
    }

    #[test]
    fn ring_distances() {
        let g = gen::ring(8);
        let ap = AllPairs::new(&g);
        assert_eq!(ap.dist(0, 4), 4);
        assert_eq!(ap.dist(0, 5), 3);
        assert_eq!(ap.diameter(), 4);
        assert_eq!(ap.radius(), 4);
    }

    #[test]
    fn distances_symmetric() {
        let g = gen::random_connected(30, 15, 3);
        let ap = AllPairs::new(&g);
        for p in 0..30 {
            for q in 0..30 {
                assert_eq!(ap.dist(p, q), ap.dist(q, p));
            }
        }
    }

    #[test]
    fn triangle_inequality() {
        let g = gen::random_connected(25, 10, 9);
        let ap = AllPairs::new(&g);
        for p in 0..25 {
            for q in 0..25 {
                for r in 0..25 {
                    assert!(ap.dist(p, r) <= ap.dist(p, q) + ap.dist(q, r));
                }
            }
        }
    }

    #[test]
    fn neighbors_at_distance_one() {
        let g = gen::grid(4, 4);
        let ap = AllPairs::new(&g);
        for &(p, q) in g.edges() {
            assert_eq!(ap.dist(p, q), 1);
        }
    }

    #[test]
    fn delta_pow_d_values() {
        let m = GraphMetrics::new(&gen::line(5)); // Δ=2, D=4
        assert_eq!(m.delta_pow_d(), 16);
        let m = GraphMetrics::new(&gen::star(6)); // Δ=5, D=2
        assert_eq!(m.delta_pow_d(), 25);
        let m = GraphMetrics::new(&gen::complete(4)); // Δ=3, D=1
        assert_eq!(m.delta_pow_d(), 3);
    }

    #[test]
    fn delta_pow_d_saturates() {
        let m = GraphMetrics::new(&gen::line(200)); // 2^199 saturates
        assert_eq!(m.delta_pow_d(), u64::MAX);
    }

    #[test]
    fn singleton_metrics() {
        let m = GraphMetrics::new(&Graph::singleton());
        assert_eq!(m.diameter(), 0);
        assert_eq!(m.delta_pow_d(), 1);
        assert_eq!(m.average_distance(), 0.0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = gen::star(5); // hub degree 4, four leaves degree 1
        let m = GraphMetrics::new(&g);
        let h = m.degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn average_distance_complete_is_one() {
        let m = GraphMetrics::new(&gen::complete(5));
        assert!((m.average_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_distance_line3() {
        // Distances: (0,1)=1 (0,2)=2 (1,2)=1 → mean over 6 ordered pairs
        // = (1+2+1)*2/6 = 4/3.
        let m = GraphMetrics::new(&gen::line(3));
        assert!((m.average_distance() - 4.0 / 3.0).abs() < 1e-12);
    }
}
