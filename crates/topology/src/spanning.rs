//! Per-destination BFS trees `T_d`.
//!
//! The destination-based buffer graph of Figure 1 (and SSMFP's adaptation in
//! Figure 2) assumes the routing algorithm forwards all packets for
//! destination `d` along a directed tree `T_d` rooted at `d`, induced by
//! shortest paths. [`BfsTree`] is that object: for every processor `p ≠ d` it
//! stores the parent `nextHop` on a shortest `p → d` path (ties broken toward
//! the smallest neighbour identity, matching the routing substrate's
//! deterministic tie-break).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// A shortest-path tree rooted at a destination `d`, oriented toward `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsTree {
    root: NodeId,
    /// `parent[p]` is the next hop from `p` toward the root; `parent[root]`
    /// is `None`.
    parent: Vec<Option<NodeId>>,
    /// `depth[p] = dist(p, root)`.
    depth: Vec<u32>,
}

impl BfsTree {
    /// Builds the BFS tree of `g` rooted at `root` with smallest-identity
    /// tie-breaking: the parent of `p` is the smallest neighbour of `p`
    /// among those at depth `depth(p) − 1`.
    pub fn new(g: &Graph, root: NodeId) -> Self {
        let n = g.n();
        assert!(root < n, "root {root} out of range");
        let mut depth = vec![u32::MAX; n];
        depth[root] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(root);
        while let Some(p) = queue.pop_front() {
            for &q in g.neighbors(p) {
                if depth[q] == u32::MAX {
                    depth[q] = depth[p] + 1;
                    queue.push_back(q);
                }
            }
        }
        // Parent = smallest neighbour one level closer to the root.
        let parent = (0..n)
            .map(|p| {
                if p == root {
                    None
                } else {
                    g.neighbors(p)
                        .iter()
                        .copied()
                        .find(|&q| depth[q] + 1 == depth[p])
                }
            })
            .collect::<Vec<_>>();
        debug_assert!(parent
            .iter()
            .enumerate()
            .all(|(p, par)| p == root || par.is_some()));
        BfsTree {
            root,
            parent,
            depth,
        }
    }

    /// The tree's root (the destination `d`).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Next hop from `p` toward the root (`None` iff `p` is the root).
    pub fn parent(&self, p: NodeId) -> Option<NodeId> {
        self.parent[p]
    }

    /// Distance from `p` to the root.
    pub fn depth(&self, p: NodeId) -> u32 {
        self.depth[p]
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The full path from `p` to the root, inclusive of both endpoints.
    pub fn path_to_root(&self, p: NodeId) -> Vec<NodeId> {
        let mut path = vec![p];
        let mut cur = p;
        while let Some(next) = self.parent[cur] {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Children lists (inverse of the parent function).
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (p, par) in self.parent.iter().enumerate() {
            if let Some(q) = par {
                ch[*q].push(p);
            }
        }
        ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::metrics::AllPairs;

    #[test]
    fn line_tree() {
        let g = gen::line(5);
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.depth(4), 4);
        assert_eq!(t.path_to_root(4), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn depths_match_bfs_distances() {
        let g = gen::random_connected(40, 20, 11);
        let ap = AllPairs::new(&g);
        for root in 0..g.n() {
            let t = BfsTree::new(&g, root);
            for p in 0..g.n() {
                assert_eq!(t.depth(p), ap.dist(p, root));
            }
        }
    }

    #[test]
    fn parent_strictly_decreases_depth() {
        let g = gen::grid(5, 5);
        let t = BfsTree::new(&g, 12);
        for p in 0..g.n() {
            if let Some(q) = t.parent(p) {
                assert!(g.has_edge(p, q));
                assert_eq!(t.depth(q) + 1, t.depth(p));
            }
        }
    }

    #[test]
    fn smallest_id_tie_break() {
        // Ring of 4: node 2 is at distance 2 from 0 via both 1 and 3; the
        // parent must be the smaller neighbour, 1.
        let g = gen::ring(4);
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.parent(2), Some(1));
    }

    #[test]
    fn children_inverse_of_parent() {
        let g = gen::kary_tree(15, 2);
        let t = BfsTree::new(&g, 0);
        let ch = t.children();
        let mut count = 0;
        for (q, list) in ch.iter().enumerate() {
            for &p in list {
                assert_eq!(t.parent(p), Some(q));
                count += 1;
            }
        }
        assert_eq!(count, g.n() - 1); // every non-root appears exactly once
    }

    #[test]
    fn path_lengths_are_depths() {
        let g = gen::torus(4, 5);
        let t = BfsTree::new(&g, 7);
        for p in 0..g.n() {
            assert_eq!(t.path_to_root(p).len() as u32, t.depth(p) + 1);
        }
    }
}
