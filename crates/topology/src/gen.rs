//! Deterministic topology generators for the experiment sweeps.
//!
//! The complexity propositions of the paper are parameterized by `n`, the
//! maximal degree `Δ` and the diameter `D`, so the experiments need families
//! where each parameter can be scaled independently:
//!
//! * **lines / rings** — `Δ = 2`, `D = n−1` resp. `⌊n/2⌋`: scale `D` with Δ
//!   fixed (Proposition 5's `Δ^D` term with `Δ = 2`);
//! * **stars** — `Δ = n−1`, `D = 2`: scale `Δ` with `D` fixed;
//! * **complete graphs** — `Δ = n−1`, `D = 1`: the dense extreme;
//! * **balanced k-ary trees, random trees, grids, tori, hypercubes,
//!   random connected graphs** — realistic middles.
//!
//! Random generators take an explicit `seed`; identical parameters and seed
//! always yield the identical graph.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Path (line) graph `0 — 1 — … — n−1`. Requires `n ≥ 1`.
pub fn line(n: usize) -> Graph {
    assert!(n >= 1, "line requires n >= 1");
    let mut b = GraphBuilder::new(n);
    for p in 1..n {
        b.edge(p - 1, p).expect("line edges are simple");
    }
    b.build().expect("line is connected")
}

/// Cycle (ring) graph on `n ≥ 3` nodes.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring requires n >= 3");
    let mut b = GraphBuilder::new(n);
    for p in 0..n {
        b.edge(p, (p + 1) % n).expect("ring edges are simple");
    }
    b.build().expect("ring is connected")
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves. Requires `n ≥ 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star requires n >= 2");
    let mut b = GraphBuilder::new(n);
    for p in 1..n {
        b.edge(0, p).expect("star edges are simple");
    }
    b.build().expect("star is connected")
}

/// Complete graph `K_n`. Requires `n ≥ 1`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "complete requires n >= 1");
    let mut b = GraphBuilder::new(n);
    for p in 0..n {
        for q in (p + 1)..n {
            b.edge(p, q).expect("complete edges are simple");
        }
    }
    b.build().expect("complete is connected")
}

/// Balanced `k`-ary tree with `n` nodes in heap order (node `p`'s children
/// are `k·p + 1 … k·p + k`). Requires `n ≥ 1`, `k ≥ 1`.
pub fn kary_tree(n: usize, k: usize) -> Graph {
    assert!(n >= 1 && k >= 1, "kary_tree requires n >= 1, k >= 1");
    let mut b = GraphBuilder::new(n);
    for p in 1..n {
        b.edge((p - 1) / k, p).expect("tree edges are simple");
    }
    b.build().expect("tree is connected")
}

/// Two-dimensional grid of `rows × cols` nodes. Node `(r, c)` is `r·cols+c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid requires rows, cols >= 1");
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(id(r, c), id(r, c + 1)).expect("grid edge");
            }
            if r + 1 < rows {
                b.edge(id(r, c), id(r + 1, c)).expect("grid edge");
            }
        }
    }
    b.build().expect("grid is connected")
}

/// Two-dimensional torus (`rows, cols ≥ 3` so wrap edges are simple).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires rows, cols >= 3");
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.edge_dedup(id(r, c), id(r, (c + 1) % cols))
                .expect("torus edge");
            b.edge_dedup(id(r, c), id((r + 1) % rows, c))
                .expect("torus edge");
        }
    }
    b.build().expect("torus is connected")
}

/// Hypercube of dimension `dim` (`2^dim` nodes, `Δ = D = dim`).
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for p in 0..n {
        for bit in 0..dim {
            let q = p ^ (1usize << bit);
            if p < q {
                b.edge(p, q).expect("hypercube edge");
            }
        }
    }
    b.build().expect("hypercube is connected")
}

/// Uniform random labelled tree on `n` nodes via a random Prüfer sequence.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n >= 1, "random_tree requires n >= 1");
    if n == 1 {
        return Graph::singleton();
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("2-node tree");
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard Prüfer decoding with a priority on the smallest leaf.
    let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n)
        .filter(|&p| degree[p] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("tree decode always has a leaf");
        b.edge(leaf, p).expect("Prüfer edges are simple");
        degree[p] -= 1;
        if degree[p] == 1 {
            leaf_heap.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(u) = leaf_heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = leaf_heap.pop().expect("two leaves remain");
    b.edge(u, v).expect("final Prüfer edge");
    b.build().expect("Prüfer decoding yields a tree")
}

/// Random connected graph: a random spanning tree plus `extra` random
/// additional edges (deduplicated; fewer may be added on small graphs).
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 1, "random_connected requires n >= 1");
    if n == 1 {
        return Graph::singleton();
    }
    let tree = random_tree(n, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = GraphBuilder::new(n);
    for &(p, q) in tree.edges() {
        b.edge(p, q).expect("tree edges are simple");
    }
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let mut added = 0;
    let mut attempts = 0;
    while added < extra.min(max_extra) && attempts < 50 * (extra + 1) {
        attempts += 1;
        let p = rng.gen_range(0..n);
        let q = rng.gen_range(0..n);
        if p == q {
            continue;
        }
        match b.edge(p, q) {
            Ok(_) => added += 1,
            Err(crate::graph::GraphError::DuplicateEdge(..)) => {}
            Err(e) => unreachable!("range-checked edge insertion failed: {e}"),
        }
    }
    b.build().expect("superset of a spanning tree is connected")
}

/// Seeded Erdős–Rényi graph `G(n, p)`: every unordered pair is an edge
/// independently with probability `p`. Samples are drawn with seeds
/// derived deterministically from `(seed, attempt)` until a *connected*
/// one appears (the experiments need connected instances), up to 64
/// attempts; `None` means the parameters make connectivity too unlikely
/// (e.g. `p` far below the `ln n / n` threshold) and the caller should
/// raise `p`. Identical `(n, p, seed)` always yield the identical graph.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Option<Graph> {
    assert!(n >= 1, "erdos_renyi requires n >= 1");
    assert!((0.0..=1.0).contains(&p), "erdos_renyi requires 0 <= p <= 1");
    if n == 1 {
        return Some(Graph::singleton());
    }
    for attempt in 0u64..64 {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut b = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    b.edge(u, v).expect("pair enumeration is simple");
                }
            }
        }
        if let Ok(g) = b.build() {
            return Some(g);
        }
    }
    None
}

/// Caterpillar graph: a spine path `0 — 1 — … — spine−1` with `legs` leaf
/// nodes attached to every spine node (leaves of spine node `s` are
/// `spine + s·legs .. spine + (s+1)·legs`). Requires `spine ≥ 1`.
///
/// Named for (and shaped like) the paper's Definition 3 *caterpillar*
/// structures: the spine carries the in-transit copies, the legs supply
/// degree without adding diameter. `Δ = legs + 2`, `D = spine + 1` (for
/// `spine ≥ 2`, `legs ≥ 1`), so both parameters scale independently — it
/// is also the mid-size benchmark instance of `ssmfp-bench`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar requires spine >= 1");
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.edge(s - 1, s).expect("spine edges are simple");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.edge(s, spine + s * legs + l)
                .expect("leg edges are simple");
        }
    }
    b.build().expect("caterpillar is connected")
}

/// Wheel graph: a hub (node 0) connected to every node of an outer ring
/// `1..n`. Requires `n ≥ 4` (outer ring of ≥ 3).
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel requires n >= 4");
    let mut b = GraphBuilder::new(n);
    for p in 1..n {
        b.edge(0, p).expect("spoke");
        let next = if p == n - 1 { 1 } else { p + 1 };
        b.edge_dedup(p, next).expect("rim");
    }
    b.build().expect("wheel is connected")
}

/// Barbell graph: two complete graphs `K_k` joined by a path of
/// `bridge ≥ 1` edges. A classic low-conductance stress topology.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(
        k >= 2 && bridge >= 1,
        "barbell requires k >= 2, bridge >= 1"
    );
    let n = 2 * k + bridge.saturating_sub(1);
    let mut b = GraphBuilder::new(n);
    // Left clique: 0..k. Right clique: occupies the last k ids.
    for p in 0..k {
        for q in (p + 1)..k {
            b.edge(p, q).expect("left clique");
        }
    }
    let right0 = n - k;
    for p in right0..n {
        for q in (p + 1)..n {
            b.edge(p, q).expect("right clique");
        }
    }
    // Bridge path from node k−1 through intermediates to right0.
    let mut prev = k - 1;
    for mid in k..right0 {
        b.edge(prev, mid).expect("bridge");
        prev = mid;
    }
    b.edge(prev, right0).expect("bridge end");
    b.build().expect("barbell is connected")
}

/// The Petersen graph (n = 10, 3-regular, girth 5, diameter 2).
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for p in 0..5 {
        b.edge(p, (p + 1) % 5).expect("outer pentagon");
        b.edge(p, p + 5).expect("spoke");
        b.edge(5 + p, 5 + (p + 2) % 5).expect("inner pentagram");
    }
    b.build().expect("Petersen is connected")
}

/// The 4-node network of the paper's **Figure 3** example: nodes `a, b, c, d`
/// mapped to `0, 1, 2, 3`. The figure's network is a cycle `a—c—b—d—a` plus
/// the chord `a—b`, giving `Δ = 3` (hence the four colors `{0,1,2,3}` used in
/// the worked example).
pub fn figure3_network() -> Graph {
    Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        .expect("figure 3 network is simple and connected")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::GraphMetrics;

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
        let m = GraphMetrics::new(&g);
        assert_eq!(m.diameter(), 4);
    }

    #[test]
    fn line_singleton() {
        assert_eq!(line(1).n(), 1);
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert_eq!(g.m(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(GraphMetrics::new(&g).diameter(), 3);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.degree(3), 1);
        assert_eq!(GraphMetrics::new(&g).diameter(), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.m(), 10);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(GraphMetrics::new(&g).diameter(), 1);
    }

    #[test]
    fn kary_tree_shape() {
        let g = kary_tree(7, 2);
        assert_eq!(g.m(), 6);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 3, 4]);
        assert_eq!(GraphMetrics::new(&g).diameter(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(GraphMetrics::new(&g).diameter(), 5);
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 3);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 18);
        assert!(g.nodes().all(|p| g.degree(p) == 4));
        assert_eq!(GraphMetrics::new(&g).diameter(), 2);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 12);
        assert!(g.nodes().all(|p| g.degree(p) == 3));
        assert_eq!(GraphMetrics::new(&g).diameter(), 3);
    }

    #[test]
    fn hypercube_dim0() {
        assert_eq!(hypercube(0).n(), 1);
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..10 {
            let g = random_tree(20, seed);
            assert_eq!(g.n(), 20);
            assert_eq!(g.m(), 19); // connected + n−1 edges ⇒ tree
        }
    }

    #[test]
    fn random_tree_deterministic() {
        assert_eq!(random_tree(15, 42), random_tree(15, 42));
        assert_ne!(random_tree(15, 42), random_tree(15, 43));
    }

    #[test]
    fn random_connected_has_extra_edges() {
        let g = random_connected(20, 10, 7);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 29);
    }

    #[test]
    fn random_connected_caps_extras_on_small_graphs() {
        let g = random_connected(3, 100, 1);
        assert_eq!(g.m(), 3); // K_3 is the maximum
    }

    #[test]
    fn erdos_renyi_is_deterministic_and_connected() {
        let a = erdos_renyi(24, 0.3, 7).expect("p = 0.3 on 24 nodes connects fast");
        let b = erdos_renyi(24, 0.3, 7).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, erdos_renyi(24, 0.3, 8).unwrap());
        assert_eq!(a.n(), 24);
        // build() only succeeds on connected graphs, so a returned
        // sample is connected by construction; check it is non-trivial.
        assert!(a.m() >= 23);
    }

    #[test]
    fn erdos_renyi_extremes() {
        // p = 1 is the complete graph, whatever the seed.
        assert_eq!(erdos_renyi(6, 1.0, 3).unwrap(), complete(6));
        // p = 0 on n >= 2 can never connect: every attempt fails.
        assert_eq!(erdos_renyi(5, 0.0, 3), None);
        // A singleton needs no edges.
        assert_eq!(erdos_renyi(1, 0.0, 3).unwrap().n(), 1);
    }

    #[test]
    fn erdos_renyi_retries_past_disconnected_samples() {
        // p low enough that single samples are often disconnected but a
        // connected one exists within the retry budget: every seed in a
        // band must still produce a graph (the retry path runs).
        for seed in 0..20 {
            let g = erdos_renyi(12, 0.25, seed).expect("retry budget finds a connected sample");
            assert_eq!(g.n(), 12);
        }
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(3, 2); // spine 0—1—2, legs 3..9
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 2 + 6);
        assert_eq!(g.degree(1), 4); // two spine neighbours + two legs
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1); // legs are leaves
        assert_eq!(g.max_degree(), 4);
        assert_eq!(GraphMetrics::new(&g).diameter(), 4); // leg—spine—spine—spine—leg
    }

    #[test]
    fn caterpillar_degenerates_to_line() {
        assert_eq!(caterpillar(4, 0), line(4));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(7); // hub + 6-ring
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert_eq!(g.degree(0), 6);
        assert!(g.nodes().skip(1).all(|p| g.degree(p) == 3));
        assert_eq!(GraphMetrics::new(&g).diameter(), 2);
    }

    #[test]
    fn wheel_minimum() {
        let g = wheel(4); // hub + triangle = K4
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3); // two K4 + 2 intermediate bridge nodes
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 6 + 6 + 3);
        let m = GraphMetrics::new(&g);
        // Diameter: clique-corner → bridge(3 edges) → clique-corner = 5.
        assert_eq!(m.diameter(), 5);
    }

    #[test]
    fn barbell_direct_bridge() {
        let g = barbell(3, 1);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 3 + 3 + 1);
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!(g.nodes().all(|p| g.degree(p) == 3));
        let m = GraphMetrics::new(&g);
        assert_eq!(m.diameter(), 2);
    }

    #[test]
    fn figure3_network_shape() {
        let g = figure3_network();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(GraphMetrics::new(&g).diameter(), 2);
    }
}
