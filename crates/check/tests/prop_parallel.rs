//! Property: parallel exploration is observationally identical to
//! sequential exploration.
//!
//! The explorer's contract is not "same verdict" but **bit-identical
//! [`Report`]s** — state counts, terminal counts, max depth, violation
//! list (contents *and* order), truncation point, and the reconstructed
//! counterexample must all match, on arbitrary small instances and
//! arbitrary worker counts. The level-synchronous merge (see the crate
//! docs) is what makes this hold; this suite is its regression net.

use proptest::prelude::*;
use ssmfp_check::Explorer;
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{GhostId, SsmfpProtocol};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};

fn clean_states(graph: &Graph) -> Vec<NodeState> {
    corruption::corrupt(graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(graph.n(), r))
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (2usize..=4).prop_map(gen::line),
        (3usize..=4).prop_map(gen::ring),
        (3usize..=4).prop_map(gen::star),
        Just(gen::caterpillar(2, 1)),
    ]
}

/// An instance: a topology, 1–2 valid messages, an optional corrupted
/// routing entry, and optionally the literal-R5 guard (so violating
/// explorations — early stop, counterexample reconstruction — are
/// exercised too, not just clean ones).
#[derive(Debug, Clone)]
struct Instance {
    graph: Graph,
    states: Vec<NodeState>,
    expectations: Vec<(GhostId, NodeId)>,
    literal_r5: bool,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        arb_graph(),
        proptest::collection::vec((any::<u32>(), any::<u32>(), 0u64..4), 1..=2),
        any::<u32>(),
        prop_oneof![7 => Just(false), 3 => Just(true)],
        prop_oneof![4 => Just(false), 1 => Just(true)],
    )
        .prop_map(|(graph, msgs, corrupt_pick, corrupt, literal_r5)| {
            let n = graph.n();
            let mut states = clean_states(&graph);
            let mut expectations = Vec::new();
            for (i, &(src, dst, payload)) in msgs.iter().enumerate() {
                let src = src as usize % n;
                let dst = (src + 1 + dst as usize % (n - 1)) % n; // dst != src
                let ghost = GhostId::Valid(i as u64);
                states[src].outbox.push_back(Outgoing {
                    dest: dst,
                    payload,
                    ghost,
                });
                expectations.push((ghost, dst));
            }
            if corrupt && n >= 3 {
                // Point one node's route for one destination at a wrong
                // (but real) neighbour, forcing repair to interleave.
                let p = corrupt_pick as usize % n;
                let d = (p + 1) % n;
                let nbrs = graph.neighbors(p);
                states[p].routing.parent[d] = nbrs[corrupt_pick as usize % nbrs.len()];
                states[p].routing.dist[d] = n as u32;
            }
            Instance {
                graph,
                states,
                expectations,
                literal_r5,
            }
        })
}

fn explorer_for(inst: &Instance, max_states: u64, trace: bool) -> Explorer {
    let mut proto = SsmfpProtocol::new(inst.graph.n(), inst.graph.max_degree());
    if inst.literal_r5 {
        proto = proto.with_literal_r5();
    }
    let mut ex = Explorer::new(inst.graph.clone(), proto, inst.expectations.clone());
    ex.max_states = max_states;
    ex.stop_at_first = true;
    ex.trace_counterexamples = trace;
    ex
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Bit-identical reports across worker counts, including truncated
    /// runs (the cap is drawn small enough to truncate some instances).
    #[test]
    fn parallel_report_equals_sequential(
        inst in arb_instance(),
        threads in 2usize..=4,
        max_states in prop_oneof![Just(400u64), Just(5_000u64)],
        trace in any::<bool>(),
    ) {
        let seq_report = explorer_for(&inst, max_states, trace).explore(inst.states.clone());
        let par_report = explorer_for(&inst, max_states, trace)
            .with_threads(threads)
            .explore(inst.states.clone());
        prop_assert_eq!(seq_report, par_report);
    }
}
