//! Regression: partial-order reduction must agree with full exploration.
//!
//! The reduction prunes interleavings of moves whose *declared* footprints
//! are independent (see `Explorer::successors_reduced` for the
//! approximation involved). These tests pin, on the CI topologies — the
//! 4-node ring and a depth-3 tree — that the pruned exploration reaches
//! the same verdict and the same violation set as the full one, and that
//! on the ring it actually explores strictly fewer states.

use ssmfp_check::Explorer;
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{GhostId, SsmfpProtocol};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};

fn clean_states(graph: &Graph) -> Vec<NodeState> {
    corruption::corrupt(graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(graph.n(), r))
        .collect()
}

fn enqueue(
    states: &mut [NodeState],
    src: NodeId,
    dst: NodeId,
    payload: u64,
    seq: u64,
) -> (GhostId, NodeId) {
    let ghost = GhostId::Valid(seq);
    states[src].outbox.push_back(Outgoing {
        dest: dst,
        payload,
        ghost,
    });
    (ghost, dst)
}

/// Runs `graph`/`states` in both modes and asserts identical verdicts and
/// identical violation sets; returns `(full_states, por_states)`.
fn both_modes(
    graph: Graph,
    states: Vec<NodeState>,
    exp: Vec<(GhostId, NodeId)>,
    literal_r5: bool,
) -> (u64, u64) {
    let mut proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
    if literal_r5 {
        proto = proto.with_literal_r5();
    }
    let full = Explorer::new(graph.clone(), proto.clone(), exp.clone());
    let reduced = Explorer::new(graph, proto, exp).with_partial_order_reduction();
    let full_report = full.explore(states.clone());
    let por_report = reduced.explore(states);
    assert_eq!(
        full_report.verified(),
        por_report.verified(),
        "verdict mismatch: full={full_report:?} POR={por_report:?}"
    );
    // Violation *sets*: sort debug renderings (Violation is not Ord).
    let mut full_v: Vec<String> = full_report
        .violations
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    let mut por_v: Vec<String> = por_report
        .violations
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    full_v.sort();
    full_v.dedup();
    por_v.sort();
    por_v.dedup();
    if full_report.verified() {
        // On clean instances the sets must match exactly (both empty).
        assert_eq!(full_v, por_v);
    } else {
        // On violating instances both stop at the first violation, which
        // the reduction may reach at a different depth; require the same
        // *kinds* instead of the same depths.
        let kind = |s: &String| s.split_whitespace().next().unwrap().to_string();
        let full_kinds: Vec<String> = full_v.iter().map(kind).collect();
        let por_kinds: Vec<String> = por_v.iter().map(kind).collect();
        assert_eq!(full_kinds, por_kinds, "full={full_v:?} POR={por_v:?}");
    }
    (full_report.states, por_report.states)
}

#[test]
fn ring4_two_messages_same_verdict_strictly_fewer_states() {
    let graph = gen::ring(4);
    let mut states = clean_states(&graph);
    let exp = vec![
        enqueue(&mut states, 0, 1, 1, 0),
        enqueue(&mut states, 2, 3, 2, 1),
    ];
    let (full, por) = both_modes(graph, states, exp, false);
    assert!(
        por < full,
        "POR must prune on the 4-ring benchmark: {por} vs {full}"
    );
}

#[test]
fn ring4_crossing_messages_same_verdict() {
    let graph = gen::ring(4);
    let mut states = clean_states(&graph);
    let exp = vec![
        enqueue(&mut states, 0, 2, 3, 0),
        enqueue(&mut states, 2, 0, 5, 1),
    ];
    both_modes(graph, states, exp, false);
}

#[test]
fn depth3_tree_same_verdict() {
    // The 4-node path rooted at node 0 is a tree of depth 3 — the
    // smallest instance whose routes traverse three tree edges.
    let graph = gen::line(4);
    let mut states = clean_states(&graph);
    let exp = vec![
        enqueue(&mut states, 0, 3, 3, 0),
        enqueue(&mut states, 3, 0, 5, 1),
    ];
    let (full, por) = both_modes(graph, states, exp, false);
    assert!(por <= full);
}

#[test]
fn depth3_tree_corrupted_table_same_verdict() {
    // Routing repair interleaved with forwarding: the priority coupling
    // in the declared footprints makes A-moves dependent with adjacent
    // forwarding moves, so the reduction must keep those interleavings.
    let graph = gen::line(4);
    let mut states = clean_states(&graph);
    states[1].routing.parent[3] = 0;
    states[1].routing.dist[3] = 4;
    let exp = vec![enqueue(&mut states, 0, 3, 4, 0)];
    both_modes(graph, states, exp, false);
}

#[test]
fn violating_instance_same_verdict() {
    // The literal-R5 loss: a stable violation must survive the pruning.
    let graph = gen::line(2);
    let mut states = clean_states(&graph);
    let exp = vec![
        enqueue(&mut states, 0, 1, 7, 0),
        enqueue(&mut states, 0, 1, 7, 1),
    ];
    both_modes(graph, states, exp, true);
}
