//! `ssmfp-check` — runs the exhaustive verification suite and prints the
//! state counts (the source of the EXPERIMENTS.md verification section).

use ssmfp_check::{Explorer, Violation};
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::SsmfpProtocol;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};

fn clean_states(graph: &Graph) -> Vec<NodeState> {
    corruption::corrupt(graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(graph.n(), r))
        .collect()
}

fn enqueue(
    states: &mut [NodeState],
    src: NodeId,
    dst: NodeId,
    payload: u64,
    seq: u64,
) -> (GhostId, NodeId) {
    let ghost = GhostId::Valid(seq);
    states[src].outbox.push_back(Outgoing {
        dest: dst,
        payload,
        ghost,
    });
    (ghost, dst)
}

fn verdict_of(report: &ssmfp_check::Report) -> String {
    if report.verified() {
        "VERIFIED".to_string()
    } else if report.truncated {
        "truncated".to_string()
    } else {
        let lost = report.violations.iter().any(|v| {
            matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )
        });
        if lost {
            "LOSS FOUND".to_string()
        } else {
            format!("{} violations", report.violations.len())
        }
    }
}

fn main() {
    println!("Exhaustive verification (ALL central-daemon schedules)");
    println!("each instance runs twice: full exploration, then footprint-driven POR\n");
    println!(
        "{:<44} | {:>9} | {:>9} | {:>6} | {:>9} | {:>6} | {:>10}",
        "instance", "states", "terminals", "depth", "POR", "saved", "verdict"
    );

    let mut counterexample: Option<Vec<String>> = None;
    let mut mismatches: Vec<String> = Vec::new();
    let mut run = |name: &str,
                   graph: Graph,
                   states: Vec<NodeState>,
                   exp: Vec<(GhostId, NodeId)>,
                   literal_r5: bool| {
        let mut proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
        if literal_r5 {
            proto = proto.with_literal_r5();
        }
        let mut explorer = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        explorer.trace_counterexamples = literal_r5;
        let report = explorer.explore(states.clone());
        if report.counterexample.is_some() {
            counterexample = report.counterexample.clone();
        }
        let por_explorer = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let por_report = por_explorer.explore(states);
        if por_report.verified() != report.verified() {
            mismatches.push(format!(
                "{name}: full={} POR={}",
                verdict_of(&report),
                verdict_of(&por_report)
            ));
        }
        let saved = 100.0 * (1.0 - por_report.states as f64 / report.states as f64);
        println!(
            "{:<44} | {:>9} | {:>9} | {:>6} | {:>9} | {:>5.1}% | {:>10}",
            name,
            report.states,
            report.terminals,
            report.max_depth,
            por_report.states,
            saved,
            verdict_of(&report)
        );
    };

    // 1. line-2, one message.
    let g = gen::line(2);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 1, 3, 0)];
    run("line-2, 1 message", g, s, e, false);

    // 2. line-3, two crossing messages.
    let g = gen::line(3);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 2, 3, 0), enqueue(&mut s, 2, 0, 5, 1)];
    run("line-3, 2 crossing messages", g, s, e, false);

    // 3. line-3, same payload twice (merge hazard).
    let g = gen::line(3);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 2, 7, 0), enqueue(&mut s, 0, 2, 7, 1)];
    run("line-3, same payload twice", g, s, e, false);

    // 4. line-3, colliding garbage in the middle.
    let g = gen::line(3);
    let mut s = clean_states(&g);
    s[1].slots[2].buf_e = Some(Message {
        payload: 7,
        last_hop: 0,
        color: Color(0),
        ghost: GhostId::Invalid(0),
    });
    let e = vec![enqueue(&mut s, 0, 2, 7, 0)];
    run("line-3, colliding invalid garbage", g, s, e, false);

    // 5. line-3, corrupted routing entry.
    let g = gen::line(3);
    let mut s = clean_states(&g);
    s[1].routing.parent[2] = 0;
    s[1].routing.dist[2] = 2;
    let e = vec![enqueue(&mut s, 0, 2, 4, 0)];
    run("line-3, corrupted table at middle node", g, s, e, false);

    // 6. triangle, two messages + garbage.
    let g = gen::ring(3);
    let mut s = clean_states(&g);
    s[2].slots[1].buf_r = Some(Message {
        payload: 1,
        last_hop: 2,
        color: Color(1),
        ghost: GhostId::Invalid(0),
    });
    let e = vec![enqueue(&mut s, 0, 1, 1, 0), enqueue(&mut s, 1, 0, 2, 1)];
    run("triangle, 2 messages + garbage", g, s, e, false);

    // 7. 4-ring, two far-apart messages (the POR benchmark: activity at
    // opposite edges of the ring commutes until the messages meet).
    let g = gen::ring(4);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 1, 1, 0), enqueue(&mut s, 2, 3, 2, 1)];
    run("ring-4, 2 far-apart messages", g, s, e, false);

    // 8. The literal-R5 counterexample.
    let g = gen::line(2);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 1, 7, 0), enqueue(&mut s, 0, 1, 7, 1)];
    run("line-2, literal R5 (paper verbatim)", g, s, e, true);

    println!("\nhash-compacted explicit-state exploration; VERIFIED = no duplication,");
    println!("no misdelivery, no loss, caterpillar coverage, and delivery at every terminal.");
    println!("POR = distinct states under partial-order reduction (footprint independence).");
    if !mismatches.is_empty() {
        eprintln!("\nVERDICT MISMATCH between full exploration and POR:");
        for m in &mismatches {
            eprintln!("  {m}");
        }
        std::process::exit(1);
    }
    if let Some(path) = counterexample {
        println!("\ncounterexample schedule for the literal-R5 loss (DESIGN.md §5):");
        for (i, step) in path.iter().enumerate() {
            println!("  {:>2}. {}", i + 1, step);
        }
    }
}
