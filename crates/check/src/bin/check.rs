//! `ssmfp-check` — runs the exhaustive verification suite and prints the
//! state counts (the source of the EXPERIMENTS.md verification section).
//!
//! Every instance is explored four ways: sequentially with the packed
//! frontier (the default representation: interned messages + flat codec
//! words + interned node blobs), in parallel (unless `--seq`), with the
//! unpacked `Arc`-based representation, and under partial-order
//! reduction. The parallel and unpacked reports must be
//! **bit-identical** to the packed sequential one and the POR verdict
//! must agree — any divergence exits nonzero. The `B/st` column reports
//! the packed bytes/state (interning tables amortized in) and `pack` the
//! compression factor versus the unpacked representation's sharing-aware
//! accounting.
//!
//! Usage: `ssmfp-check [--threads N] [--seq]`
//!
//! * `--threads N` — worker threads for the parallel run (default: the
//!   machine's available parallelism).
//! * `--seq` — sequential only: skip the parallel run and its
//!   cross-check (throughput is then reported for the sequential pass;
//!   the packed-vs-unpacked cross-check still runs).

use ssmfp_check::{Explorer, Violation};
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::SsmfpProtocol;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};
use std::time::Instant;

fn clean_states(graph: &Graph) -> Vec<NodeState> {
    corruption::corrupt(graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(graph.n(), r))
        .collect()
}

fn enqueue(
    states: &mut [NodeState],
    src: NodeId,
    dst: NodeId,
    payload: u64,
    seq: u64,
) -> (GhostId, NodeId) {
    let ghost = GhostId::Valid(seq);
    states[src].outbox.push_back(Outgoing {
        dest: dst,
        payload,
        ghost,
    });
    (ghost, dst)
}

fn verdict_of(report: &ssmfp_check::Report) -> String {
    if report.verified() {
        "VERIFIED".to_string()
    } else if report.truncated {
        "truncated".to_string()
    } else {
        let lost = report.violations.iter().any(|v| {
            matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )
        });
        if lost {
            "LOSS FOUND".to_string()
        } else {
            format!("{} violations", report.violations.len())
        }
    }
}

struct Options {
    threads: usize,
    seq_only: bool,
    json: Option<String>,
}

fn parse_args() -> Options {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut opts = Options {
        threads: default_threads,
        seq_only: false,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seq" => opts.seq_only = true,
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--threads needs a value"));
                opts.threads = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --threads value: {v}")));
                if opts.threads == 0 {
                    die("--threads must be >= 1");
                }
            }
            "--json" => {
                opts.json = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--version" => {
                println!("ssmfp-check {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("usage: ssmfp-check [--threads N] [--seq] [--json FILE]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("ssmfp-check: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    println!("Exhaustive verification (ALL central-daemon schedules)");
    if opts.seq_only {
        println!("packed sequential + unpacked cross-check, then footprint-driven POR\n");
    } else {
        println!(
            "each instance: packed sequential, parallel x{}, unpacked (PR-2 \
             representation) — bit-identical reports enforced — then POR\n",
            opts.threads
        );
    }
    println!(
        "{:<40} | {:>8} | {:>6} | {:>5} | {:>8} | {:>6} | {:>6} | {:>6} | {:>8} | {:>6} | {:>10}",
        "instance",
        "states",
        "terms",
        "depth",
        "POR",
        "saved",
        "B/st",
        "pack",
        "kst/s",
        "spdup",
        "verdict"
    );

    let mut counterexample: Option<Vec<String>> = None;
    let mut mismatches: Vec<String> = Vec::new();
    let mut unexpected: Vec<String> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();
    let mut run = |name: &str,
                   graph: Graph,
                   states: Vec<NodeState>,
                   exp: Vec<(GhostId, NodeId)>,
                   literal_r5: bool| {
        let mut proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
        if literal_r5 {
            proto = proto.with_literal_r5();
        }
        let mut explorer = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        explorer.trace_counterexamples = literal_r5;
        let t0 = Instant::now();
        let (report, stats) = explorer.explore_with_stats(states.clone());
        let seq_secs = t0.elapsed().as_secs_f64();
        if report.counterexample.is_some() {
            counterexample = report.counterexample.clone();
        }

        // Packed-vs-unpacked cross-check: the PR-2 Arc-based path must
        // produce the bit-identical report on every instance.
        let mut unp = Explorer::new(graph.clone(), proto.clone(), exp.clone()).with_packed(false);
        unp.trace_counterexamples = literal_r5;
        let (unp_report, unp_stats) = unp.explore_with_stats(states.clone());
        if unp_report != report {
            mismatches.push(format!(
                "{name}: unpacked report diverges from packed \
                 (packed {} states/{}, unpacked {} states/{})",
                report.states,
                verdict_of(&report),
                unp_report.states,
                verdict_of(&unp_report)
            ));
        }
        let pack_ratio = unp_stats.bytes_per_state() / stats.bytes_per_state().max(1e-9);

        // Parallel cross-check: the report must be bit-identical.
        let (speedup, throughput_secs) = if opts.seq_only || opts.threads <= 1 {
            (1.0, seq_secs)
        } else {
            let mut par =
                Explorer::new(graph.clone(), proto.clone(), exp.clone()).with_threads(opts.threads);
            par.trace_counterexamples = literal_r5;
            let t0 = Instant::now();
            let par_report = par.explore(states.clone());
            let par_secs = t0.elapsed().as_secs_f64();
            if par_report != report {
                mismatches.push(format!(
                    "{name}: parallel report diverges from sequential \
                     (seq {} states/{}, par {} states/{})",
                    report.states,
                    verdict_of(&report),
                    par_report.states,
                    verdict_of(&par_report)
                ));
            }
            (seq_secs / par_secs.max(1e-9), par_secs)
        };

        let por_explorer = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let por_report = por_explorer.explore(states);
        if por_report.verified() != report.verified() {
            mismatches.push(format!(
                "{name}: full={} POR={}",
                verdict_of(&report),
                verdict_of(&por_report)
            ));
        }
        let saved = 100.0 * (1.0 - por_report.states as f64 / report.states as f64);
        let kstates_per_sec = report.states as f64 / throughput_secs.max(1e-9) / 1e3;
        println!(
            "{:<40} | {:>8} | {:>6} | {:>5} | {:>8} | {:>5.1}% | {:>6.0} | {:>5.1}x | {:>8.1} | {:>5.2}x | {:>10}",
            name,
            report.states,
            report.terminals,
            report.max_depth,
            por_report.states,
            saved,
            stats.bytes_per_state(),
            pack_ratio,
            kstates_per_sec,
            speedup,
            verdict_of(&report)
        );
        // The literal-R5 instance is *supposed* to find the paper's loss;
        // everything else must verify.
        if !literal_r5 && !report.verified() {
            unexpected.push(format!("{name}: {}", verdict_of(&report)));
        }
        json_rows.push(format!(
            "{{\"instance\": \"{}\", \"states\": {}, \"terminals\": {}, \"max_depth\": {}, \
             \"por_states\": {}, \"bytes_per_state\": {:.1}, \"verdict\": \"{}\", \
             \"expected_loss\": {}}}",
            name,
            report.states,
            report.terminals,
            report.max_depth,
            por_report.states,
            stats.bytes_per_state(),
            verdict_of(&report),
            literal_r5
        ));
    };

    // 1. line-2, one message.
    let g = gen::line(2);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 1, 3, 0)];
    run("line-2, 1 message", g, s, e, false);

    // 2. line-3, two crossing messages.
    let g = gen::line(3);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 2, 3, 0), enqueue(&mut s, 2, 0, 5, 1)];
    run("line-3, 2 crossing messages", g, s, e, false);

    // 3. line-3, same payload twice (merge hazard).
    let g = gen::line(3);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 2, 7, 0), enqueue(&mut s, 0, 2, 7, 1)];
    run("line-3, same payload twice", g, s, e, false);

    // 4. line-3, colliding garbage in the middle.
    let g = gen::line(3);
    let mut s = clean_states(&g);
    s[1].slots[2].buf_e = Some(Message {
        payload: 7,
        last_hop: 0,
        color: Color(0),
        ghost: GhostId::Invalid(0),
    });
    let e = vec![enqueue(&mut s, 0, 2, 7, 0)];
    run("line-3, colliding invalid garbage", g, s, e, false);

    // 5. line-3, corrupted routing entry.
    let g = gen::line(3);
    let mut s = clean_states(&g);
    s[1].routing.parent[2] = 0;
    s[1].routing.dist[2] = 2;
    let e = vec![enqueue(&mut s, 0, 2, 4, 0)];
    run("line-3, corrupted table at middle node", g, s, e, false);

    // 6. triangle, two messages + garbage.
    let g = gen::ring(3);
    let mut s = clean_states(&g);
    s[2].slots[1].buf_r = Some(Message {
        payload: 1,
        last_hop: 2,
        color: Color(1),
        ghost: GhostId::Invalid(0),
    });
    let e = vec![enqueue(&mut s, 0, 1, 1, 0), enqueue(&mut s, 1, 0, 2, 1)];
    run("triangle, 2 messages + garbage", g, s, e, false);

    // 7. line-4 ("tree depth 3"), end-to-end message with a corrupted
    // table mid-path — the deeper regression instance of the CI gate.
    let g = gen::line(4);
    let mut s = clean_states(&g);
    s[2].routing.parent[3] = 1;
    s[2].routing.dist[3] = 3;
    let e = vec![enqueue(&mut s, 0, 3, 6, 0)];
    run("line-4 (tree depth 3), corrupted table", g, s, e, false);

    // 8. 4-ring, two far-apart messages (the POR and parallel-speedup
    // benchmark: activity at opposite edges commutes until they meet).
    let g = gen::ring(4);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 1, 1, 0), enqueue(&mut s, 2, 3, 2, 1)];
    run("ring-4, 2 far-apart messages", g, s, e, false);

    // 9. line-5, two crossing messages — the larger memory instance the
    // packed frontier exists for: longer paths, more in-flight copies.
    let g = gen::line(5);
    let mut s = clean_states(&g);
    let e = vec![
        enqueue(&mut s, 0, 4, 3, 0),
        enqueue(&mut s, 4, 0, 5, 1),
        enqueue(&mut s, 2, 4, 1, 2),
    ];
    run("line-5, 3 messages (2 crossing)", g, s, e, false);

    // 10. caterpillar(3,2): 9 nodes, Δ = 4 — the wider-degree instance
    // (per-node state grows with Δ, exercising the codec's slot table).
    // One end-leg-to-end-leg message crossing the whole spine.
    let g = gen::caterpillar(3, 2);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 3, 8, 6, 0), enqueue(&mut s, 7, 4, 2, 1)];
    run("caterpillar(3,2), 2 leg-to-leg msgs", g, s, e, false);

    // 11. The literal-R5 counterexample.
    let g = gen::line(2);
    let mut s = clean_states(&g);
    let e = vec![enqueue(&mut s, 0, 1, 7, 0), enqueue(&mut s, 0, 1, 7, 1)];
    run("line-2, literal R5 (paper verbatim)", g, s, e, true);

    println!("\nhash-compacted explicit-state exploration; VERIFIED = no duplication,");
    println!("no misdelivery, no loss, caterpillar coverage, and delivery at every terminal.");
    println!("POR = distinct states under partial-order reduction (footprint independence).");
    println!("B/st = packed bytes/state, interning tables amortized; pack = unpacked (Arc-");
    println!("based, sharing-aware) bytes/state over packed — both reports cross-checked.");
    println!("kst/s = thousand distinct states/second; spdup = sequential/parallel wall time.");
    if let Some(path) = &opts.json {
        let body = format!(
            "{{\n  \"instances\": [\n    {}\n  ],\n  \"mismatches\": {},\n  \"unexpected\": {}\n}}\n",
            json_rows.join(",\n    "),
            mismatches.len(),
            unexpected.len()
        );
        let result = if path == "-" {
            print!("{body}");
            Ok(())
        } else {
            std::fs::write(path, body)
        };
        if let Err(e) = result {
            eprintln!("ssmfp-check: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    if !mismatches.is_empty() || !unexpected.is_empty() {
        eprintln!("\nVERDICT MISMATCH:");
        for m in mismatches.iter().chain(&unexpected) {
            eprintln!("  {m}");
        }
        std::process::exit(1);
    }
    if let Some(path) = counterexample {
        println!("\ncounterexample schedule for the literal-R5 loss (DESIGN.md §5):");
        for (i, step) in path.iter().enumerate() {
            println!("  {:>2}. {}", i + 1, step);
        }
    }
}
