//! Exhaustive bounded model checking for SSMFP.
//!
//! The sampled executions elsewhere in the workspace check SP along *some*
//! schedules; this crate checks it along **all of them** (for the central
//! daemon) on instances small enough to enumerate. Starting from a given
//! initial configuration, [`Explorer`] breadth-first-explores the full
//! transition system — every `(processor, enabled action)` successor of
//! every reachable configuration — and audits, at every state:
//!
//! * **no duplication**: no ghost identity delivered twice,
//! * **no misdelivery**: deliveries only at the message's destination,
//! * **no loss**: a generated-but-undelivered message always exists
//!   somewhere in the system,
//! * **caterpillar coverage**: Definition 3's structural invariant,
//! * at **terminal** states: every generated message was delivered.
//!
//! Visited states are hash-compacted (the standard explicit-state
//! model-checking trade-off: a 64-bit collision is astronomically
//! unlikely at the state counts involved and can only cause a *missed*
//! state, never a false alarm).
//!
//! # Performance architecture
//!
//! The explorer is built for throughput (see DESIGN.md §9 for the full
//! argument):
//!
//! * **Copy-on-write states**: a configuration holds `Arc<NodeState>`
//!   per node; a successor clones `n` pointers and rebuilds only the
//!   executed node. Per-node hashes are cached, so rehashing a successor
//!   is one node hash plus an `O(n)` word-combine instead of re-hashing
//!   every buffer of every node.
//! * **Parallel frontier** ([`Explorer::threads`]): exploration proceeds
//!   level by level. Phase A fans the current BFS level out to worker
//!   threads (`std::thread::scope`, dynamic work pickup off an atomic
//!   cursor) which do the expensive part — successor generation, audits,
//!   hashing — against a read-only snapshot of the visited set. Phase B
//!   merges sequentially, replaying exactly the order the sequential loop
//!   would have used, so the resulting [`Report`] (state counts,
//!   violations, counterexample, truncation point) is **bit-identical**
//!   to a single-threaded run.
//! * **Sharded visited set** keyed by the vendored Fx hasher: workers
//!   probe it lock-free through `&self` during phase A (annotating
//!   already-visited successors so the merge can skip them); all inserts
//!   happen in phase B through `&mut self` — the two borrow phases
//!   replace any locking.
//! * **Packed frontier storage** ([`Explorer::packed`], default on):
//!   frontier states are held as flat `u32` words — messages interned to
//!   dense ids (`ssmfp_core::codec`), each node's words interned again
//!   as a blob id (the COLLAPSE trick: a successor rewrites one node, so
//!   `n - 1` blob ids are shared with the parent) — cutting bytes/state
//!   several-fold versus the `Arc`-based deep representation.
//!   [`Explorer::explore_with_stats`] reports the accounting
//!   ([`ExploreStats`]); the [`Report`] itself is bit-identical across
//!   packed/unpacked, sequential/parallel — all four combinations.
//!
//! With [`Explorer::partial_order_reduction`] the explorer uses the
//! independence relation derived from the rules' declared footprints
//! (`ssmfp_core::footprint`, the same declarations `ssmfp-lint` checks
//! statically) to skip redundant interleavings of commuting moves — see
//! [`Explorer::successors_reduced`] for the exact conditions and the
//! approximation involved. POR's cycle proviso consults the visited set
//! *mid-level*, which makes its exploration order-dependent, so POR runs
//! always stay sequential. The `ssmfp-check` binary runs every instance
//! in both modes and prints the measured state-count reduction.
//!
//! The checker is also what turns the DESIGN.md §5 argument about rule R5
//! into a machine-checked fact: with the paper's guard taken literally
//! (`q ∈ N_p ∪ {p}`), the checker finds a schedule in which a valid
//! message is erased without delivery (a Lemma 4 violation); with the
//! deviation (`q ∈ N_p`), the same instance verifies clean — see the
//! crate tests.

use fxhash::{FxBuildHasher, FxHasher};
use ssmfp_core::codec::{decode_ghost, encode_ghost, MessageTable, StateCodec};
use ssmfp_core::{
    classify_buffers, deep_node_bytes, node_fingerprint, Event, GhostId, NodeState, SsmfpAction,
    SsmfpProtocol,
};
use ssmfp_kernel::{independent, Protocol, View};
use ssmfp_topology::{Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One verification state: protocol configuration plus delivery history.
///
/// Node states are `Arc`-shared between a state and its successors
/// (copy-on-write: a move rewrites one node), and per-node hashes are
/// cached so the combined hash is recomputed incrementally.
#[derive(Debug, Clone)]
struct CheckState {
    nodes: Vec<Arc<NodeState>>,
    /// Sorted (ghost, node) delivery records.
    delivered: Vec<(GhostId, NodeId)>,
    /// Position-mixed Fx hash of each node state.
    node_hashes: Vec<u64>,
    /// Combined hash of `node_hashes` and `delivered`.
    hash: u64,
}

fn combine_hash(node_hashes: &[u64], delivered: &[(GhostId, NodeId)]) -> u64 {
    let mut h = FxHasher::default();
    for &nh in node_hashes {
        h.write_u64(nh);
    }
    delivered.hash(&mut h);
    h.finish()
}

impl CheckState {
    fn new(nodes: Vec<NodeState>) -> Self {
        let nodes: Vec<Arc<NodeState>> = nodes.into_iter().map(Arc::new).collect();
        let node_hashes: Vec<u64> = nodes
            .iter()
            .enumerate()
            .map(|(p, s)| node_fingerprint(p, s))
            .collect();
        let hash = combine_hash(&node_hashes, &[]);
        CheckState {
            nodes,
            delivered: Vec::new(),
            node_hashes,
            hash,
        }
    }
}

const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS;

/// Hash-compacted visited set, sharded by the hash's top bits (the
/// bottom bits index buckets inside each shard's table). During the
/// parallel phase, workers probe it lock-free through `&self`; every
/// insert happens in the sequential merge phase through `&mut self` —
/// the alternating borrow phases replace any locking.
struct ShardedVisited {
    shards: Vec<HashSet<u64, FxBuildHasher>>,
}

impl ShardedVisited {
    fn new() -> Self {
        ShardedVisited {
            shards: (0..SHARDS).map(|_| HashSet::default()).collect(),
        }
    }

    #[inline]
    fn shard_of(h: u64) -> usize {
        (h >> (64 - SHARD_BITS)) as usize
    }

    #[inline]
    fn contains(&self, h: u64) -> bool {
        self.shards[Self::shard_of(h)].contains(&h)
    }

    /// Inserts `h`; true if it was new.
    #[inline]
    fn insert(&mut self, h: u64) -> bool {
        self.shards[Self::shard_of(h)].insert(h)
    }
}

/// Interned storage for packed node blobs — the COLLAPSE-style second
/// level of compression on top of [`StateCodec`]'s flat words: a packed
/// state stores one `u32` id per node instead of the node's full word
/// blob, and identical `(position, blob)` pairs — the common case, since
/// a successor rewrites a single node — are stored exactly once. Each
/// entry caches the node's position-mixed semantic hash so unpacking
/// skips rehashing.
///
/// Ids are assigned in first-encounter order. Within one run packing is
/// deterministic (the same node state always packs to the same words and
/// hence the same id), but ids are **not** canonical across runs or
/// tables — state identity always goes through the semantic hash.
struct NodeTable {
    /// Fx hash of `(position, words)` → entry ids with that key hash.
    buckets: HashMap<u64, Vec<u32>, FxBuildHasher>,
    entries: Vec<NodeEntry>,
}

struct NodeEntry {
    p: u32,
    /// Cached [`node_fingerprint`] of the decoded node.
    node_hash: u64,
    words: Box<[u32]>,
}

impl NodeTable {
    fn new() -> Self {
        NodeTable {
            buckets: HashMap::default(),
            entries: Vec::new(),
        }
    }

    fn key_hash(p: usize, words: &[u32]) -> u64 {
        let mut h = FxHasher::default();
        h.write_usize(p);
        for &w in words {
            h.write_u32(w);
        }
        h.finish()
    }

    fn intern(&mut self, p: usize, words: &[u32], node_hash: u64) -> u32 {
        let kh = Self::key_hash(p, words);
        if let Some(ids) = self.buckets.get(&kh) {
            for &id in ids {
                let e = &self.entries[id as usize];
                if e.p as usize == p && *e.words == *words {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.entries.len()).expect("node table full");
        self.entries.push(NodeEntry {
            p: p as u32,
            node_hash,
            words: words.into(),
        });
        self.buckets.entry(kh).or_default().push(id);
        id
    }

    #[inline]
    fn entry(&self, id: u32) -> &NodeEntry {
        &self.entries[id as usize]
    }

    fn memory_bytes(&self) -> u64 {
        let entries: usize = self
            .entries
            .iter()
            .map(|e| std::mem::size_of::<NodeEntry>() + 4 * e.words.len())
            .sum();
        let buckets: usize = self
            .buckets
            .values()
            .map(|v| std::mem::size_of::<(u64, Vec<u32>)>() + 4 * v.len())
            .sum();
        (entries + buckets) as u64
    }
}

/// One frontier state in packed form: a single word allocation holding
/// the delivery records and one interned node id per position, plus the
/// precomputed combined hash. Layout:
///
/// `[delivered_len, (tag<<16 | node, ghost_lo, ghost_hi) × delivered_len,
///   node_id × n]`
struct PackedCheckState {
    words: Box<[u32]>,
    hash: u64,
}

impl PackedCheckState {
    fn bytes(&self) -> u64 {
        (std::mem::size_of::<PackedCheckState>() + 4 * self.words.len()) as u64
    }
}

/// The packing context a run threads through pack/unpack: the codec and
/// the two interning tables (messages, node blobs). During the parallel
/// phase, workers unpack through `&self`; all interning happens in the
/// sequential merge phase through `&mut self` — the same alternating
/// borrow discipline as [`ShardedVisited`], so interned ids are assigned
/// in a deterministic order and no locking is involved.
struct PackStore {
    codec: StateCodec,
    messages: MessageTable,
    nodes: NodeTable,
    scratch: Vec<u32>,
}

impl PackStore {
    fn new(n: usize) -> Self {
        PackStore {
            codec: StateCodec::new(n),
            messages: MessageTable::new(),
            nodes: NodeTable::new(),
            scratch: Vec::new(),
        }
    }

    fn pack(&mut self, state: &CheckState) -> PackedCheckState {
        let mut words = Vec::with_capacity(1 + 3 * state.delivered.len() + state.nodes.len());
        words.push(state.delivered.len() as u32);
        for &(g, at) in &state.delivered {
            debug_assert!(at < (1 << 16));
            let (tag, lo, hi) = encode_ghost(g);
            words.push((tag << 16) | at as u32);
            words.push(lo);
            words.push(hi);
        }
        for (p, node) in state.nodes.iter().enumerate() {
            self.scratch.clear();
            self.codec
                .pack_node(node, &mut self.messages, &mut self.scratch);
            words.push(self.nodes.intern(p, &self.scratch, state.node_hashes[p]));
        }
        PackedCheckState {
            words: words.into_boxed_slice(),
            hash: state.hash,
        }
    }

    fn unpack(&self, packed: &PackedCheckState) -> CheckState {
        let dl = packed.words[0] as usize;
        let mut delivered = Vec::with_capacity(dl);
        for i in 0..dl {
            let w = packed.words[1 + 3 * i];
            let lo = packed.words[2 + 3 * i];
            let hi = packed.words[3 + 3 * i];
            delivered.push((decode_ghost(w >> 16, lo, hi), (w & 0xFFFF) as NodeId));
        }
        let ids = &packed.words[1 + 3 * dl..];
        let mut nodes = Vec::with_capacity(ids.len());
        let mut node_hashes = Vec::with_capacity(ids.len());
        for &id in ids {
            let entry = self.nodes.entry(id);
            let (node, used) = self.codec.unpack_node(&entry.words, &self.messages);
            debug_assert_eq!(used, entry.words.len());
            nodes.push(Arc::new(node));
            node_hashes.push(entry.node_hash);
        }
        CheckState {
            nodes,
            delivered,
            node_hashes,
            hash: packed.hash,
        }
    }

    fn table_bytes(&self) -> u64 {
        self.messages.memory_bytes() as u64 + self.nodes.memory_bytes()
    }
}

/// A stored frontier state, in whichever representation the run uses.
enum Stored {
    Raw(Box<CheckState>),
    Packed(PackedCheckState),
}

impl Stored {
    #[inline]
    fn hash(&self) -> u64 {
        match self {
            Stored::Raw(s) => s.hash,
            Stored::Packed(p) => p.hash,
        }
    }
}

/// Frontier slot: the stored state plus its accounted byte size.
struct Slot {
    state: Stored,
    bytes: u64,
}

/// Sharing-aware byte estimate of one Arc-based state as the frontier
/// holds it: the spine (struct, `Arc` pointers, cached hashes, delivery
/// records) plus the deep size of the nodes this state does **not**
/// share with its parent (`fresh`) — for a successor, exactly the one
/// rewritten node.
fn raw_state_bytes(state: &CheckState, fresh: &[NodeId]) -> u64 {
    let mut b = std::mem::size_of::<CheckState>()
        + state.nodes.len() * (std::mem::size_of::<Arc<NodeState>>() + std::mem::size_of::<u64>())
        + state.delivered.len() * std::mem::size_of::<(GhostId, NodeId)>();
    for &p in fresh {
        b += deep_node_bytes(&state.nodes[p]);
    }
    b as u64
}

/// Memory accounting for one exploration, reported alongside the
/// [`Report`] by [`Explorer::explore_with_stats`]. Deliberately kept
/// **out** of [`Report`] so the bit-identity contracts (sequential vs
/// parallel, packed vs unpacked) remain byte-for-byte comparisons of the
/// verdict alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreStats {
    /// Whether the run stored packed states.
    pub packed: bool,
    /// States stored (each distinct state is stored exactly once).
    pub states_stored: u64,
    /// Total bytes of every stored state representation.
    pub state_bytes: u64,
    /// Interning tables (messages + node blobs); 0 for unpacked runs.
    pub table_bytes: u64,
    /// Peak live frontier footprint in bytes (states only, not tables).
    /// Unlike every other field, this depends on the traversal
    /// discipline — the sequential explorer drains a FIFO (pop before
    /// push) while the parallel one holds a full level plus the next —
    /// so it is *not* part of the thread-count-invariance contract.
    pub peak_frontier_bytes: u64,
    /// Distinct messages interned (0 for unpacked runs).
    pub interned_messages: u64,
    /// Distinct `(position, node blob)` pairs interned (0 for unpacked).
    pub interned_nodes: u64,
}

impl ExploreStats {
    fn new(packed: bool) -> Self {
        ExploreStats {
            packed,
            states_stored: 0,
            state_bytes: 0,
            table_bytes: 0,
            peak_frontier_bytes: 0,
            interned_messages: 0,
            interned_nodes: 0,
        }
    }

    /// Average bytes to store one distinct state, interning tables
    /// amortized in. The hash-compacted visited set adds ~8 bytes per
    /// state in both modes and is excluded.
    pub fn bytes_per_state(&self) -> f64 {
        if self.states_stored == 0 {
            return 0.0;
        }
        (self.state_bytes + self.table_bytes) as f64 / self.states_stored as f64
    }
}

/// Per-worker scratch buffers reused across successor generation (no
/// per-state allocation for guard evaluation or event collection).
#[derive(Default)]
struct Scratch {
    actions: Vec<SsmfpAction>,
    events: Vec<Event>,
}

/// One successor edge: the reached state and the move that reached it.
struct Succ {
    state: CheckState,
    by: NodeId,
    action: SsmfpAction,
    /// Set during the parallel phase: the successor was already in the
    /// visited set at the start of the level, so the merge phase can skip
    /// its insert (the set only grows). Always false sequentially.
    previsited: bool,
}

/// Phase-A output for one state of the current BFS level.
struct StateResult {
    terminal: bool,
    violations: Vec<Violation>,
    succs: Vec<Succ>,
}

/// A safety violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A ghost identity was delivered twice along some schedule.
    DuplicateDelivery {
        /// The message.
        ghost: GhostId,
        /// BFS depth of the violating state.
        depth: u64,
    },
    /// A valid message was delivered away from its destination.
    Misdelivery {
        /// The message.
        ghost: GhostId,
        /// Node that consumed it.
        at: NodeId,
        /// Depth of the violating state.
        depth: u64,
    },
    /// A generated message vanished: neither delivered nor anywhere in
    /// the system.
    Lost {
        /// The message.
        ghost: GhostId,
        /// Depth of the violating state.
        depth: u64,
    },
    /// Definition 3's coverage invariant failed.
    CaterpillarOrphan {
        /// Depth of the violating state.
        depth: u64,
    },
    /// A terminal (deadlocked/quiescent) state left a generated message
    /// undelivered.
    UndeliveredAtTerminal {
        /// The message.
        ghost: GhostId,
        /// Depth of the terminal state.
        depth: u64,
    },
}

/// Outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited.
    pub states: u64,
    /// Terminal states reached.
    pub terminals: u64,
    /// Violations found (exploration stops at the first by default).
    pub violations: Vec<Violation>,
    /// True if the state or depth cap truncated the exploration.
    pub truncated: bool,
    /// Maximum BFS depth reached.
    pub max_depth: u64,
    /// When a violation was found and tracing was enabled: the schedule
    /// that reaches it, as human-readable `processor: action` lines.
    pub counterexample: Option<Vec<String>>,
}

impl Report {
    /// Whether the instance verified clean and completely.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// The exhaustive explorer.
///
/// ```
/// use ssmfp_check::Explorer;
/// use ssmfp_core::state::{NodeState, Outgoing};
/// use ssmfp_core::{GhostId, SsmfpProtocol};
/// use ssmfp_routing::{corruption, CorruptionKind};
/// use ssmfp_topology::gen;
///
/// let graph = gen::line(2);
/// let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
///     .into_iter()
///     .map(|r| NodeState::clean(2, r))
///     .collect();
/// let ghost = GhostId::Valid(0);
/// states[0].outbox.push_back(Outgoing { dest: 1, payload: 3, ghost });
/// let explorer = Explorer::new(graph, SsmfpProtocol::new(2, 1), vec![(ghost, 1)]);
/// let report = explorer.explore(states);
/// assert!(report.verified()); // every schedule delivers exactly once
/// ```
pub struct Explorer {
    graph: Graph,
    protocol: SsmfpProtocol,
    /// Messages expected: (ghost, destination), as enqueued.
    expectations: Vec<(GhostId, NodeId)>,
    /// Cap on distinct visited states.
    pub max_states: u64,
    /// Stop at the first violation (default true).
    pub stop_at_first: bool,
    /// Record parent pointers so a violation comes with the schedule that
    /// reaches it (costs memory proportional to the visited set).
    pub trace_counterexamples: bool,
    /// Partial-order reduction (default off): when one processor's enabled
    /// actions are independent — per the rules' declared footprints — of
    /// every action currently enabled elsewhere, explore only that
    /// processor's moves and defer the rest, instead of branching on every
    /// interleaving. See [`Explorer::successors_reduced`]'s notes for the
    /// approximation this makes; `ssmfp-check` runs every instance in both
    /// modes and cross-checks the verdicts. POR exploration is always
    /// sequential (its cycle proviso is order-dependent), regardless of
    /// [`Explorer::threads`].
    pub partial_order_reduction: bool,
    /// Worker threads for the level-parallel exploration (default 1 =
    /// sequential). Any value produces the bit-identical [`Report`]; see
    /// the module docs for the determinism argument.
    pub threads: usize,
    /// Store frontier states packed — interned message ids, flat codec
    /// words, interned node blobs — instead of as `Arc`-based deep states
    /// (default true). Either setting produces the bit-identical
    /// [`Report`]; `ssmfp-check` cross-checks the two on every run. See
    /// DESIGN.md §10 for the layout and the compression argument.
    pub packed: bool,
}

impl Explorer {
    /// Creates an explorer for `protocol` on `graph`. `expectations` lists
    /// the valid messages the initial configuration's outboxes contain
    /// (ghost, destination).
    pub fn new(
        graph: Graph,
        protocol: SsmfpProtocol,
        expectations: Vec<(GhostId, NodeId)>,
    ) -> Self {
        Explorer {
            graph,
            protocol,
            expectations,
            max_states: 2_000_000,
            stop_at_first: true,
            trace_counterexamples: false,
            partial_order_reduction: false,
            threads: 1,
            packed: true,
        }
    }

    /// Enables partial-order reduction (builder form).
    pub fn with_partial_order_reduction(mut self) -> Self {
        self.partial_order_reduction = true;
        self
    }

    /// Sets the worker-thread count (builder form). `0` is treated as 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects packed or `Arc`-based frontier storage (builder form).
    pub fn with_packed(mut self, packed: bool) -> Self {
        self.packed = packed;
        self
    }

    /// Ghosts of every message present anywhere in a configuration.
    fn ghosts_in_system(nodes: &[Arc<NodeState>]) -> HashSet<GhostId> {
        let mut set = HashSet::new();
        for s in nodes {
            for slot in &s.slots {
                for m in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                    set.insert(m.ghost);
                }
            }
            for o in &s.outbox {
                set.insert(o.ghost);
            }
        }
        set
    }

    fn audit(
        &self,
        state: &CheckState,
        depth: u64,
        terminal: bool,
        violations: &mut Vec<Violation>,
    ) {
        // Duplicates and misdeliveries.
        for (i, &(g, at)) in state.delivered.iter().enumerate() {
            if state.delivered[..i].iter().any(|&(g2, _)| g2 == g) {
                violations.push(Violation::DuplicateDelivery { ghost: g, depth });
            }
            if let Some(&(_, dest)) = self.expectations.iter().find(|&&(eg, _)| eg == g) {
                if at != dest {
                    violations.push(Violation::Misdelivery {
                        ghost: g,
                        at,
                        depth,
                    });
                }
            }
        }
        // Losses (only meaningful for expected valid messages that were
        // already picked up by R1 — i.e. no longer in an outbox — but
        // simplest sound form: expected, not delivered, not in system).
        let in_system = Self::ghosts_in_system(&state.nodes);
        for &(g, _) in &self.expectations {
            let delivered = state.delivered.iter().any(|&(dg, _)| dg == g);
            if !delivered && !in_system.contains(&g) {
                violations.push(Violation::Lost { ghost: g, depth });
            }
            if terminal && !delivered {
                violations.push(Violation::UndeliveredAtTerminal { ghost: g, depth });
            }
        }
        // Caterpillar coverage.
        if classify_buffers(&self.graph, &state.nodes).orphans > 0 {
            violations.push(Violation::CaterpillarOrphan { depth });
        }
    }

    /// Applies one `(processor, action)` move, copy-on-write: only the
    /// executed node is rebuilt, re-armed (higher-layer request) and
    /// cursor-normalized — every other node is unchanged from its already
    /// normalized parent. The state hash is updated incrementally.
    fn apply(
        &self,
        state: &CheckState,
        p: NodeId,
        action: SsmfpAction,
        events: &mut Vec<Event>,
    ) -> CheckState {
        events.clear();
        let mut new_node = {
            let view = View::new_shared(&self.graph, &state.nodes, p);
            self.protocol.execute(&view, action, events)
        };
        // Higher layer: eager request re-arm; normalize the fairness
        // cursor (it affects only action ordering, which exhaustive
        // enumeration ignores).
        if !new_node.request && !new_node.outbox.is_empty() {
            new_node.request = true;
        }
        new_node.dest_cursor = 0;
        let mut nodes = state.nodes.clone();
        nodes[p] = Arc::new(new_node);
        let mut node_hashes = state.node_hashes.clone();
        node_hashes[p] = node_fingerprint(p, &nodes[p]);
        let mut delivered = state.delivered.clone();
        for ev in events.iter() {
            if let Event::Delivered { ghost, .. } = ev {
                let rec = (*ghost, p);
                let at = delivered.partition_point(|e| e < &rec);
                delivered.insert(at, rec);
            }
        }
        let hash = combine_hash(&node_hashes, &delivered);
        CheckState {
            nodes,
            delivered,
            node_hashes,
            hash,
        }
    }

    /// Successor states under the central daemon (one processor, one
    /// enabled action per step), in `(processor, priority)` order.
    fn successors(&self, state: &CheckState, scratch: &mut Scratch, out: &mut Vec<Succ>) {
        for p in 0..self.graph.n() {
            scratch.actions.clear();
            {
                let view = View::new_shared(&self.graph, &state.nodes, p);
                self.protocol.enabled_actions(&view, &mut scratch.actions);
            }
            for i in 0..scratch.actions.len() {
                let action = scratch.actions[i];
                out.push(Succ {
                    state: self.apply(state, p, action, &mut scratch.events),
                    by: p,
                    action,
                    previsited: false,
                });
            }
        }
    }

    /// Successors under partial-order reduction.
    ///
    /// An *ample* candidate is a processor `p` whose enabled actions are
    /// all independent — per [`ssmfp_kernel::independent`] over the rules'
    /// declared footprints — of every action currently enabled at every
    /// other processor. Firing any other processor's move first then
    /// commutes with each of `p`'s moves, so exploring only `p`'s branch
    /// reaches the same states up to reordering; the deferred moves are
    /// still enabled there (their footprints are untouched) and get their
    /// turn later. Two safeguards:
    ///
    /// * **cycle proviso**: a candidate is rejected when all of its
    ///   successors were already visited, so a reduction cannot spin
    ///   inside a visited cycle while permanently ignoring the deferred
    ///   moves (the analogue of the ample-set condition C3);
    /// * **fallback**: if no candidate survives, the full successor set
    ///   is expanded.
    ///
    /// This is the classical *currently-enabled* approximation of a
    /// persistent set (Godefroid): independence is checked against the
    /// moves enabled *now*, not against moves that other processors could
    /// become enabled to take later, and state-dependent guard
    /// correlations are ignored. It preserves every interleaving up to
    /// commutation of independent moves — and therefore all stable
    /// (once-true-always-true) violations: `Lost`, `DuplicateDelivery`,
    /// `Misdelivery`, and `UndeliveredAtTerminal` (terminal states are
    /// never pruned: an ample set is a nonempty subset of the enabled
    /// moves, so deadlocks coincide in both modes). Transient predicates
    /// observed at intermediate states — `CaterpillarOrphan` is the one
    /// such audit — could in principle hold only on a pruned
    /// interleaving. `ssmfp-check` therefore runs every instance in both
    /// modes and fails loudly on any verdict mismatch, and the
    /// `por_equivalence` regression test pins full/reduced agreement on
    /// the CI topologies.
    fn successors_reduced(
        &self,
        state: &CheckState,
        visited: &ShardedVisited,
        scratch: &mut Scratch,
        out: &mut Vec<Succ>,
    ) {
        let n = self.graph.n();
        let enabled: Vec<Vec<SsmfpAction>> = (0..n)
            .map(|p| {
                let mut actions = Vec::new();
                let view = View::new_shared(&self.graph, &state.nodes, p);
                self.protocol.enabled_actions(&view, &mut actions);
                actions
            })
            .collect();
        let active: Vec<NodeId> = (0..n).filter(|&p| !enabled[p].is_empty()).collect();
        let mut expand = |ps: &[NodeId], out: &mut Vec<Succ>| {
            for &p in ps {
                for &action in &enabled[p] {
                    out.push(Succ {
                        state: self.apply(state, p, action, &mut scratch.events),
                        by: p,
                        action,
                        previsited: false,
                    });
                }
            }
        };
        if active.len() <= 1 {
            // A single active processor is its own (trivial) ample set.
            expand(&active, out);
            return;
        }
        'candidate: for &p in &active {
            for &a in &enabled[p] {
                let fa = self.protocol.footprint(a);
                for &q in &active {
                    if q == p {
                        continue;
                    }
                    for &b in &enabled[q] {
                        let fb = self.protocol.footprint(b);
                        if !independent(
                            &fa,
                            p,
                            self.graph.neighbors(p),
                            &fb,
                            q,
                            self.graph.neighbors(q),
                        ) {
                            continue 'candidate;
                        }
                    }
                }
            }
            expand(&[p], out);
            // Cycle proviso: the reduction must make progress.
            if out.iter().any(|s| !visited.contains(s.state.hash)) {
                return;
            }
            out.clear();
        }
        expand(&active, out);
    }

    /// Normalizes the caller's initial configuration into the root state.
    fn init_state(&self, mut initial: Vec<NodeState>) -> CheckState {
        for node in initial.iter_mut() {
            if !node.request && !node.outbox.is_empty() {
                node.request = true;
            }
            node.dest_cursor = 0;
        }
        CheckState::new(initial)
    }

    fn rebuild_path(
        &self,
        parents: &HashMap<u64, (u64, NodeId, SsmfpAction), FxBuildHasher>,
        mut h: u64,
    ) -> Vec<String> {
        let mut path = Vec::new();
        while let Some(&(ph, p, a)) = parents.get(&h) {
            path.push(format!("{p}: {}", self.protocol.describe(a)));
            h = ph;
        }
        path.reverse();
        path
    }

    /// Stores one state in the run's representation. `fresh` lists the
    /// nodes not shared with the parent, for the sharing-aware raw-mode
    /// byte accounting (for a successor: exactly the rewritten node).
    fn store_state(store: &mut Option<PackStore>, state: CheckState, fresh: &[NodeId]) -> Slot {
        match store.as_mut() {
            Some(st) => {
                let packed = st.pack(&state);
                let bytes = packed.bytes();
                Slot {
                    state: Stored::Packed(packed),
                    bytes,
                }
            }
            None => {
                let bytes = raw_state_bytes(&state, fresh);
                Slot {
                    state: Stored::Raw(Box::new(state)),
                    bytes,
                }
            }
        }
    }

    fn finalize_stats(stats: &mut ExploreStats, store: Option<&PackStore>) {
        if let Some(st) = store {
            stats.table_bytes = st.table_bytes();
            stats.interned_messages = st.messages.len() as u64;
            stats.interned_nodes = st.nodes.entries.len() as u64;
        }
    }

    /// Runs the exhaustive breadth-first exploration from `initial`.
    ///
    /// With [`Explorer::threads`] > 1 (and POR off) the frontier is
    /// explored level-parallel; the returned [`Report`] is bit-identical
    /// to the sequential one in every case, and likewise across
    /// packed/unpacked storage ([`Explorer::packed`]).
    pub fn explore(&self, initial: Vec<NodeState>) -> Report {
        self.explore_with_stats(initial).0
    }

    /// Like [`Explorer::explore`], additionally returning the run's
    /// memory accounting. The [`Report`] is unaffected by the stats
    /// collection (same bit-identity contracts).
    pub fn explore_with_stats(&self, initial: Vec<NodeState>) -> (Report, ExploreStats) {
        if self.threads > 1 && !self.partial_order_reduction {
            self.explore_parallel(initial)
        } else {
            self.explore_sequential(initial)
        }
    }

    fn explore_sequential(&self, initial: Vec<NodeState>) -> (Report, ExploreStats) {
        let init = self.init_state(initial);
        let n = self.graph.n();
        let mut store = self.packed.then(|| PackStore::new(n));
        let mut visited = ShardedVisited::new();
        visited.insert(init.hash);
        // Parent pointers for counterexample reconstruction (hash →
        // (parent hash, move)); only populated when tracing is on.
        let mut parents: HashMap<u64, (u64, NodeId, SsmfpAction), FxBuildHasher> =
            HashMap::default();
        let mut report = Report {
            states: 1,
            terminals: 0,
            violations: Vec::new(),
            truncated: false,
            max_depth: 0,
            counterexample: None,
        };
        let mut stats = ExploreStats::new(self.packed);
        let mut live_bytes: u64 = 0;
        let all: Vec<NodeId> = (0..n).collect();
        let mut frontier: VecDeque<(Slot, u64)> = VecDeque::new();
        let init_slot = Self::store_state(&mut store, init, &all);
        stats.states_stored += 1;
        stats.state_bytes += init_slot.bytes;
        live_bytes += init_slot.bytes;
        stats.peak_frontier_bytes = live_bytes;
        frontier.push_back((init_slot, 0));
        let mut scratch = Scratch::default();
        let mut succs: Vec<Succ> = Vec::new();
        'search: while let Some((slot, depth)) = frontier.pop_front() {
            live_bytes -= slot.bytes;
            let state = match slot.state {
                Stored::Raw(s) => *s,
                Stored::Packed(ref p) => {
                    store.as_ref().expect("packed slot implies store").unpack(p)
                }
            };
            report.max_depth = report.max_depth.max(depth);
            succs.clear();
            if self.partial_order_reduction {
                self.successors_reduced(&state, &visited, &mut scratch, &mut succs);
            } else {
                self.successors(&state, &mut scratch, &mut succs);
            }
            let terminal = succs.is_empty();
            self.audit(&state, depth, terminal, &mut report.violations);
            if terminal {
                report.terminals += 1;
            }
            if !report.violations.is_empty() && self.stop_at_first {
                if self.trace_counterexamples {
                    report.counterexample = Some(self.rebuild_path(&parents, state.hash));
                }
                break 'search;
            }
            for succ in succs.drain(..) {
                if report.states >= self.max_states {
                    report.truncated = true;
                    break 'search;
                }
                let h = succ.state.hash;
                if visited.insert(h) {
                    report.states += 1;
                    if self.trace_counterexamples {
                        parents.insert(h, (state.hash, succ.by, succ.action));
                    }
                    let slot = Self::store_state(&mut store, succ.state, &[succ.by]);
                    stats.states_stored += 1;
                    stats.state_bytes += slot.bytes;
                    live_bytes += slot.bytes;
                    stats.peak_frontier_bytes = stats.peak_frontier_bytes.max(live_bytes);
                    frontier.push_back((slot, depth + 1));
                }
            }
        }
        Self::finalize_stats(&mut stats, store.as_ref());
        (report, stats)
    }

    /// Phase A work for one state: successors, terminality, audit, and
    /// the previsited annotation against the level-start visited set.
    fn process_state(
        &self,
        state: &CheckState,
        depth: u64,
        visited: &ShardedVisited,
        scratch: &mut Scratch,
    ) -> StateResult {
        let mut succs = Vec::new();
        self.successors(state, scratch, &mut succs);
        // Terminality comes from the RAW successor count, before any
        // visited-based filtering — exactly as the sequential loop sees it.
        let terminal = succs.is_empty();
        for s in succs.iter_mut() {
            s.previsited = visited.contains(s.state.hash);
        }
        let mut violations = Vec::new();
        self.audit(state, depth, terminal, &mut violations);
        StateResult {
            terminal,
            violations,
            succs,
        }
    }

    /// Level-synchronous parallel BFS. Phase A (parallel): each worker
    /// repeatedly claims the next unprocessed state of the level off an
    /// atomic cursor and computes its successors/audit into a result slot
    /// — reads of `visited` are plain `&self` probes of a set that no one
    /// mutates during the phase. Phase B (sequential): results are merged
    /// in level order, replicating the exact per-successor sequence of
    /// the sequential loop (truncation check before the visited check,
    /// duplicates included), so counts, violation order, the truncation
    /// point and the counterexample all come out bit-identical.
    fn explore_parallel(&self, initial: Vec<NodeState>) -> (Report, ExploreStats) {
        let init = self.init_state(initial);
        let n = self.graph.n();
        let mut store = self.packed.then(|| PackStore::new(n));
        let mut visited = ShardedVisited::new();
        visited.insert(init.hash);
        let mut parents: HashMap<u64, (u64, NodeId, SsmfpAction), FxBuildHasher> =
            HashMap::default();
        let mut report = Report {
            states: 1,
            terminals: 0,
            violations: Vec::new(),
            truncated: false,
            max_depth: 0,
            counterexample: None,
        };
        let mut stats = ExploreStats::new(self.packed);
        let all: Vec<NodeId> = (0..n).collect();
        let init_slot = Self::store_state(&mut store, init, &all);
        stats.states_stored += 1;
        stats.state_bytes += init_slot.bytes;
        stats.peak_frontier_bytes = init_slot.bytes;
        let mut level_bytes: u64 = init_slot.bytes;
        let mut level: Vec<Slot> = vec![init_slot];
        let mut depth: u64 = 0;
        'levels: while !level.is_empty() {
            report.max_depth = report.max_depth.max(depth);

            // Phase A: fan the level out to workers. Packed states are
            // unpacked through shared `&PackStore` references — no table
            // mutation happens during this phase.
            let workers = self.threads.min(level.len()).max(1);
            let mut results: Vec<Option<StateResult>> = Vec::with_capacity(level.len());
            results.resize_with(level.len(), || None);
            let cursor = AtomicUsize::new(0);
            let level_ref: &[Slot] = &level;
            let visited_ref = &visited;
            let store_ref = store.as_ref();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut scratch = Scratch::default();
                            let mut out: Vec<(usize, StateResult)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= level_ref.len() {
                                    break;
                                }
                                let res = match &level_ref[i].state {
                                    Stored::Raw(st) => {
                                        self.process_state(st, depth, visited_ref, &mut scratch)
                                    }
                                    Stored::Packed(p) => {
                                        let st =
                                            store_ref.expect("packed slot implies store").unpack(p);
                                        self.process_state(&st, depth, visited_ref, &mut scratch)
                                    }
                                };
                                out.push((i, res));
                            }
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, res) in handle.join().expect("explorer worker panicked") {
                        results[i] = Some(res);
                    }
                }
            });

            // Phase B: deterministic sequential merge in level order. All
            // interning (message ids, node-blob ids) happens here, so id
            // assignment is reproducible regardless of thread count.
            let mut next_level: Vec<Slot> = Vec::new();
            let mut next_bytes: u64 = 0;
            for (i, res_slot) in results.into_iter().enumerate() {
                let res = res_slot.expect("every level slot processed");
                let state_hash = level[i].state.hash();
                report.violations.extend(res.violations);
                if res.terminal {
                    report.terminals += 1;
                }
                if !report.violations.is_empty() && self.stop_at_first {
                    if self.trace_counterexamples {
                        report.counterexample = Some(self.rebuild_path(&parents, state_hash));
                    }
                    break 'levels;
                }
                for succ in res.succs {
                    if report.states >= self.max_states {
                        report.truncated = true;
                        break 'levels;
                    }
                    if succ.previsited {
                        continue;
                    }
                    let h = succ.state.hash;
                    if visited.insert(h) {
                        report.states += 1;
                        if self.trace_counterexamples {
                            parents.insert(h, (state_hash, succ.by, succ.action));
                        }
                        let slot = Self::store_state(&mut store, succ.state, &[succ.by]);
                        stats.states_stored += 1;
                        stats.state_bytes += slot.bytes;
                        next_bytes += slot.bytes;
                        stats.peak_frontier_bytes =
                            stats.peak_frontier_bytes.max(level_bytes + next_bytes);
                        next_level.push(slot);
                    }
                }
            }
            level = next_level;
            level_bytes = next_bytes;
            depth += 1;
        }
        Self::finalize_stats(&mut stats, store.as_ref());
        (report, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::message::{Color, Message};
    use ssmfp_core::state::Outgoing;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn clean_states(graph: &Graph) -> Vec<NodeState> {
        corruption::corrupt(graph, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(graph.n(), r))
            .collect()
    }

    fn enqueue(
        states: &mut [NodeState],
        src: NodeId,
        dst: NodeId,
        payload: u64,
        seq: u64,
    ) -> (GhostId, NodeId) {
        let ghost = GhostId::Valid(seq);
        states[src].outbox.push_back(Outgoing {
            dest: dst,
            payload,
            ghost,
        });
        (ghost, dst)
    }

    #[test]
    fn exhaustive_line2_single_message() {
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![enqueue(&mut states, 0, 1, 3, 0)];
        let proto = SsmfpProtocol::new(2, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn exhaustive_line3_two_messages() {
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
        assert!(report.states > 50, "exploration too small: {report:?}");
    }

    #[test]
    fn exhaustive_same_payload_twice() {
        // The merge hazard, exhaustively: two messages with identical
        // useful information from the same source — no schedule may merge
        // or lose either.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 7, 0),
            enqueue(&mut states, 0, 2, 7, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn exhaustive_with_invalid_garbage() {
        // A garbage message sharing the valid message's payload sits in
        // the middle node's emission buffer.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        states[1].slots[2].buf_e = Some(Message {
            payload: 7,
            last_hop: 0,
            color: Color(0),
            ghost: GhostId::Invalid(0),
        });
        let exp = vec![enqueue(&mut states, 0, 2, 7, 0)];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn exhaustive_with_corrupted_tables() {
        // Corrupt the middle node's route for destination 2 (points back
        // at 0): A must repair it under every schedule, and the message
        // must still go through exactly once.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        states[1].routing.parent[2] = 0;
        states[1].routing.dist[2] = 2;
        let exp = vec![enqueue(&mut states, 0, 2, 4, 0)];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn literal_r5_loses_a_message_machine_checked() {
        // The DESIGN.md §5 deviation, machine-checked: with the paper's
        // R5 guard taken literally (q ∈ N_p ∪ {p}), there is a schedule
        // in which a freshly generated message whose payload collides
        // with an in-flight predecessor is erased without delivery.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1), // same payload, back-to-back
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let explorer = Explorer::new(graph.clone(), proto, exp.clone());
        let report = explorer.explore(states.clone());
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )),
            "literal R5 should lose a message: {report:?}"
        );

        // The deviation closes the hole: same instance, clean verification.
        let proto = SsmfpProtocol::new(2, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn counterexample_trace_is_reconstructed() {
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let mut explorer = Explorer::new(graph, proto, exp);
        explorer.trace_counterexamples = true;
        let report = explorer.explore(states);
        let path = report.counterexample.expect("trace requested");
        assert!(!path.is_empty());
        // The losing schedule must involve generation and the rogue R5.
        assert!(path.iter().any(|s| s.contains("R1")), "{path:?}");
        assert!(path.iter().any(|s| s.contains("R5")), "{path:?}");
    }

    #[test]
    fn por_agrees_with_full_exploration_and_reduces() {
        // Two crossing messages on a line: plenty of concurrency between
        // the two endpoints, so the reduction has commuting moves to prune.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let full = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        let reduced = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let full_report = full.explore(states.clone());
        let reduced_report = reduced.explore(states);
        assert!(full_report.verified(), "{full_report:?}");
        assert!(reduced_report.verified(), "{reduced_report:?}");
        assert_eq!(full_report.violations, reduced_report.violations);
        assert!(
            reduced_report.states < full_report.states,
            "POR should prune: {} vs {}",
            reduced_report.states,
            full_report.states
        );
    }

    #[test]
    fn por_still_finds_the_literal_r5_loss() {
        // A stable violation (loss) must survive the reduction.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let explorer = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let report = explorer.explore(states);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )),
            "{report:?}"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 1, 0),
            enqueue(&mut states, 1, 0, 2, 1),
            enqueue(&mut states, 2, 1, 3, 2),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let mut explorer = Explorer::new(graph, proto, exp);
        explorer.max_states = 100;
        let report = explorer.explore(states);
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn packed_report_is_bit_identical_to_unpacked() {
        // The storage-representation contract: packed (default) and
        // unpacked Arc-based frontiers must produce byte-for-byte equal
        // reports, sequentially and in parallel, clean and violating.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let packed =
            Explorer::new(graph.clone(), proto.clone(), exp.clone()).explore(states.clone());
        let unpacked = Explorer::new(graph.clone(), proto.clone(), exp.clone())
            .with_packed(false)
            .explore(states.clone());
        assert_eq!(packed, unpacked);
        for threads in [2, 4] {
            let par = Explorer::new(graph.clone(), proto.clone(), exp.clone())
                .with_threads(threads)
                .explore(states.clone());
            assert_eq!(packed, par, "packed parallel, threads={threads}");
        }

        // A violating run with tracing on must reconstruct the same
        // schedule from packed storage.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let mut a = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        a.trace_counterexamples = true;
        let mut b = Explorer::new(graph, proto, exp);
        b.trace_counterexamples = true;
        b.packed = false;
        assert_eq!(a.explore(states.clone()), b.explore(states));
    }

    #[test]
    fn packed_stats_match_across_thread_counts() {
        // Interning happens in the sequential merge phase, so the memory
        // accounting — not just the Report — is thread-count invariant.
        let graph = gen::ring(4);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 1, 0),
            enqueue(&mut states, 2, 3, 2, 1),
        ];
        let proto = SsmfpProtocol::new(4, graph.max_degree());
        let (seq_report, seq_stats) = Explorer::new(graph.clone(), proto.clone(), exp.clone())
            .explore_with_stats(states.clone());
        let (par_report, mut par_stats) = Explorer::new(graph, proto, exp)
            .with_threads(3)
            .explore_with_stats(states);
        assert_eq!(seq_report, par_report);
        // Peak frontier footprint legitimately depends on the traversal
        // discipline (FIFO drain vs level-synchronous); everything else
        // must be thread-count invariant.
        assert!(par_stats.peak_frontier_bytes > 0);
        par_stats.peak_frontier_bytes = seq_stats.peak_frontier_bytes;
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq_stats.states_stored, seq_report.states);
    }

    #[test]
    fn packed_storage_compresses_at_least_4x() {
        // The PR's acceptance bar: packed bytes/state (interning tables
        // amortized in) at least 4x below the sharing-aware accounting of
        // the Arc-based representation.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let (rep_p, st_p) = Explorer::new(graph.clone(), proto.clone(), exp.clone())
            .explore_with_stats(states.clone());
        let (rep_u, st_u) = Explorer::new(graph, proto, exp)
            .with_packed(false)
            .explore_with_stats(states);
        assert_eq!(rep_p, rep_u);
        assert!(st_p.packed && !st_u.packed);
        assert!(st_p.interned_messages > 0);
        assert!(st_p.interned_nodes > 0);
        // Node blobs must be shared: far fewer blobs than stored states.
        assert!(st_p.interned_nodes < st_p.states_stored / 2);
        let (bp, bu) = (st_p.bytes_per_state(), st_u.bytes_per_state());
        assert!(
            bp * 4.0 <= bu,
            "packed {bp:.1} B/state vs unpacked {bu:.1} B/state"
        );
    }

    #[test]
    fn parallel_report_is_bit_identical() {
        // The determinism contract, pinned on a real instance: 1, 2 and 4
        // workers must produce the exact sequential Report.
        let graph = gen::ring(4);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 1, 0),
            enqueue(&mut states, 2, 3, 2, 1),
        ];
        let proto = SsmfpProtocol::new(4, graph.max_degree());
        let seq = Explorer::new(graph.clone(), proto.clone(), exp.clone()).explore(states.clone());
        for threads in [2, 4] {
            let par = Explorer::new(graph.clone(), proto.clone(), exp.clone())
                .with_threads(threads)
                .explore(states.clone());
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_truncation_and_traces() {
        // Truncation point and counterexample reconstruction must also be
        // bit-identical under parallel exploration.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 1, 0),
            enqueue(&mut states, 2, 0, 2, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let mut seq = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        seq.max_states = 500;
        let mut par = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        par.max_states = 500;
        par.threads = 3;
        assert_eq!(seq.explore(states.clone()), par.explore(states.clone()));

        // Counterexample: the literal-R5 loss with tracing on.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let mut seq = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        seq.trace_counterexamples = true;
        let mut par = Explorer::new(graph, proto, exp);
        par.trace_counterexamples = true;
        par.threads = 4;
        let seq_report = seq.explore(states.clone());
        let par_report = par.explore(states);
        assert_eq!(seq_report, par_report);
        assert!(par_report.counterexample.is_some());
    }
}
