//! Exhaustive bounded model checking for SSMFP.
//!
//! The sampled executions elsewhere in the workspace check SP along *some*
//! schedules; this crate checks it along **all of them** (for the central
//! daemon) on instances small enough to enumerate. Starting from a given
//! initial configuration, [`Explorer`] breadth-first-explores the full
//! transition system — every `(processor, enabled action)` successor of
//! every reachable configuration — and audits, at every state:
//!
//! * **no duplication**: no ghost identity delivered twice,
//! * **no misdelivery**: deliveries only at the message's destination,
//! * **no loss**: a generated-but-undelivered message always exists
//!   somewhere in the system,
//! * **caterpillar coverage**: Definition 3's structural invariant,
//! * at **terminal** states: every generated message was delivered.
//!
//! Visited states are hash-compacted (the standard explicit-state
//! model-checking trade-off: a 64-bit collision is astronomically
//! unlikely at the state counts involved and can only cause a *missed*
//! state, never a false alarm).
//!
//! # Performance architecture
//!
//! The explorer is built for throughput (see DESIGN.md §9 for the full
//! argument):
//!
//! * **Copy-on-write states**: a configuration holds `Arc<NodeState>`
//!   per node; a successor clones `n` pointers and rebuilds only the
//!   executed node. Per-node hashes are cached, so rehashing a successor
//!   is one node hash plus an `O(n)` word-combine instead of re-hashing
//!   every buffer of every node.
//! * **Parallel frontier** ([`Explorer::threads`]): exploration proceeds
//!   level by level. Phase A fans the current BFS level out to worker
//!   threads (`std::thread::scope`, dynamic work pickup off an atomic
//!   cursor) which do the expensive part — successor generation, audits,
//!   hashing — against a read-only snapshot of the visited set. Phase B
//!   merges sequentially, replaying exactly the order the sequential loop
//!   would have used, so the resulting [`Report`] (state counts,
//!   violations, counterexample, truncation point) is **bit-identical**
//!   to a single-threaded run.
//! * **Sharded visited set** keyed by the vendored Fx hasher: workers
//!   probe it lock-free through `&self` during phase A (annotating
//!   already-visited successors so the merge can skip them); all inserts
//!   happen in phase B through `&mut self` — the two borrow phases
//!   replace any locking.
//!
//! With [`Explorer::partial_order_reduction`] the explorer uses the
//! independence relation derived from the rules' declared footprints
//! (`ssmfp_core::footprint`, the same declarations `ssmfp-lint` checks
//! statically) to skip redundant interleavings of commuting moves — see
//! [`Explorer::successors_reduced`] for the exact conditions and the
//! approximation involved. POR's cycle proviso consults the visited set
//! *mid-level*, which makes its exploration order-dependent, so POR runs
//! always stay sequential. The `ssmfp-check` binary runs every instance
//! in both modes and prints the measured state-count reduction.
//!
//! The checker is also what turns the DESIGN.md §5 argument about rule R5
//! into a machine-checked fact: with the paper's guard taken literally
//! (`q ∈ N_p ∪ {p}`), the checker finds a schedule in which a valid
//! message is erased without delivery (a Lemma 4 violation); with the
//! deviation (`q ∈ N_p`), the same instance verifies clean — see the
//! crate tests.

use fxhash::{FxBuildHasher, FxHasher};
use ssmfp_core::{classify_buffers, Event, GhostId, NodeState, SsmfpAction, SsmfpProtocol};
use ssmfp_kernel::{independent, Protocol, View};
use ssmfp_topology::{Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One verification state: protocol configuration plus delivery history.
///
/// Node states are `Arc`-shared between a state and its successors
/// (copy-on-write: a move rewrites one node), and per-node hashes are
/// cached so the combined hash is recomputed incrementally.
#[derive(Debug, Clone)]
struct CheckState {
    nodes: Vec<Arc<NodeState>>,
    /// Sorted (ghost, node) delivery records.
    delivered: Vec<(GhostId, NodeId)>,
    /// Position-mixed Fx hash of each node state.
    node_hashes: Vec<u64>,
    /// Combined hash of `node_hashes` and `delivered`.
    hash: u64,
}

fn node_hash(p: NodeId, node: &NodeState) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(p);
    node.hash(&mut h);
    h.finish()
}

fn combine_hash(node_hashes: &[u64], delivered: &[(GhostId, NodeId)]) -> u64 {
    let mut h = FxHasher::default();
    for &nh in node_hashes {
        h.write_u64(nh);
    }
    delivered.hash(&mut h);
    h.finish()
}

impl CheckState {
    fn new(nodes: Vec<NodeState>) -> Self {
        let nodes: Vec<Arc<NodeState>> = nodes.into_iter().map(Arc::new).collect();
        let node_hashes: Vec<u64> = nodes
            .iter()
            .enumerate()
            .map(|(p, s)| node_hash(p, s))
            .collect();
        let hash = combine_hash(&node_hashes, &[]);
        CheckState {
            nodes,
            delivered: Vec::new(),
            node_hashes,
            hash,
        }
    }
}

const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS;

/// Hash-compacted visited set, sharded by the hash's top bits (the
/// bottom bits index buckets inside each shard's table). During the
/// parallel phase, workers probe it lock-free through `&self`; every
/// insert happens in the sequential merge phase through `&mut self` —
/// the alternating borrow phases replace any locking.
struct ShardedVisited {
    shards: Vec<HashSet<u64, FxBuildHasher>>,
}

impl ShardedVisited {
    fn new() -> Self {
        ShardedVisited {
            shards: (0..SHARDS).map(|_| HashSet::default()).collect(),
        }
    }

    #[inline]
    fn shard_of(h: u64) -> usize {
        (h >> (64 - SHARD_BITS)) as usize
    }

    #[inline]
    fn contains(&self, h: u64) -> bool {
        self.shards[Self::shard_of(h)].contains(&h)
    }

    /// Inserts `h`; true if it was new.
    #[inline]
    fn insert(&mut self, h: u64) -> bool {
        self.shards[Self::shard_of(h)].insert(h)
    }
}

/// Per-worker scratch buffers reused across successor generation (no
/// per-state allocation for guard evaluation or event collection).
#[derive(Default)]
struct Scratch {
    actions: Vec<SsmfpAction>,
    events: Vec<Event>,
}

/// One successor edge: the reached state and the move that reached it.
struct Succ {
    state: CheckState,
    by: NodeId,
    action: SsmfpAction,
    /// Set during the parallel phase: the successor was already in the
    /// visited set at the start of the level, so the merge phase can skip
    /// its insert (the set only grows). Always false sequentially.
    previsited: bool,
}

/// Phase-A output for one state of the current BFS level.
struct StateResult {
    terminal: bool,
    violations: Vec<Violation>,
    succs: Vec<Succ>,
}

/// A safety violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A ghost identity was delivered twice along some schedule.
    DuplicateDelivery {
        /// The message.
        ghost: GhostId,
        /// BFS depth of the violating state.
        depth: u64,
    },
    /// A valid message was delivered away from its destination.
    Misdelivery {
        /// The message.
        ghost: GhostId,
        /// Node that consumed it.
        at: NodeId,
        /// Depth of the violating state.
        depth: u64,
    },
    /// A generated message vanished: neither delivered nor anywhere in
    /// the system.
    Lost {
        /// The message.
        ghost: GhostId,
        /// Depth of the violating state.
        depth: u64,
    },
    /// Definition 3's coverage invariant failed.
    CaterpillarOrphan {
        /// Depth of the violating state.
        depth: u64,
    },
    /// A terminal (deadlocked/quiescent) state left a generated message
    /// undelivered.
    UndeliveredAtTerminal {
        /// The message.
        ghost: GhostId,
        /// Depth of the terminal state.
        depth: u64,
    },
}

/// Outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited.
    pub states: u64,
    /// Terminal states reached.
    pub terminals: u64,
    /// Violations found (exploration stops at the first by default).
    pub violations: Vec<Violation>,
    /// True if the state or depth cap truncated the exploration.
    pub truncated: bool,
    /// Maximum BFS depth reached.
    pub max_depth: u64,
    /// When a violation was found and tracing was enabled: the schedule
    /// that reaches it, as human-readable `processor: action` lines.
    pub counterexample: Option<Vec<String>>,
}

impl Report {
    /// Whether the instance verified clean and completely.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// The exhaustive explorer.
///
/// ```
/// use ssmfp_check::Explorer;
/// use ssmfp_core::state::{NodeState, Outgoing};
/// use ssmfp_core::{GhostId, SsmfpProtocol};
/// use ssmfp_routing::{corruption, CorruptionKind};
/// use ssmfp_topology::gen;
///
/// let graph = gen::line(2);
/// let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
///     .into_iter()
///     .map(|r| NodeState::clean(2, r))
///     .collect();
/// let ghost = GhostId::Valid(0);
/// states[0].outbox.push_back(Outgoing { dest: 1, payload: 3, ghost });
/// let explorer = Explorer::new(graph, SsmfpProtocol::new(2, 1), vec![(ghost, 1)]);
/// let report = explorer.explore(states);
/// assert!(report.verified()); // every schedule delivers exactly once
/// ```
pub struct Explorer {
    graph: Graph,
    protocol: SsmfpProtocol,
    /// Messages expected: (ghost, destination), as enqueued.
    expectations: Vec<(GhostId, NodeId)>,
    /// Cap on distinct visited states.
    pub max_states: u64,
    /// Stop at the first violation (default true).
    pub stop_at_first: bool,
    /// Record parent pointers so a violation comes with the schedule that
    /// reaches it (costs memory proportional to the visited set).
    pub trace_counterexamples: bool,
    /// Partial-order reduction (default off): when one processor's enabled
    /// actions are independent — per the rules' declared footprints — of
    /// every action currently enabled elsewhere, explore only that
    /// processor's moves and defer the rest, instead of branching on every
    /// interleaving. See [`Explorer::successors_reduced`]'s notes for the
    /// approximation this makes; `ssmfp-check` runs every instance in both
    /// modes and cross-checks the verdicts. POR exploration is always
    /// sequential (its cycle proviso is order-dependent), regardless of
    /// [`Explorer::threads`].
    pub partial_order_reduction: bool,
    /// Worker threads for the level-parallel exploration (default 1 =
    /// sequential). Any value produces the bit-identical [`Report`]; see
    /// the module docs for the determinism argument.
    pub threads: usize,
}

impl Explorer {
    /// Creates an explorer for `protocol` on `graph`. `expectations` lists
    /// the valid messages the initial configuration's outboxes contain
    /// (ghost, destination).
    pub fn new(
        graph: Graph,
        protocol: SsmfpProtocol,
        expectations: Vec<(GhostId, NodeId)>,
    ) -> Self {
        Explorer {
            graph,
            protocol,
            expectations,
            max_states: 2_000_000,
            stop_at_first: true,
            trace_counterexamples: false,
            partial_order_reduction: false,
            threads: 1,
        }
    }

    /// Enables partial-order reduction (builder form).
    pub fn with_partial_order_reduction(mut self) -> Self {
        self.partial_order_reduction = true;
        self
    }

    /// Sets the worker-thread count (builder form). `0` is treated as 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Ghosts of every message present anywhere in a configuration.
    fn ghosts_in_system(nodes: &[Arc<NodeState>]) -> HashSet<GhostId> {
        let mut set = HashSet::new();
        for s in nodes {
            for slot in &s.slots {
                for m in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                    set.insert(m.ghost);
                }
            }
            for o in &s.outbox {
                set.insert(o.ghost);
            }
        }
        set
    }

    fn audit(
        &self,
        state: &CheckState,
        depth: u64,
        terminal: bool,
        violations: &mut Vec<Violation>,
    ) {
        // Duplicates and misdeliveries.
        for (i, &(g, at)) in state.delivered.iter().enumerate() {
            if state.delivered[..i].iter().any(|&(g2, _)| g2 == g) {
                violations.push(Violation::DuplicateDelivery { ghost: g, depth });
            }
            if let Some(&(_, dest)) = self.expectations.iter().find(|&&(eg, _)| eg == g) {
                if at != dest {
                    violations.push(Violation::Misdelivery {
                        ghost: g,
                        at,
                        depth,
                    });
                }
            }
        }
        // Losses (only meaningful for expected valid messages that were
        // already picked up by R1 — i.e. no longer in an outbox — but
        // simplest sound form: expected, not delivered, not in system).
        let in_system = Self::ghosts_in_system(&state.nodes);
        for &(g, _) in &self.expectations {
            let delivered = state.delivered.iter().any(|&(dg, _)| dg == g);
            if !delivered && !in_system.contains(&g) {
                violations.push(Violation::Lost { ghost: g, depth });
            }
            if terminal && !delivered {
                violations.push(Violation::UndeliveredAtTerminal { ghost: g, depth });
            }
        }
        // Caterpillar coverage.
        if classify_buffers(&self.graph, &state.nodes).orphans > 0 {
            violations.push(Violation::CaterpillarOrphan { depth });
        }
    }

    /// Applies one `(processor, action)` move, copy-on-write: only the
    /// executed node is rebuilt, re-armed (higher-layer request) and
    /// cursor-normalized — every other node is unchanged from its already
    /// normalized parent. The state hash is updated incrementally.
    fn apply(
        &self,
        state: &CheckState,
        p: NodeId,
        action: SsmfpAction,
        events: &mut Vec<Event>,
    ) -> CheckState {
        events.clear();
        let mut new_node = {
            let view = View::new_shared(&self.graph, &state.nodes, p);
            self.protocol.execute(&view, action, events)
        };
        // Higher layer: eager request re-arm; normalize the fairness
        // cursor (it affects only action ordering, which exhaustive
        // enumeration ignores).
        if !new_node.request && !new_node.outbox.is_empty() {
            new_node.request = true;
        }
        new_node.dest_cursor = 0;
        let mut nodes = state.nodes.clone();
        nodes[p] = Arc::new(new_node);
        let mut node_hashes = state.node_hashes.clone();
        node_hashes[p] = node_hash(p, &nodes[p]);
        let mut delivered = state.delivered.clone();
        for ev in events.iter() {
            if let Event::Delivered { ghost, .. } = ev {
                let rec = (*ghost, p);
                let at = delivered.partition_point(|e| e < &rec);
                delivered.insert(at, rec);
            }
        }
        let hash = combine_hash(&node_hashes, &delivered);
        CheckState {
            nodes,
            delivered,
            node_hashes,
            hash,
        }
    }

    /// Successor states under the central daemon (one processor, one
    /// enabled action per step), in `(processor, priority)` order.
    fn successors(&self, state: &CheckState, scratch: &mut Scratch, out: &mut Vec<Succ>) {
        for p in 0..self.graph.n() {
            scratch.actions.clear();
            {
                let view = View::new_shared(&self.graph, &state.nodes, p);
                self.protocol.enabled_actions(&view, &mut scratch.actions);
            }
            for i in 0..scratch.actions.len() {
                let action = scratch.actions[i];
                out.push(Succ {
                    state: self.apply(state, p, action, &mut scratch.events),
                    by: p,
                    action,
                    previsited: false,
                });
            }
        }
    }

    /// Successors under partial-order reduction.
    ///
    /// An *ample* candidate is a processor `p` whose enabled actions are
    /// all independent — per [`ssmfp_kernel::independent`] over the rules'
    /// declared footprints — of every action currently enabled at every
    /// other processor. Firing any other processor's move first then
    /// commutes with each of `p`'s moves, so exploring only `p`'s branch
    /// reaches the same states up to reordering; the deferred moves are
    /// still enabled there (their footprints are untouched) and get their
    /// turn later. Two safeguards:
    ///
    /// * **cycle proviso**: a candidate is rejected when all of its
    ///   successors were already visited, so a reduction cannot spin
    ///   inside a visited cycle while permanently ignoring the deferred
    ///   moves (the analogue of the ample-set condition C3);
    /// * **fallback**: if no candidate survives, the full successor set
    ///   is expanded.
    ///
    /// This is the classical *currently-enabled* approximation of a
    /// persistent set (Godefroid): independence is checked against the
    /// moves enabled *now*, not against moves that other processors could
    /// become enabled to take later, and state-dependent guard
    /// correlations are ignored. It preserves every interleaving up to
    /// commutation of independent moves — and therefore all stable
    /// (once-true-always-true) violations: `Lost`, `DuplicateDelivery`,
    /// `Misdelivery`, and `UndeliveredAtTerminal` (terminal states are
    /// never pruned: an ample set is a nonempty subset of the enabled
    /// moves, so deadlocks coincide in both modes). Transient predicates
    /// observed at intermediate states — `CaterpillarOrphan` is the one
    /// such audit — could in principle hold only on a pruned
    /// interleaving. `ssmfp-check` therefore runs every instance in both
    /// modes and fails loudly on any verdict mismatch, and the
    /// `por_equivalence` regression test pins full/reduced agreement on
    /// the CI topologies.
    fn successors_reduced(
        &self,
        state: &CheckState,
        visited: &ShardedVisited,
        scratch: &mut Scratch,
        out: &mut Vec<Succ>,
    ) {
        let n = self.graph.n();
        let enabled: Vec<Vec<SsmfpAction>> = (0..n)
            .map(|p| {
                let mut actions = Vec::new();
                let view = View::new_shared(&self.graph, &state.nodes, p);
                self.protocol.enabled_actions(&view, &mut actions);
                actions
            })
            .collect();
        let active: Vec<NodeId> = (0..n).filter(|&p| !enabled[p].is_empty()).collect();
        let mut expand = |ps: &[NodeId], out: &mut Vec<Succ>| {
            for &p in ps {
                for &action in &enabled[p] {
                    out.push(Succ {
                        state: self.apply(state, p, action, &mut scratch.events),
                        by: p,
                        action,
                        previsited: false,
                    });
                }
            }
        };
        if active.len() <= 1 {
            // A single active processor is its own (trivial) ample set.
            expand(&active, out);
            return;
        }
        'candidate: for &p in &active {
            for &a in &enabled[p] {
                let fa = self.protocol.footprint(a);
                for &q in &active {
                    if q == p {
                        continue;
                    }
                    for &b in &enabled[q] {
                        let fb = self.protocol.footprint(b);
                        if !independent(
                            &fa,
                            p,
                            self.graph.neighbors(p),
                            &fb,
                            q,
                            self.graph.neighbors(q),
                        ) {
                            continue 'candidate;
                        }
                    }
                }
            }
            expand(&[p], out);
            // Cycle proviso: the reduction must make progress.
            if out.iter().any(|s| !visited.contains(s.state.hash)) {
                return;
            }
            out.clear();
        }
        expand(&active, out);
    }

    /// Normalizes the caller's initial configuration into the root state.
    fn init_state(&self, mut initial: Vec<NodeState>) -> CheckState {
        for node in initial.iter_mut() {
            if !node.request && !node.outbox.is_empty() {
                node.request = true;
            }
            node.dest_cursor = 0;
        }
        CheckState::new(initial)
    }

    fn rebuild_path(
        &self,
        parents: &HashMap<u64, (u64, NodeId, SsmfpAction), FxBuildHasher>,
        mut h: u64,
    ) -> Vec<String> {
        let mut path = Vec::new();
        while let Some(&(ph, p, a)) = parents.get(&h) {
            path.push(format!("{p}: {}", self.protocol.describe(a)));
            h = ph;
        }
        path.reverse();
        path
    }

    /// Runs the exhaustive breadth-first exploration from `initial`.
    ///
    /// With [`Explorer::threads`] > 1 (and POR off) the frontier is
    /// explored level-parallel; the returned [`Report`] is bit-identical
    /// to the sequential one in every case.
    pub fn explore(&self, initial: Vec<NodeState>) -> Report {
        if self.threads > 1 && !self.partial_order_reduction {
            self.explore_parallel(initial)
        } else {
            self.explore_sequential(initial)
        }
    }

    fn explore_sequential(&self, initial: Vec<NodeState>) -> Report {
        let init = self.init_state(initial);
        let mut visited = ShardedVisited::new();
        let init_hash = init.hash;
        visited.insert(init_hash);
        // Parent pointers for counterexample reconstruction (hash →
        // (parent hash, move)); only populated when tracing is on.
        let mut parents: HashMap<u64, (u64, NodeId, SsmfpAction), FxBuildHasher> =
            HashMap::default();
        let mut frontier: VecDeque<(CheckState, u64)> = VecDeque::new();
        frontier.push_back((init, 0));
        let mut report = Report {
            states: 1,
            terminals: 0,
            violations: Vec::new(),
            truncated: false,
            max_depth: 0,
            counterexample: None,
        };
        let mut scratch = Scratch::default();
        let mut succs: Vec<Succ> = Vec::new();
        while let Some((state, depth)) = frontier.pop_front() {
            report.max_depth = report.max_depth.max(depth);
            succs.clear();
            if self.partial_order_reduction {
                self.successors_reduced(&state, &visited, &mut scratch, &mut succs);
            } else {
                self.successors(&state, &mut scratch, &mut succs);
            }
            let terminal = succs.is_empty();
            self.audit(&state, depth, terminal, &mut report.violations);
            if terminal {
                report.terminals += 1;
            }
            if !report.violations.is_empty() && self.stop_at_first {
                if self.trace_counterexamples {
                    report.counterexample = Some(self.rebuild_path(&parents, state.hash));
                }
                return report;
            }
            for succ in succs.drain(..) {
                if report.states >= self.max_states {
                    report.truncated = true;
                    return report;
                }
                let h = succ.state.hash;
                if visited.insert(h) {
                    report.states += 1;
                    if self.trace_counterexamples {
                        parents.insert(h, (state.hash, succ.by, succ.action));
                    }
                    frontier.push_back((succ.state, depth + 1));
                }
            }
        }
        report
    }

    /// Phase A work for one state: successors, terminality, audit, and
    /// the previsited annotation against the level-start visited set.
    fn process_state(
        &self,
        state: &CheckState,
        depth: u64,
        visited: &ShardedVisited,
        scratch: &mut Scratch,
    ) -> StateResult {
        let mut succs = Vec::new();
        self.successors(state, scratch, &mut succs);
        // Terminality comes from the RAW successor count, before any
        // visited-based filtering — exactly as the sequential loop sees it.
        let terminal = succs.is_empty();
        for s in succs.iter_mut() {
            s.previsited = visited.contains(s.state.hash);
        }
        let mut violations = Vec::new();
        self.audit(state, depth, terminal, &mut violations);
        StateResult {
            terminal,
            violations,
            succs,
        }
    }

    /// Level-synchronous parallel BFS. Phase A (parallel): each worker
    /// repeatedly claims the next unprocessed state of the level off an
    /// atomic cursor and computes its successors/audit into a result slot
    /// — reads of `visited` are plain `&self` probes of a set that no one
    /// mutates during the phase. Phase B (sequential): results are merged
    /// in level order, replicating the exact per-successor sequence of
    /// the sequential loop (truncation check before the visited check,
    /// duplicates included), so counts, violation order, the truncation
    /// point and the counterexample all come out bit-identical.
    fn explore_parallel(&self, initial: Vec<NodeState>) -> Report {
        let init = self.init_state(initial);
        let mut visited = ShardedVisited::new();
        visited.insert(init.hash);
        let mut parents: HashMap<u64, (u64, NodeId, SsmfpAction), FxBuildHasher> =
            HashMap::default();
        let mut report = Report {
            states: 1,
            terminals: 0,
            violations: Vec::new(),
            truncated: false,
            max_depth: 0,
            counterexample: None,
        };
        let mut level: Vec<CheckState> = vec![init];
        let mut depth: u64 = 0;
        while !level.is_empty() {
            report.max_depth = report.max_depth.max(depth);

            // Phase A: fan the level out to workers.
            let workers = self.threads.min(level.len()).max(1);
            let mut results: Vec<Option<StateResult>> = Vec::with_capacity(level.len());
            results.resize_with(level.len(), || None);
            let cursor = AtomicUsize::new(0);
            let level_ref: &[CheckState] = &level;
            let visited_ref = &visited;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut scratch = Scratch::default();
                            let mut out: Vec<(usize, StateResult)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= level_ref.len() {
                                    break;
                                }
                                out.push((
                                    i,
                                    self.process_state(
                                        &level_ref[i],
                                        depth,
                                        visited_ref,
                                        &mut scratch,
                                    ),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, res) in handle.join().expect("explorer worker panicked") {
                        results[i] = Some(res);
                    }
                }
            });

            // Phase B: deterministic sequential merge in level order.
            let mut next_level: Vec<CheckState> = Vec::new();
            for (i, slot) in results.into_iter().enumerate() {
                let res = slot.expect("every level slot processed");
                let state_hash = level[i].hash;
                report.violations.extend(res.violations);
                if res.terminal {
                    report.terminals += 1;
                }
                if !report.violations.is_empty() && self.stop_at_first {
                    if self.trace_counterexamples {
                        report.counterexample = Some(self.rebuild_path(&parents, state_hash));
                    }
                    return report;
                }
                for succ in res.succs {
                    if report.states >= self.max_states {
                        report.truncated = true;
                        return report;
                    }
                    if succ.previsited {
                        continue;
                    }
                    let h = succ.state.hash;
                    if visited.insert(h) {
                        report.states += 1;
                        if self.trace_counterexamples {
                            parents.insert(h, (state_hash, succ.by, succ.action));
                        }
                        next_level.push(succ.state);
                    }
                }
            }
            level = next_level;
            depth += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::message::{Color, Message};
    use ssmfp_core::state::Outgoing;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn clean_states(graph: &Graph) -> Vec<NodeState> {
        corruption::corrupt(graph, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(graph.n(), r))
            .collect()
    }

    fn enqueue(
        states: &mut [NodeState],
        src: NodeId,
        dst: NodeId,
        payload: u64,
        seq: u64,
    ) -> (GhostId, NodeId) {
        let ghost = GhostId::Valid(seq);
        states[src].outbox.push_back(Outgoing {
            dest: dst,
            payload,
            ghost,
        });
        (ghost, dst)
    }

    #[test]
    fn exhaustive_line2_single_message() {
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![enqueue(&mut states, 0, 1, 3, 0)];
        let proto = SsmfpProtocol::new(2, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn exhaustive_line3_two_messages() {
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
        assert!(report.states > 50, "exploration too small: {report:?}");
    }

    #[test]
    fn exhaustive_same_payload_twice() {
        // The merge hazard, exhaustively: two messages with identical
        // useful information from the same source — no schedule may merge
        // or lose either.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 7, 0),
            enqueue(&mut states, 0, 2, 7, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn exhaustive_with_invalid_garbage() {
        // A garbage message sharing the valid message's payload sits in
        // the middle node's emission buffer.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        states[1].slots[2].buf_e = Some(Message {
            payload: 7,
            last_hop: 0,
            color: Color(0),
            ghost: GhostId::Invalid(0),
        });
        let exp = vec![enqueue(&mut states, 0, 2, 7, 0)];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn exhaustive_with_corrupted_tables() {
        // Corrupt the middle node's route for destination 2 (points back
        // at 0): A must repair it under every schedule, and the message
        // must still go through exactly once.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        states[1].routing.parent[2] = 0;
        states[1].routing.dist[2] = 2;
        let exp = vec![enqueue(&mut states, 0, 2, 4, 0)];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn literal_r5_loses_a_message_machine_checked() {
        // The DESIGN.md §5 deviation, machine-checked: with the paper's
        // R5 guard taken literally (q ∈ N_p ∪ {p}), there is a schedule
        // in which a freshly generated message whose payload collides
        // with an in-flight predecessor is erased without delivery.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1), // same payload, back-to-back
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let explorer = Explorer::new(graph.clone(), proto, exp.clone());
        let report = explorer.explore(states.clone());
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )),
            "literal R5 should lose a message: {report:?}"
        );

        // The deviation closes the hole: same instance, clean verification.
        let proto = SsmfpProtocol::new(2, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn counterexample_trace_is_reconstructed() {
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let mut explorer = Explorer::new(graph, proto, exp);
        explorer.trace_counterexamples = true;
        let report = explorer.explore(states);
        let path = report.counterexample.expect("trace requested");
        assert!(!path.is_empty());
        // The losing schedule must involve generation and the rogue R5.
        assert!(path.iter().any(|s| s.contains("R1")), "{path:?}");
        assert!(path.iter().any(|s| s.contains("R5")), "{path:?}");
    }

    #[test]
    fn por_agrees_with_full_exploration_and_reduces() {
        // Two crossing messages on a line: plenty of concurrency between
        // the two endpoints, so the reduction has commuting moves to prune.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let full = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        let reduced = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let full_report = full.explore(states.clone());
        let reduced_report = reduced.explore(states);
        assert!(full_report.verified(), "{full_report:?}");
        assert!(reduced_report.verified(), "{reduced_report:?}");
        assert_eq!(full_report.violations, reduced_report.violations);
        assert!(
            reduced_report.states < full_report.states,
            "POR should prune: {} vs {}",
            reduced_report.states,
            full_report.states
        );
    }

    #[test]
    fn por_still_finds_the_literal_r5_loss() {
        // A stable violation (loss) must survive the reduction.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let explorer = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let report = explorer.explore(states);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )),
            "{report:?}"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 1, 0),
            enqueue(&mut states, 1, 0, 2, 1),
            enqueue(&mut states, 2, 1, 3, 2),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let mut explorer = Explorer::new(graph, proto, exp);
        explorer.max_states = 100;
        let report = explorer.explore(states);
        assert!(report.truncated);
        assert!(!report.verified());
    }

    #[test]
    fn parallel_report_is_bit_identical() {
        // The determinism contract, pinned on a real instance: 1, 2 and 4
        // workers must produce the exact sequential Report.
        let graph = gen::ring(4);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 1, 0),
            enqueue(&mut states, 2, 3, 2, 1),
        ];
        let proto = SsmfpProtocol::new(4, graph.max_degree());
        let seq = Explorer::new(graph.clone(), proto.clone(), exp.clone()).explore(states.clone());
        for threads in [2, 4] {
            let par = Explorer::new(graph.clone(), proto.clone(), exp.clone())
                .with_threads(threads)
                .explore(states.clone());
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_truncation_and_traces() {
        // Truncation point and counterexample reconstruction must also be
        // bit-identical under parallel exploration.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 1, 0),
            enqueue(&mut states, 2, 0, 2, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let mut seq = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        seq.max_states = 500;
        let mut par = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        par.max_states = 500;
        par.threads = 3;
        assert_eq!(seq.explore(states.clone()), par.explore(states.clone()));

        // Counterexample: the literal-R5 loss with tracing on.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let mut seq = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        seq.trace_counterexamples = true;
        let mut par = Explorer::new(graph, proto, exp);
        par.trace_counterexamples = true;
        par.threads = 4;
        let seq_report = seq.explore(states.clone());
        let par_report = par.explore(states);
        assert_eq!(seq_report, par_report);
        assert!(par_report.counterexample.is_some());
    }
}
