//! Exhaustive bounded model checking for SSMFP.
//!
//! The sampled executions elsewhere in the workspace check SP along *some*
//! schedules; this crate checks it along **all of them** (for the central
//! daemon) on instances small enough to enumerate. Starting from a given
//! initial configuration, [`Explorer`] breadth-first-explores the full
//! transition system — every `(processor, enabled action)` successor of
//! every reachable configuration — and audits, at every state:
//!
//! * **no duplication**: no ghost identity delivered twice,
//! * **no misdelivery**: deliveries only at the message's destination,
//! * **no loss**: a generated-but-undelivered message always exists
//!   somewhere in the system,
//! * **caterpillar coverage**: Definition 3's structural invariant,
//! * at **terminal** states: every generated message was delivered.
//!
//! Visited states are hash-compacted (the standard explicit-state
//! model-checking trade-off: a 64-bit collision is astronomically
//! unlikely at the state counts involved and can only cause a *missed*
//! state, never a false alarm).
//!
//! With [`Explorer::partial_order_reduction`] the explorer uses the
//! independence relation derived from the rules' declared footprints
//! (`ssmfp_core::footprint`, the same declarations `ssmfp-lint` checks
//! statically) to skip redundant interleavings of commuting moves — see
//! [`Explorer::successors_reduced`] for the exact conditions and the
//! approximation involved. The `ssmfp-check` binary runs every instance
//! in both modes and prints the measured state-count reduction.
//!
//! The checker is also what turns the DESIGN.md §5 argument about rule R5
//! into a machine-checked fact: with the paper's guard taken literally
//! (`q ∈ N_p ∪ {p}`), the checker finds a schedule in which a valid
//! message is erased without delivery (a Lemma 4 violation); with the
//! deviation (`q ∈ N_p`), the same instance verifies clean — see the
//! crate tests.

use ssmfp_core::{classify_buffers, GhostId, NodeState, SsmfpAction, SsmfpProtocol};
use ssmfp_kernel::{independent, Protocol, View};
use ssmfp_topology::{Graph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// One verification state: protocol configuration plus delivery history.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CheckState {
    nodes: Vec<NodeState>,
    /// Sorted (ghost, node) delivery records.
    delivered: Vec<(GhostId, NodeId)>,
}

/// A safety violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A ghost identity was delivered twice along some schedule.
    DuplicateDelivery {
        /// The message.
        ghost: GhostId,
        /// BFS depth of the violating state.
        depth: u64,
    },
    /// A valid message was delivered away from its destination.
    Misdelivery {
        /// The message.
        ghost: GhostId,
        /// Node that consumed it.
        at: NodeId,
        /// Depth of the violating state.
        depth: u64,
    },
    /// A generated message vanished: neither delivered nor anywhere in
    /// the system.
    Lost {
        /// The message.
        ghost: GhostId,
        /// Depth of the violating state.
        depth: u64,
    },
    /// Definition 3's coverage invariant failed.
    CaterpillarOrphan {
        /// Depth of the violating state.
        depth: u64,
    },
    /// A terminal (deadlocked/quiescent) state left a generated message
    /// undelivered.
    UndeliveredAtTerminal {
        /// The message.
        ghost: GhostId,
        /// Depth of the terminal state.
        depth: u64,
    },
}

/// Outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Distinct states visited.
    pub states: u64,
    /// Terminal states reached.
    pub terminals: u64,
    /// Violations found (exploration stops at the first by default).
    pub violations: Vec<Violation>,
    /// True if the state or depth cap truncated the exploration.
    pub truncated: bool,
    /// Maximum BFS depth reached.
    pub max_depth: u64,
    /// When a violation was found and tracing was enabled: the schedule
    /// that reaches it, as human-readable `processor: action` lines.
    pub counterexample: Option<Vec<String>>,
}

impl Report {
    /// Whether the instance verified clean and completely.
    pub fn verified(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }
}

/// The exhaustive explorer.
///
/// ```
/// use ssmfp_check::Explorer;
/// use ssmfp_core::state::{NodeState, Outgoing};
/// use ssmfp_core::{GhostId, SsmfpProtocol};
/// use ssmfp_routing::{corruption, CorruptionKind};
/// use ssmfp_topology::gen;
///
/// let graph = gen::line(2);
/// let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
///     .into_iter()
///     .map(|r| NodeState::clean(2, r))
///     .collect();
/// let ghost = GhostId::Valid(0);
/// states[0].outbox.push_back(Outgoing { dest: 1, payload: 3, ghost });
/// let explorer = Explorer::new(graph, SsmfpProtocol::new(2, 1), vec![(ghost, 1)]);
/// let report = explorer.explore(states);
/// assert!(report.verified()); // every schedule delivers exactly once
/// ```
pub struct Explorer {
    graph: Graph,
    protocol: SsmfpProtocol,
    /// Messages expected: (ghost, destination), as enqueued.
    expectations: Vec<(GhostId, NodeId)>,
    /// Cap on distinct visited states.
    pub max_states: u64,
    /// Stop at the first violation (default true).
    pub stop_at_first: bool,
    /// Record parent pointers so a violation comes with the schedule that
    /// reaches it (costs memory proportional to the visited set).
    pub trace_counterexamples: bool,
    /// Partial-order reduction (default off): when one processor's enabled
    /// actions are independent — per the rules' declared footprints — of
    /// every action currently enabled elsewhere, explore only that
    /// processor's moves and defer the rest, instead of branching on every
    /// interleaving. See [`Explorer::successors_reduced`]'s notes for the
    /// approximation this makes; `ssmfp-check` runs every instance in both
    /// modes and cross-checks the verdicts.
    pub partial_order_reduction: bool,
}

impl Explorer {
    /// Creates an explorer for `protocol` on `graph`. `expectations` lists
    /// the valid messages the initial configuration's outboxes contain
    /// (ghost, destination).
    pub fn new(
        graph: Graph,
        protocol: SsmfpProtocol,
        expectations: Vec<(GhostId, NodeId)>,
    ) -> Self {
        Explorer {
            graph,
            protocol,
            expectations,
            max_states: 2_000_000,
            stop_at_first: true,
            trace_counterexamples: false,
            partial_order_reduction: false,
        }
    }

    /// Enables partial-order reduction (builder form).
    pub fn with_partial_order_reduction(mut self) -> Self {
        self.partial_order_reduction = true;
        self
    }

    fn hash_state(s: &CheckState) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// Ghosts of every message present anywhere in a configuration.
    fn ghosts_in_system(nodes: &[NodeState]) -> HashSet<GhostId> {
        let mut set = HashSet::new();
        for s in nodes {
            for slot in &s.slots {
                for m in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                    set.insert(m.ghost);
                }
            }
            for o in &s.outbox {
                set.insert(o.ghost);
            }
        }
        set
    }

    fn audit(
        &self,
        state: &CheckState,
        depth: u64,
        terminal: bool,
        violations: &mut Vec<Violation>,
    ) {
        // Duplicates and misdeliveries.
        for (i, &(g, at)) in state.delivered.iter().enumerate() {
            if state.delivered[..i].iter().any(|&(g2, _)| g2 == g) {
                violations.push(Violation::DuplicateDelivery { ghost: g, depth });
            }
            if let Some(&(_, dest)) = self.expectations.iter().find(|&&(eg, _)| eg == g) {
                if at != dest {
                    violations.push(Violation::Misdelivery {
                        ghost: g,
                        at,
                        depth,
                    });
                }
            }
        }
        // Losses (only meaningful for expected valid messages that were
        // already picked up by R1 — i.e. no longer in an outbox — but
        // simplest sound form: expected, not delivered, not in system).
        let in_system = Self::ghosts_in_system(&state.nodes);
        for &(g, _) in &self.expectations {
            let delivered = state.delivered.iter().any(|&(dg, _)| dg == g);
            if !delivered && !in_system.contains(&g) {
                violations.push(Violation::Lost { ghost: g, depth });
            }
            if terminal && !delivered {
                violations.push(Violation::UndeliveredAtTerminal { ghost: g, depth });
            }
        }
        // Caterpillar coverage.
        if classify_buffers(&self.graph, &state.nodes).orphans > 0 {
            violations.push(Violation::CaterpillarOrphan { depth });
        }
    }

    /// Actions enabled at processor `p` in `state`.
    fn enabled_at(&self, state: &CheckState, p: NodeId) -> Vec<SsmfpAction> {
        let mut actions = Vec::new();
        let view = View::new(&self.graph, &state.nodes, p);
        self.protocol.enabled_actions(&view, &mut actions);
        actions
    }

    /// Applies one `(processor, action)` move, with eager higher-layer
    /// re-arming and fairness-cursor normalization; the label is
    /// `processor: action`.
    fn apply(&self, state: &CheckState, p: NodeId, action: SsmfpAction) -> (CheckState, String) {
        let mut events = Vec::new();
        let new_node = {
            let view = View::new(&self.graph, &state.nodes, p);
            self.protocol.execute(&view, action, &mut events)
        };
        let mut nodes = state.nodes.clone();
        nodes[p] = new_node;
        let mut delivered = state.delivered.clone();
        for ev in &events {
            if let ssmfp_core::Event::Delivered { ghost, .. } = ev {
                delivered.push((*ghost, p));
            }
        }
        delivered.sort_unstable();
        // Higher layer: eager request re-arm; normalize the fairness
        // cursor (it affects only action ordering, which exhaustive
        // enumeration ignores).
        for node in nodes.iter_mut() {
            if !node.request && !node.outbox.is_empty() {
                node.request = true;
            }
            node.dest_cursor = 0;
        }
        let label = format!("{p}: {}", self.protocol.describe(action));
        (CheckState { nodes, delivered }, label)
    }

    /// Successor states under the central daemon (one processor, one
    /// enabled action per step), each labelled `processor: action`.
    fn successors(&self, state: &CheckState) -> Vec<(CheckState, String)> {
        let mut out = Vec::new();
        for p in 0..self.graph.n() {
            for action in self.enabled_at(state, p) {
                out.push(self.apply(state, p, action));
            }
        }
        out
    }

    /// Successors under partial-order reduction.
    ///
    /// An *ample* candidate is a processor `p` whose enabled actions are
    /// all independent — per [`ssmfp_kernel::independent`] over the rules'
    /// declared footprints — of every action currently enabled at every
    /// other processor. Firing any other processor's move first then
    /// commutes with each of `p`'s moves, so exploring only `p`'s branch
    /// reaches the same states up to reordering; the deferred moves are
    /// still enabled there (their footprints are untouched) and get their
    /// turn later. Two safeguards:
    ///
    /// * **cycle proviso**: a candidate is rejected when all of its
    ///   successors were already visited, so a reduction cannot spin
    ///   inside a visited cycle while permanently ignoring the deferred
    ///   moves (the analogue of the ample-set condition C3);
    /// * **fallback**: if no candidate survives, the full successor set
    ///   is expanded.
    ///
    /// This is the classical *currently-enabled* approximation of a
    /// persistent set (Godefroid): independence is checked against the
    /// moves enabled *now*, not against moves that other processors could
    /// become enabled to take later, and state-dependent guard
    /// correlations are ignored. It preserves every interleaving up to
    /// commutation of independent moves — and therefore all stable
    /// (once-true-always-true) violations: `Lost`, `DuplicateDelivery`,
    /// `Misdelivery`, and `UndeliveredAtTerminal` (terminal states are
    /// never pruned: an ample set is a nonempty subset of the enabled
    /// moves, so deadlocks coincide in both modes). Transient predicates
    /// observed at intermediate states — `CaterpillarOrphan` is the one
    /// such audit — could in principle hold only on a pruned
    /// interleaving. `ssmfp-check` therefore runs every instance in both
    /// modes and fails loudly on any verdict mismatch, and the
    /// `por_equivalence` regression test pins full/reduced agreement on
    /// the CI topologies.
    fn successors_reduced(
        &self,
        state: &CheckState,
        visited: &HashSet<u64>,
    ) -> Vec<(CheckState, String)> {
        let n = self.graph.n();
        let enabled: Vec<Vec<SsmfpAction>> = (0..n).map(|p| self.enabled_at(state, p)).collect();
        let active: Vec<NodeId> = (0..n).filter(|&p| !enabled[p].is_empty()).collect();
        let expand = |ps: &[NodeId]| -> Vec<(CheckState, String)> {
            ps.iter()
                .flat_map(|&p| enabled[p].iter().map(move |&a| self.apply(state, p, a)))
                .collect()
        };
        if active.len() <= 1 {
            // A single active processor is its own (trivial) ample set.
            return expand(&active);
        }
        'candidate: for &p in &active {
            for &a in &enabled[p] {
                let fa = self.protocol.footprint(a);
                for &q in &active {
                    if q == p {
                        continue;
                    }
                    for &b in &enabled[q] {
                        let fb = self.protocol.footprint(b);
                        if !independent(
                            &fa,
                            p,
                            self.graph.neighbors(p),
                            &fb,
                            q,
                            self.graph.neighbors(q),
                        ) {
                            continue 'candidate;
                        }
                    }
                }
            }
            let succs = expand(&[p]);
            // Cycle proviso: the reduction must make progress.
            if succs
                .iter()
                .any(|(s, _)| !visited.contains(&Self::hash_state(s)))
            {
                return succs;
            }
        }
        expand(&active)
    }

    /// Runs the exhaustive breadth-first exploration from `initial`.
    pub fn explore(&self, mut initial: Vec<NodeState>) -> Report {
        for node in initial.iter_mut() {
            if !node.request && !node.outbox.is_empty() {
                node.request = true;
            }
            node.dest_cursor = 0;
        }
        let init = CheckState {
            nodes: initial,
            delivered: Vec::new(),
        };
        let init_hash = Self::hash_state(&init);
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(init_hash);
        // Parent pointers for counterexample reconstruction (hash → (parent
        // hash, action label)); only populated when tracing is on.
        let mut parents: std::collections::HashMap<u64, (u64, String)> =
            std::collections::HashMap::new();
        let mut frontier: VecDeque<(CheckState, u64, u64)> = VecDeque::new();
        frontier.push_back((init, 0, init_hash));
        let mut report = Report {
            states: 1,
            terminals: 0,
            violations: Vec::new(),
            truncated: false,
            max_depth: 0,
            counterexample: None,
        };
        let rebuild =
            |parents: &std::collections::HashMap<u64, (u64, String)>, mut h: u64| -> Vec<String> {
                let mut path = Vec::new();
                while let Some((ph, label)) = parents.get(&h) {
                    path.push(label.clone());
                    h = *ph;
                }
                path.reverse();
                path
            };
        while let Some((state, depth, state_hash)) = frontier.pop_front() {
            report.max_depth = report.max_depth.max(depth);
            let succs = if self.partial_order_reduction {
                self.successors_reduced(&state, &visited)
            } else {
                self.successors(&state)
            };
            let terminal = succs.is_empty();
            self.audit(&state, depth, terminal, &mut report.violations);
            if terminal {
                report.terminals += 1;
            }
            if !report.violations.is_empty() && self.stop_at_first {
                if self.trace_counterexamples {
                    report.counterexample = Some(rebuild(&parents, state_hash));
                }
                return report;
            }
            for (succ, label) in succs {
                if report.states >= self.max_states {
                    report.truncated = true;
                    return report;
                }
                let h = Self::hash_state(&succ);
                if visited.insert(h) {
                    report.states += 1;
                    if self.trace_counterexamples {
                        parents.insert(h, (state_hash, label.clone()));
                    }
                    frontier.push_back((succ, depth + 1, h));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::message::{Color, Message};
    use ssmfp_core::state::Outgoing;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn clean_states(graph: &Graph) -> Vec<NodeState> {
        corruption::corrupt(graph, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(graph.n(), r))
            .collect()
    }

    fn enqueue(
        states: &mut [NodeState],
        src: NodeId,
        dst: NodeId,
        payload: u64,
        seq: u64,
    ) -> (GhostId, NodeId) {
        let ghost = GhostId::Valid(seq);
        states[src].outbox.push_back(Outgoing {
            dest: dst,
            payload,
            ghost,
        });
        (ghost, dst)
    }

    #[test]
    fn exhaustive_line2_single_message() {
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![enqueue(&mut states, 0, 1, 3, 0)];
        let proto = SsmfpProtocol::new(2, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn exhaustive_line3_two_messages() {
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
        assert!(report.states > 50, "exploration too small: {report:?}");
    }

    #[test]
    fn exhaustive_same_payload_twice() {
        // The merge hazard, exhaustively: two messages with identical
        // useful information from the same source — no schedule may merge
        // or lose either.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 7, 0),
            enqueue(&mut states, 0, 2, 7, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn exhaustive_with_invalid_garbage() {
        // A garbage message sharing the valid message's payload sits in
        // the middle node's emission buffer.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        states[1].slots[2].buf_e = Some(Message {
            payload: 7,
            last_hop: 0,
            color: Color(0),
            ghost: GhostId::Invalid(0),
        });
        let exp = vec![enqueue(&mut states, 0, 2, 7, 0)];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn exhaustive_with_corrupted_tables() {
        // Corrupt the middle node's route for destination 2 (points back
        // at 0): A must repair it under every schedule, and the message
        // must still go through exactly once.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        states[1].routing.parent[2] = 0;
        states[1].routing.dist[2] = 2;
        let exp = vec![enqueue(&mut states, 0, 2, 4, 0)];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn literal_r5_loses_a_message_machine_checked() {
        // The DESIGN.md §5 deviation, machine-checked: with the paper's
        // R5 guard taken literally (q ∈ N_p ∪ {p}), there is a schedule
        // in which a freshly generated message whose payload collides
        // with an in-flight predecessor is erased without delivery.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1), // same payload, back-to-back
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let explorer = Explorer::new(graph.clone(), proto, exp.clone());
        let report = explorer.explore(states.clone());
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )),
            "literal R5 should lose a message: {report:?}"
        );

        // The deviation closes the hole: same instance, clean verification.
        let proto = SsmfpProtocol::new(2, graph.max_degree());
        let explorer = Explorer::new(graph, proto, exp);
        let report = explorer.explore(states);
        assert!(report.verified(), "{report:?}");
    }

    #[test]
    fn counterexample_trace_is_reconstructed() {
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let mut explorer = Explorer::new(graph, proto, exp);
        explorer.trace_counterexamples = true;
        let report = explorer.explore(states);
        let path = report.counterexample.expect("trace requested");
        assert!(!path.is_empty());
        // The losing schedule must involve generation and the rogue R5.
        assert!(path.iter().any(|s| s.contains("R1")), "{path:?}");
        assert!(path.iter().any(|s| s.contains("R5")), "{path:?}");
    }

    #[test]
    fn por_agrees_with_full_exploration_and_reduces() {
        // Two crossing messages on a line: plenty of concurrency between
        // the two endpoints, so the reduction has commuting moves to prune.
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 3, 0),
            enqueue(&mut states, 2, 0, 5, 1),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let full = Explorer::new(graph.clone(), proto.clone(), exp.clone());
        let reduced = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let full_report = full.explore(states.clone());
        let reduced_report = reduced.explore(states);
        assert!(full_report.verified(), "{full_report:?}");
        assert!(reduced_report.verified(), "{reduced_report:?}");
        assert_eq!(full_report.violations, reduced_report.violations);
        assert!(
            reduced_report.states < full_report.states,
            "POR should prune: {} vs {}",
            reduced_report.states,
            full_report.states
        );
    }

    #[test]
    fn por_still_finds_the_literal_r5_loss() {
        // A stable violation (loss) must survive the reduction.
        let graph = gen::line(2);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 1, 7, 0),
            enqueue(&mut states, 0, 1, 7, 1),
        ];
        let proto = SsmfpProtocol::new(2, graph.max_degree()).with_literal_r5();
        let explorer = Explorer::new(graph, proto, exp).with_partial_order_reduction();
        let report = explorer.explore(states);
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                Violation::Lost { .. } | Violation::UndeliveredAtTerminal { .. }
            )),
            "{report:?}"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let graph = gen::line(3);
        let mut states = clean_states(&graph);
        let exp = vec![
            enqueue(&mut states, 0, 2, 1, 0),
            enqueue(&mut states, 1, 0, 2, 1),
            enqueue(&mut states, 2, 1, 3, 2),
        ];
        let proto = SsmfpProtocol::new(3, graph.max_degree());
        let mut explorer = Explorer::new(graph, proto, exp);
        explorer.max_states = 100;
        let report = explorer.explore(states);
        assert!(report.truncated);
        assert!(!report.verified());
    }
}
