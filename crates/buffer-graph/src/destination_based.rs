//! The destination-based buffer graph of **Figure 1**.
//!
//! One buffer `b_p(d)` per processor `p` per destination `d` (slot index =
//! destination). Messages for destination `d` may only move along the routing
//! tree `T_d`: `b_p(d) → b_{parent_d(p)}(d)`. The resulting graph has `n`
//! weakly connected components, the component of `d` being isomorphic to
//! `T_d`, and is acyclic — the Merlin–Schweitzer deadlock-freedom condition.

use crate::graph::{BufferGraph, BufferId};
use ssmfp_topology::BfsTree;

/// Builds the Figure 1 buffer graph from the per-destination routing trees.
pub fn destination_based(trees: &[BfsTree]) -> BufferGraph {
    let n = trees.len();
    let mut bg = BufferGraph::new(n, n);
    for (d, tree) in trees.iter().enumerate() {
        for p in 0..n {
            if let Some(q) = tree.parent(p) {
                bg.add_move(BufferId::new(p, d), BufferId::new(q, d));
            }
        }
    }
    bg
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::{gen, BfsTree, Graph};

    fn trees_of(g: &Graph) -> Vec<BfsTree> {
        (0..g.n()).map(|d| BfsTree::new(g, d)).collect()
    }

    #[test]
    fn figure1_scheme_is_acyclic() {
        for g in [
            gen::line(6),
            gen::ring(7),
            gen::star(5),
            gen::grid(3, 3),
            gen::random_connected(12, 8, 3),
        ] {
            let bg = destination_based(&trees_of(&g));
            assert!(bg.is_acyclic(), "Figure 1 buffer graph must be acyclic");
        }
    }

    #[test]
    fn one_component_per_destination() {
        let g = gen::random_connected(9, 4, 1);
        let bg = destination_based(&trees_of(&g));
        let comps = bg.weak_components();
        assert_eq!(comps.len(), g.n(), "n components, one per destination");
        // Each component holds exactly the n buffers of one destination.
        for comp in comps {
            let d = comp[0].slot;
            assert_eq!(comp.len(), g.n());
            assert!(comp.iter().all(|b| b.slot == d));
        }
    }

    #[test]
    fn component_is_isomorphic_to_tree() {
        let g = gen::grid(3, 4);
        let trees = trees_of(&g);
        let bg = destination_based(&trees);
        for (d, tree) in trees.iter().enumerate() {
            for p in 0..g.n() {
                let out: Vec<_> = bg.moves_from(BufferId::new(p, d)).collect();
                match tree.parent(p) {
                    Some(q) => assert_eq!(out, vec![BufferId::new(q, d)]),
                    None => assert!(out.is_empty(), "root buffer has no outgoing move"),
                }
            }
        }
    }

    #[test]
    fn buffers_per_node_equals_n() {
        let g = gen::ring(5);
        let bg = destination_based(&trees_of(&g));
        assert_eq!(bg.slots_per_node(), g.n());
        assert_eq!(bg.len(), g.n() * g.n());
        assert_eq!(bg.n_moves(), g.n() * (g.n() - 1)); // n trees × (n−1) edges
    }
}
