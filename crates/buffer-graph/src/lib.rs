//! Buffer graphs and deadlock-free controllers for message-switched
//! (store-and-forward) networks — the substrate of §2.2 and §3.1.
//!
//! Merlin–Schweitzer \[21\] showed that restricting message moves to the edges
//! of an **acyclic** directed graph over the network's buffers yields a
//! deadlock-free controller. The paper uses two instances:
//!
//! * the classical **destination-based** scheme of **Figure 1** — one buffer
//!   `b_p(d)` per processor per destination, moves along the routing tree
//!   `T_d` ([`mod@destination_based`]);
//! * SSMFP's **two-buffer** adaptation of **Figure 2** — a reception buffer
//!   `bufR_p(d)` and an emission buffer `bufE_p(d)` per processor per
//!   destination, with internal moves `R → E` and tree moves
//!   `E_p → R_{nextHop(p)}` ([`mod@two_buffer`]);
//!
//! and its conclusion discusses a third, the **acyclic orientation cover**
//! scheme (3 buffers per processor on a ring, 2 on a tree), which we build in
//! [`cover`] as the E11 extension.
//!
//! [`graph`] provides the buffer-graph representation itself (acyclicity
//! check, topological order, weakly-connected components) and [`sim`] a small
//! token-level store-and-forward simulator used to demonstrate empirically
//! that acyclic buffer graphs never deadlock while cyclic ones do.

pub mod cover;
pub mod destination_based;
pub mod dot;
pub mod graph;
pub mod hop;
pub mod sim;
pub mod two_buffer;

pub use cover::{ring_cover, tree_cover, AcyclicCover, Orientation};
pub use destination_based::destination_based;
pub use dot::{destination_based_dot, two_buffer_dot};
pub use graph::{BufferGraph, BufferId};
pub use hop::{hop_route, hop_scheme};
pub use two_buffer::{two_buffer, two_buffer_from_fn, TwoBufferLayout};
