//! SSMFP's two-buffer-per-destination buffer graph of **Figure 2**.
//!
//! For each destination `d`, every processor `p` has a reception buffer
//! `bufR_p(d)` and an emission buffer `bufE_p(d)`. Permitted moves:
//!
//! * internal forwarding `bufR_p(d) → bufE_p(d)` (rule `R2`),
//! * tree forwarding `bufE_p(d) → bufR_{nextHop_p(d)}(d)` for `p ≠ d`
//!   (rule `R3`).
//!
//! With correct routing tables this graph is acyclic; with corrupted tables
//! it may contain cycles (the Figure 3 `a ↔ c` situation) — SSMFP's colors
//! and erasure rules are exactly what keeps the protocol live and lossless
//! until the routing algorithm `A` restores acyclicity.

use crate::graph::{BufferGraph, BufferId};
use ssmfp_topology::{BfsTree, NodeId};

/// Slot-layout helper for the two-buffer scheme: slot `2d` is `bufR_p(d)`,
/// slot `2d + 1` is `bufE_p(d)`.
#[derive(Debug, Clone, Copy)]
pub struct TwoBufferLayout {
    /// Number of destinations (= processors).
    pub n: usize,
}

impl TwoBufferLayout {
    /// Layout for a network of `n` processors.
    pub fn new(n: usize) -> Self {
        TwoBufferLayout { n }
    }

    /// Reception buffer `bufR_p(d)`.
    pub fn r(&self, p: NodeId, d: NodeId) -> BufferId {
        debug_assert!(d < self.n);
        BufferId::new(p, 2 * d)
    }

    /// Emission buffer `bufE_p(d)`.
    pub fn e(&self, p: NodeId, d: NodeId) -> BufferId {
        debug_assert!(d < self.n);
        BufferId::new(p, 2 * d + 1)
    }

    /// Decodes a slot into `(destination, is_emission)`.
    pub fn decode(&self, slot: usize) -> (NodeId, bool) {
        (slot / 2, slot % 2 == 1)
    }
}

/// Builds the Figure 2 buffer graph from a `nextHop` function (so it can be
/// built from *correct* trees or from *corrupted* routing tables alike).
///
/// `next_hop(p, d)` must return the neighbour `p` currently forwards
/// messages of destination `d` to; it is not consulted for `p = d`.
pub fn two_buffer_from_fn(
    n: usize,
    mut next_hop: impl FnMut(NodeId, NodeId) -> NodeId,
) -> BufferGraph {
    let layout = TwoBufferLayout::new(n);
    let mut bg = BufferGraph::new(n, 2 * n);
    for d in 0..n {
        for p in 0..n {
            // Internal forwarding R → E (rule R2).
            bg.add_move(layout.r(p, d), layout.e(p, d));
            // Tree forwarding E_p → R_{nextHop} (rule R3); the destination
            // consumes from its emission buffer instead (rule R6).
            if p != d {
                let q = next_hop(p, d);
                bg.add_move(layout.e(p, d), layout.r(q, d));
            }
        }
    }
    bg
}

/// Builds the Figure 2 buffer graph from converged routing trees.
pub fn two_buffer(trees: &[BfsTree]) -> BufferGraph {
    two_buffer_from_fn(trees.len(), |p, d| {
        trees[d].parent(p).expect("non-destination has a parent")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::{gen, BfsTree, Graph};

    fn trees_of(g: &Graph) -> Vec<BfsTree> {
        (0..g.n()).map(|d| BfsTree::new(g, d)).collect()
    }

    #[test]
    fn figure2_scheme_is_acyclic_with_correct_tables() {
        for g in [
            gen::line(5),
            gen::ring(6),
            gen::star(6),
            gen::figure3_network(),
            gen::random_connected(10, 6, 2),
        ] {
            let bg = two_buffer(&trees_of(&g));
            assert!(bg.is_acyclic(), "Figure 2 buffer graph must be acyclic");
        }
    }

    #[test]
    fn two_buffers_per_destination_per_node() {
        let g = gen::ring(5);
        let bg = two_buffer(&trees_of(&g));
        assert_eq!(bg.slots_per_node(), 2 * g.n());
        assert_eq!(bg.len(), 2 * g.n() * g.n());
    }

    #[test]
    fn moves_match_rules() {
        let g = gen::line(4);
        let trees = trees_of(&g);
        let bg = two_buffer(&trees);
        let l = TwoBufferLayout::new(4);
        // R2 move exists everywhere.
        for d in 0..4 {
            for p in 0..4 {
                assert!(bg.permits(l.r(p, d), l.e(p, d)));
            }
        }
        // R3 moves follow the tree; destination's E has no outgoing move.
        assert!(bg.permits(l.e(3, 0), l.r(2, 0)));
        assert!(bg.permits(l.e(1, 0), l.r(0, 0)));
        assert!(bg.moves_from(l.e(0, 0)).next().is_none());
    }

    #[test]
    fn one_component_per_destination() {
        let g = gen::grid(3, 3);
        let bg = two_buffer(&trees_of(&g));
        let comps = bg.weak_components();
        assert_eq!(comps.len(), g.n());
        for comp in comps {
            assert_eq!(comp.len(), 2 * g.n(), "component has 2n buffers");
            let (d0, _) = TwoBufferLayout::new(g.n()).decode(comp[0].slot);
            assert!(comp
                .iter()
                .all(|b| TwoBufferLayout::new(g.n()).decode(b.slot).0 == d0));
        }
    }

    #[test]
    fn corrupted_tables_can_create_cycles() {
        // Figure 3's premise: a routing cycle between two neighbours turns
        // the buffer graph cyclic. Point 0's next hop for destination 3
        // at 1, and 1's back at 0.
        let next_hop = |p: NodeId, d: NodeId| -> NodeId {
            match (p, d) {
                (0, 3) => 1,
                (1, 3) => 0,
                (p, d) => {
                    // line topology: correct next hop otherwise
                    if p < d {
                        p + 1
                    } else {
                        p - 1
                    }
                }
            }
        };
        let bg = two_buffer_from_fn(4, next_hop);
        assert!(
            !bg.is_acyclic(),
            "a 2-cycle in the routing tables must surface as a buffer-graph cycle"
        );
    }

    #[test]
    fn layout_decode_roundtrip() {
        let l = TwoBufferLayout::new(7);
        for d in 0..7 {
            assert_eq!(l.decode(l.r(3, d).slot), (d, false));
            assert_eq!(l.decode(l.e(3, d).slot), (d, true));
        }
    }
}
