//! The classical **hop scheme** — the third Merlin–Schweitzer controller
//! family, included to complete the §4 comparison of buffer budgets:
//!
//! * destination-based (Fig 1): `n` buffers per node,
//! * SSMFP two-buffer (Fig 2): `2n` buffers per node,
//! * acyclic orientation cover: `rank(G)` buffers per node (2 on trees,
//!   3 on rings, NP-hard in general \[19\]),
//! * **hop scheme**: `D + 1` buffers per node — class `i` holds messages
//!   that have taken `i` hops; every move strictly increases the class, so
//!   the buffer graph is trivially acyclic, and any shortest-path route
//!   (length ≤ D) fits.
//!
//! The hop scheme beats the destination schemes whenever `D + 1 < n`
//! (almost always) but, unlike them, needs a bound on `D` and cannot
//! distinguish destinations — which is exactly why the paper's protocol
//! builds on the destination-based family instead.

use crate::graph::{BufferGraph, BufferId};
use ssmfp_topology::{Graph, NodeId};

/// Builds the hop-scheme buffer graph with classes `0..=max_hops`:
/// a message in class `i < max_hops` at `p` may move to class `i+1` at any
/// neighbour.
pub fn hop_scheme(g: &Graph, max_hops: u32) -> BufferGraph {
    let k = max_hops as usize + 1;
    let mut bg = BufferGraph::new(g.n(), k);
    for &(p, q) in g.edges() {
        for i in 0..k - 1 {
            bg.add_move(BufferId::new(p, i), BufferId::new(q, i + 1));
            bg.add_move(BufferId::new(q, i), BufferId::new(p, i + 1));
        }
    }
    bg
}

/// The buffer route of a node route under the hop scheme: hop `i` lands in
/// class `i`. Returns `None` if the route exceeds the class budget.
pub fn hop_route(route: &[NodeId], max_hops: u32) -> Option<Vec<BufferId>> {
    if route.len() > max_hops as usize + 1 {
        return None;
    }
    Some(
        route
            .iter()
            .enumerate()
            .map(|(i, &p)| BufferId::new(p, i))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{DrainOutcome, StoreForward};
    use rand::SeedableRng;
    use ssmfp_topology::{gen, AllPairs, BfsTree, GraphMetrics};

    #[test]
    fn hop_scheme_is_acyclic() {
        for g in [gen::ring(8), gen::grid(3, 3), gen::petersen()] {
            let d = GraphMetrics::new(&g).diameter();
            assert!(hop_scheme(&g, d).is_acyclic());
        }
    }

    #[test]
    fn buffers_per_node_is_diameter_plus_one() {
        let g = gen::line(9); // D = 8
        let bg = hop_scheme(&g, 8);
        assert_eq!(bg.slots_per_node(), 9);
    }

    #[test]
    fn every_shortest_route_fits() {
        let g = gen::torus(3, 4);
        let d = GraphMetrics::new(&g).diameter();
        let ap = AllPairs::new(&g);
        for dst in 0..g.n() {
            let tree = BfsTree::new(&g, dst);
            for src in 0..g.n() {
                let route = tree.path_to_root(src);
                let bufs = hop_route(&route, d).expect("shortest route fits in D+1 classes");
                assert_eq!(bufs.len() as u32, ap.dist(src, dst) + 1);
            }
        }
    }

    #[test]
    fn over_length_route_rejected() {
        assert!(hop_route(&[0, 1, 2, 3], 2).is_none());
        assert!(hop_route(&[0, 1, 2], 2).is_some());
    }

    #[test]
    fn hop_scheme_drains_under_saturation() {
        let g = gen::ring(7);
        let d = GraphMetrics::new(&g).diameter();
        let bg = hop_scheme(&g, d);
        let mut sim = StoreForward::new(bg);
        let mut id = 0;
        for dst in 0..g.n() {
            let tree = BfsTree::new(&g, dst);
            for src in 0..g.n() {
                if src == dst {
                    continue;
                }
                let route = hop_route(&tree.path_to_root(src), d).expect("fits");
                sim.inject(id, route);
                id += 1;
            }
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let outcome = sim.drain(&mut rng, 1_000_000);
        assert!(
            matches!(outcome, DrainOutcome::Drained { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn class_budget_comparison_matches_paper_discussion() {
        // On a large ring: cover (3) < hop (D+1) < destination (n) < SSMFP (2n).
        let n = 20;
        let g = gen::ring(n);
        let d = GraphMetrics::new(&g).diameter() as usize;
        let cover = crate::cover::ring_cover(n).k();
        assert!(cover < d + 1);
        assert!(d + 1 < n);
        assert!(n < 2 * n);
    }
}
