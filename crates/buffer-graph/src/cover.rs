//! Acyclic-orientation-cover buffer graphs — the §4 (conclusion) extension.
//!
//! The paper notes that Merlin–Schweitzer's *acyclic covering* scheme needs
//! far fewer buffers than the destination-based scheme ("3 for a ring, 2 for
//! a tree") but that computing the optimal cover size (the *rank*) of an
//! arbitrary graph is NP-hard \[19\]. We implement the two tractable cases the
//! paper names:
//!
//! * **trees** ([`tree_cover`]): cover `(up, down)` — orient all edges toward
//!   a root, then away from it. Any tree route climbs to the LCA then
//!   descends, so 2 classes (= 2 buffers per processor) suffice.
//! * **rings** ([`ring_cover`]): cover `(down, up, down)` with respect to a
//!   fixed *valley* node. Any shortest ring route crosses the valley at most
//!   once and the antipodal peak at most once, so 3 classes suffice.
//!
//! A message in class `i` hopping `p → q` re-enters the smallest class
//! `j ≥ i` whose orientation directs `p → q`; class never decreases and each
//! class's internal moves follow an acyclic orientation, so the resulting
//! buffer graph is acyclic by construction — deadlock-free with `k ≪ n`
//! buffers per node.

use crate::graph::{BufferGraph, BufferId};
use ssmfp_topology::{BfsTree, Graph, NodeId};

/// An orientation of a graph's edges, induced by a height function with
/// identity tie-break: each edge is directed from its (height, id)-larger
/// endpoint to its smaller — strictly decreasing potential, hence acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    /// `key[p] = (height, id)` potential; edges run from larger to smaller.
    key: Vec<(i64, usize)>,
    /// If true, all directions are reversed (potential increases).
    reversed: bool,
}

impl Orientation {
    /// Orientation from a height function (ties broken by identity).
    pub fn from_heights(heights: &[i64]) -> Self {
        Orientation {
            key: heights.iter().copied().zip(0..).collect(),
            reversed: false,
        }
    }

    /// The exact reverse orientation.
    pub fn reversed(&self) -> Self {
        Orientation {
            key: self.key.clone(),
            reversed: !self.reversed,
        }
    }

    /// Whether this orientation directs the edge `p → q`.
    pub fn directs(&self, p: NodeId, q: NodeId) -> bool {
        let forward = self.key[p] > self.key[q];
        forward != self.reversed
    }
}

/// An ordered sequence of acyclic orientations (the *cover*), defining a
/// buffer class per entry.
#[derive(Debug, Clone)]
pub struct AcyclicCover {
    orientations: Vec<Orientation>,
}

impl AcyclicCover {
    /// Builds a cover from an orientation sequence.
    pub fn new(orientations: Vec<Orientation>) -> Self {
        assert!(!orientations.is_empty(), "cover needs at least one class");
        AcyclicCover { orientations }
    }

    /// Number of classes `k` (= buffers per processor).
    pub fn k(&self) -> usize {
        self.orientations.len()
    }

    /// Smallest class `j ≥ from_class` whose orientation directs `p → q`.
    pub fn next_class(&self, from_class: usize, p: NodeId, q: NodeId) -> Option<usize> {
        (from_class..self.k()).find(|&j| self.orientations[j].directs(p, q))
    }

    /// Greedily schedules a node route (sequence of processors) into buffer
    /// classes: the message is injected into the smallest class conforming
    /// to its first hop and escalates monotonically. Returns the class of
    /// each hop's *target* buffer, or `None` if the route does not fit in
    /// `k` classes (such a route would risk deadlock and must be rejected
    /// by the controller).
    pub fn schedule_route(&self, route: &[NodeId]) -> Option<Vec<usize>> {
        let mut classes = Vec::with_capacity(route.len().saturating_sub(1));
        let mut class = 0;
        for hop in route.windows(2) {
            class = self.next_class(class, hop[0], hop[1])?;
            classes.push(class);
        }
        Some(classes)
    }

    /// Whether every canonical shortest-path route of `g` (via the
    /// smallest-identity BFS trees) is schedulable in this cover.
    pub fn covers_all_shortest_paths(&self, g: &Graph) -> bool {
        for d in 0..g.n() {
            let tree = BfsTree::new(g, d);
            for s in 0..g.n() {
                if self.schedule_route(&tree.path_to_root(s)).is_none() {
                    return false;
                }
            }
        }
        true
    }

    /// Materializes the cover as a [`BufferGraph`] over `g`: `k` buffers per
    /// processor; moves `(p, i) → (q, next_class(i, p, q))` for every edge.
    pub fn buffer_graph(&self, g: &Graph) -> BufferGraph {
        let k = self.k();
        let mut bg = BufferGraph::new(g.n(), k);
        for &(p, q) in g.edges() {
            for i in 0..k {
                if let Some(j) = self.next_class(i, p, q) {
                    bg.add_move(BufferId::new(p, i), BufferId::new(q, j));
                }
                if let Some(j) = self.next_class(i, q, p) {
                    bg.add_move(BufferId::new(q, i), BufferId::new(p, j));
                }
            }
        }
        bg
    }
}

/// The 2-class tree cover `(toward root, away from root)`.
pub fn tree_cover(tree: &BfsTree) -> AcyclicCover {
    let heights: Vec<i64> = (0..tree.n()).map(|p| tree.depth(p) as i64).collect();
    let down = Orientation::from_heights(&heights); // deeper → shallower
    let up = down.reversed();
    AcyclicCover::new(vec![down, up])
}

/// The 3-class ring cover `(downhill, uphill, downhill)` with respect to the
/// valley node `⌊n/2⌋` (heights = ring distance to the valley).
pub fn ring_cover(n: usize) -> AcyclicCover {
    assert!(n >= 3, "ring cover requires n >= 3");
    let valley = n / 2;
    let ring_dist = |p: usize| -> i64 {
        let fwd = (p + n - valley) % n;
        fwd.min(n - fwd) as i64
    };
    let heights: Vec<i64> = (0..n).map(ring_dist).collect();
    let down = Orientation::from_heights(&heights);
    let up = down.reversed();
    AcyclicCover::new(vec![down.clone(), up, down])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn tree_cover_has_two_classes_and_covers() {
        for (n, k) in [(7usize, 2usize), (15, 2), (10, 3)] {
            let g = gen::kary_tree(n, k);
            let cover = tree_cover(&BfsTree::new(&g, 0));
            assert_eq!(cover.k(), 2, "paper: 2 buffers per processor on a tree");
            assert!(cover.covers_all_shortest_paths(&g));
            assert!(cover.buffer_graph(&g).is_acyclic());
        }
    }

    #[test]
    fn random_trees_covered_by_two_classes() {
        for seed in 0..10 {
            let g = gen::random_tree(20, seed);
            let cover = tree_cover(&BfsTree::new(&g, 0));
            assert!(cover.covers_all_shortest_paths(&g), "seed {seed}");
            assert!(cover.buffer_graph(&g).is_acyclic());
        }
    }

    #[test]
    fn ring_cover_has_three_classes_and_covers() {
        for n in 3..=16 {
            let g = gen::ring(n);
            let cover = ring_cover(n);
            assert_eq!(cover.k(), 3, "paper: 3 buffers per processor on a ring");
            assert!(
                cover.covers_all_shortest_paths(&g),
                "ring of {n} must be covered"
            );
            assert!(cover.buffer_graph(&g).is_acyclic(), "ring of {n}");
        }
    }

    #[test]
    fn two_classes_do_not_cover_a_ring() {
        // Drop the third class: some shortest route must fail to schedule —
        // this is why the ring's rank is 3, not 2.
        let n = 8;
        let g = gen::ring(n);
        let full = ring_cover(n);
        let two = AcyclicCover::new(vec![
            full.orientations[0].clone(),
            full.orientations[1].clone(),
        ]);
        assert!(!two.covers_all_shortest_paths(&g));
    }

    #[test]
    fn cover_buffer_graphs_are_always_acyclic() {
        // Acyclicity holds by construction for ANY cover on ANY graph.
        let g = gen::random_connected(12, 10, 5);
        let heights: Vec<i64> = (0..12).map(|p| (p as i64 * 7) % 5).collect();
        let o = Orientation::from_heights(&heights);
        let cover = AcyclicCover::new(vec![o.clone(), o.reversed(), o]);
        assert!(cover.buffer_graph(&g).is_acyclic());
    }

    #[test]
    fn schedule_is_monotone() {
        let n = 11;
        let g = gen::ring(n);
        let cover = ring_cover(n);
        let tree = BfsTree::new(&g, 0);
        for s in 0..n {
            if let Some(classes) = cover.schedule_route(&tree.path_to_root(s)) {
                assert!(classes.windows(2).all(|w| w[0] <= w[1]));
                assert!(classes.iter().all(|&c| c < cover.k()));
            } else {
                panic!("route from {s} should schedule");
            }
        }
    }

    #[test]
    fn orientation_directs_each_edge_one_way() {
        let heights = vec![3, 1, 2, 1];
        let o = Orientation::from_heights(&heights);
        assert!(o.directs(0, 1));
        assert!(!o.directs(1, 0));
        // Tie between nodes 1 and 3 broken by identity: 3 → 1.
        assert!(o.directs(3, 1));
        assert!(!o.directs(1, 3));
        let r = o.reversed();
        assert!(r.directs(1, 0));
        assert!(!r.directs(0, 1));
    }

    #[test]
    fn empty_route_schedules_trivially() {
        let cover = ring_cover(5);
        assert_eq!(cover.schedule_route(&[2]), Some(vec![]));
    }
}
