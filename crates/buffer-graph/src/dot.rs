//! Graphviz DOT rendering of buffer graphs — the literal regeneration of
//! the paper's **Figure 1** and **Figure 2** drawings for any network.
//!
//! Buffers are drawn as nodes labelled by the paper's notation (`b_p(d)`
//! for the destination-based scheme, `R_p(d)` / `E_p(d)` for SSMFP's
//! two-buffer scheme), clustered by hosting processor, with permitted
//! moves as directed edges.

use crate::graph::BufferGraph;
use crate::two_buffer::TwoBufferLayout;
use std::fmt::Write;

/// Renders a destination-based buffer graph (Figure 1 style): one buffer
/// per destination per node, labelled `b_p(d)`. When `only_dest` is set,
/// renders that destination's connected component only (as the figure
/// does for its chosen destination).
pub fn destination_based_dot(bg: &BufferGraph, name: &str, only_dest: Option<usize>) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").expect("infallible");
    writeln!(out, "  rankdir=LR;").expect("infallible");
    for p in 0..bg.n_nodes() {
        writeln!(out, "  subgraph cluster_{p} {{ label=\"processor {p}\";").expect("infallible");
        for d in 0..bg.slots_per_node() {
            if only_dest.is_none_or(|od| od == d) {
                writeln!(out, "    b_{p}_{d} [label=\"b_{p}({d})\"];").expect("infallible");
            }
        }
        writeln!(out, "  }}").expect("infallible");
    }
    for idx in 0..bg.len() {
        let from = bg.buffer(idx);
        if only_dest.is_some_and(|od| od != from.slot) {
            continue;
        }
        for to in bg.moves_from(from) {
            writeln!(
                out,
                "  b_{}_{} -> b_{}_{};",
                from.node, from.slot, to.node, to.slot
            )
            .expect("infallible");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an SSMFP two-buffer graph (Figure 2 style): `bufR_p(d)` and
/// `bufE_p(d)` per node, for one destination's component.
pub fn two_buffer_dot(bg: &BufferGraph, name: &str, dest: usize) -> String {
    let n = bg.n_nodes();
    let layout = TwoBufferLayout::new(n);
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").expect("infallible");
    writeln!(out, "  rankdir=LR;").expect("infallible");
    for p in 0..n {
        writeln!(out, "  subgraph cluster_{p} {{ label=\"processor {p}\";").expect("infallible");
        writeln!(out, "    r_{p} [label=\"bufR_{p}({dest})\" shape=box];").expect("infallible");
        writeln!(
            out,
            "    e_{p} [label=\"bufE_{p}({dest})\" shape=box style=rounded];"
        )
        .expect("infallible");
        writeln!(out, "  }}").expect("infallible");
    }
    for p in 0..n {
        for b in [layout.r(p, dest), layout.e(p, dest)] {
            for to in bg.moves_from(b) {
                let (d_to, is_e_to) = layout.decode(to.slot);
                if d_to != dest {
                    continue;
                }
                let (_, is_e_from) = layout.decode(b.slot);
                let from_name = if is_e_from {
                    format!("e_{}", b.node)
                } else {
                    format!("r_{}", b.node)
                };
                let to_name = if is_e_to {
                    format!("e_{}", to.node)
                } else {
                    format!("r_{}", to.node)
                };
                writeln!(out, "  {from_name} -> {to_name};").expect("infallible");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::destination_based::destination_based;
    use crate::two_buffer::two_buffer;
    use ssmfp_topology::{gen, BfsTree};

    fn trees(g: &ssmfp_topology::Graph) -> Vec<BfsTree> {
        (0..g.n()).map(|d| BfsTree::new(g, d)).collect()
    }

    #[test]
    fn figure1_dot_contains_tree_edges() {
        let g = gen::figure3_network();
        let bg = destination_based(&trees(&g));
        let dot = destination_based_dot(&bg, "fig1", Some(1));
        assert!(dot.contains("digraph fig1 {"));
        // Destination 1's tree: every non-root buffer has one outgoing move.
        let t = BfsTree::new(&g, 1);
        for p in 0..g.n() {
            if let Some(q) = t.parent(p) {
                assert!(dot.contains(&format!("b_{p}_1 -> b_{q}_1;")), "{dot}");
            }
        }
        // Other destinations' buffers are filtered out.
        assert!(!dot.contains("b_0_2 ->"));
    }

    #[test]
    fn figure2_dot_contains_internal_and_tree_moves() {
        let g = gen::figure3_network();
        let bg = two_buffer(&trees(&g));
        let dot = two_buffer_dot(&bg, "fig2", 1);
        // Internal moves R → E everywhere.
        for p in 0..g.n() {
            assert!(dot.contains(&format!("r_{p} -> e_{p};")), "{dot}");
        }
        // Tree moves E_p → R_{parent}.
        let t = BfsTree::new(&g, 1);
        for p in 0..g.n() {
            if let Some(q) = t.parent(p) {
                assert!(dot.contains(&format!("e_{p} -> r_{q};")), "{dot}");
            }
        }
        // The destination's emission buffer has no outgoing tree move.
        assert!(!dot.contains("e_1 -> r_"));
    }

    #[test]
    fn full_figure1_dot_renders_all_components() {
        let g = gen::line(3);
        let bg = destination_based(&trees(&g));
        let dot = destination_based_dot(&bg, "all", None);
        for d in 0..3 {
            assert!(dot.contains(&format!("b_1_{d}")));
        }
    }
}
