//! A token-level store-and-forward simulator over a [`BufferGraph`].
//!
//! This is the §2.2 switching model reduced to its essence: tokens occupy
//! buffers; a token moves only along a permitted buffer-graph edge into an
//! *empty* buffer; a token in the final buffer of its route is consumed.
//! It is used to demonstrate the Merlin–Schweitzer theorem empirically:
//! with an **acyclic** buffer graph every configuration drains, while a
//! **cyclic** buffer graph admits genuine deadlocks (every occupied buffer
//! waiting on the next, none consumable).
//!
//! (SSMFP itself is simulated by the full state-model engine in
//! `ssmfp-core`; this simulator exists to validate the substrate in
//! isolation and to run the E11 cover-scheme experiments.)

use crate::graph::{BufferGraph, BufferId};
use rand::Rng;

/// A token (message) with a fixed buffer route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Caller-chosen identifier.
    pub id: u64,
    /// The sequence of buffers the token must traverse; `route[0]` is where
    /// it is injected, `route.last()` where it is consumed.
    pub route: Vec<BufferId>,
    /// Index into `route` of the buffer currently holding the token.
    pub pos: usize,
}

/// Result of a drain run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every token was delivered.
    Drained {
        /// Total moves performed.
        moves: u64,
    },
    /// No token can move and undelivered tokens remain: a deadlock.
    Deadlock {
        /// Tokens still in the network.
        stuck: usize,
    },
    /// The step budget was exhausted first.
    OutOfSteps,
}

/// The store-and-forward simulator.
#[derive(Debug, Clone)]
pub struct StoreForward {
    bg: BufferGraph,
    /// `occupant[buffer] = Some(token index)`.
    occupant: Vec<Option<usize>>,
    tokens: Vec<Token>,
    /// Indices of tokens not yet delivered.
    live: Vec<usize>,
    delivered: u64,
    moves: u64,
}

impl StoreForward {
    /// Creates an empty simulator over `bg`.
    pub fn new(bg: BufferGraph) -> Self {
        let len = bg.len();
        StoreForward {
            bg,
            occupant: vec![None; len],
            tokens: Vec::new(),
            live: Vec::new(),
            delivered: 0,
            moves: 0,
        }
    }

    /// The underlying buffer graph.
    pub fn buffer_graph(&self) -> &BufferGraph {
        &self.bg
    }

    /// Tokens delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Moves performed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Undelivered token count.
    pub fn live_tokens(&self) -> usize {
        self.live.len()
    }

    /// Injects a token at the head of its route. Every consecutive pair of
    /// route buffers must be a permitted move. Fails (returns `false`)
    /// if the first buffer is occupied.
    pub fn inject(&mut self, id: u64, route: Vec<BufferId>) -> bool {
        assert!(!route.is_empty(), "a route needs at least one buffer");
        for w in route.windows(2) {
            assert!(
                self.bg.permits(w[0], w[1]),
                "route move {:?} → {:?} not permitted by the buffer graph",
                w[0],
                w[1]
            );
        }
        let head = self.bg.index(route[0]);
        if self.occupant[head].is_some() {
            return false;
        }
        let idx = self.tokens.len();
        self.occupant[head] = Some(idx);
        self.tokens.push(Token { id, route, pos: 0 });
        self.live.push(idx);
        true
    }

    fn token_can_act(&self, t: &Token) -> bool {
        if t.pos + 1 == t.route.len() {
            return true; // consumable
        }
        let next = self.bg.index(t.route[t.pos + 1]);
        self.occupant[next].is_none()
    }

    /// Performs one enabled action (consumption preferred, else a move) on a
    /// uniformly random actionable token. Returns `false` if no token can
    /// act (terminal: either drained or deadlocked).
    pub fn step(&mut self, rng: &mut impl Rng) -> bool {
        let actionable: Vec<usize> = self
            .live
            .iter()
            .copied()
            .filter(|&i| self.token_can_act(&self.tokens[i]))
            .collect();
        if actionable.is_empty() {
            return false;
        }
        let chosen = actionable[rng.gen_range(0..actionable.len())];
        let t = &mut self.tokens[chosen];
        let cur = self.bg.index(t.route[t.pos]);
        if t.pos + 1 == t.route.len() {
            // Consume.
            self.occupant[cur] = None;
            self.live.retain(|&i| i != chosen);
            self.delivered += 1;
        } else {
            let next = self.bg.index(t.route[t.pos + 1]);
            debug_assert!(self.occupant[next].is_none());
            self.occupant[cur] = None;
            self.occupant[next] = Some(chosen);
            t.pos += 1;
            self.moves += 1;
        }
        true
    }

    /// Runs until drained, deadlocked, or `max_steps`.
    pub fn drain(&mut self, rng: &mut impl Rng, max_steps: u64) -> DrainOutcome {
        for _ in 0..max_steps {
            if self.live.is_empty() {
                return DrainOutcome::Drained { moves: self.moves };
            }
            if !self.step(rng) {
                return DrainOutcome::Deadlock {
                    stuck: self.live.len(),
                };
            }
        }
        if self.live.is_empty() {
            DrainOutcome::Drained { moves: self.moves }
        } else {
            DrainOutcome::OutOfSteps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::{ring_cover, tree_cover};
    use crate::destination_based::destination_based;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ssmfp_topology::{gen, BfsTree};

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn acyclic_graph_always_drains() {
        // Destination-based scheme on a grid, saturated with tokens.
        let g = gen::grid(3, 3);
        let trees: Vec<BfsTree> = (0..g.n()).map(|d| BfsTree::new(&g, d)).collect();
        let bg = destination_based(&trees);
        let mut sim = StoreForward::new(bg);
        let mut id = 0;
        for s in 0..g.n() {
            for (d, tree) in trees.iter().enumerate() {
                if s != d {
                    let route: Vec<BufferId> = tree
                        .path_to_root(s)
                        .into_iter()
                        .map(|p| BufferId::new(p, d))
                        .collect();
                    sim.inject(id, route);
                    id += 1;
                }
            }
        }
        let injected = sim.live_tokens();
        assert!(injected > 0);
        let outcome = sim.drain(&mut rng(1), 1_000_000);
        assert_eq!(
            outcome,
            DrainOutcome::Drained { moves: sim.moves() },
            "Merlin–Schweitzer: acyclic buffer graph cannot deadlock"
        );
        assert_eq!(sim.delivered(), injected as u64);
    }

    #[test]
    fn cyclic_graph_deadlocks() {
        // Negative control: a 3-cycle of single-buffer processors, all
        // occupied, each token needing the next buffer — a textbook
        // store-and-forward deadlock.
        let mut bg = BufferGraph::new(3, 1);
        let b = |p: usize| BufferId::new(p, 0);
        bg.add_move(b(0), b(1));
        bg.add_move(b(1), b(2));
        bg.add_move(b(2), b(0));
        let mut sim = StoreForward::new(bg);
        assert!(sim.inject(0, vec![b(0), b(1), b(2)]));
        assert!(sim.inject(1, vec![b(1), b(2), b(0)]));
        assert!(sim.inject(2, vec![b(2), b(0), b(1)]));
        let outcome = sim.drain(&mut rng(2), 10_000);
        assert_eq!(outcome, DrainOutcome::Deadlock { stuck: 3 });
    }

    #[test]
    fn ring_cover_drains_under_saturation() {
        // E11: 3 buffers per node on a ring suffice — saturate and drain.
        let n = 9;
        let g = gen::ring(n);
        let cover = ring_cover(n);
        let bg = cover.buffer_graph(&g);
        let mut sim = StoreForward::new(bg);
        let mut id = 0;
        let mut injected = 0;
        for d in 0..n {
            let tree = BfsTree::new(&g, d);
            for s in 0..n {
                if s == d {
                    continue;
                }
                let route_nodes = tree.path_to_root(s);
                let classes = cover.schedule_route(&route_nodes).expect("covered");
                let mut route = vec![BufferId::new(route_nodes[0], classes[0])];
                for (i, &node) in route_nodes.iter().enumerate().skip(1) {
                    route.push(BufferId::new(node, classes[i - 1]));
                }
                // Injection buffer: the class of the first hop at the source.
                if sim.inject(id, route) {
                    injected += 1;
                }
                id += 1;
            }
        }
        assert!(injected > 0);
        let outcome = sim.drain(&mut rng(3), 1_000_000);
        assert!(
            matches!(outcome, DrainOutcome::Drained { .. }),
            "cover scheme must drain: {outcome:?}"
        );
    }

    #[test]
    fn tree_cover_drains_under_saturation() {
        let g = gen::random_tree(12, 4);
        let root_tree = BfsTree::new(&g, 0);
        let cover = tree_cover(&root_tree);
        let bg = cover.buffer_graph(&g);
        let mut sim = StoreForward::new(bg);
        let mut id = 0;
        for d in 0..g.n() {
            let tree = BfsTree::new(&g, d);
            for s in 0..g.n() {
                if s == d {
                    continue;
                }
                let route_nodes = tree.path_to_root(s);
                let classes = cover.schedule_route(&route_nodes).expect("covered");
                let mut route = vec![BufferId::new(route_nodes[0], classes[0])];
                for (i, &node) in route_nodes.iter().enumerate().skip(1) {
                    route.push(BufferId::new(node, classes[i - 1]));
                }
                sim.inject(id, route);
                id += 1;
            }
        }
        let outcome = sim.drain(&mut rng(5), 1_000_000);
        assert!(
            matches!(outcome, DrainOutcome::Drained { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn inject_rejects_occupied_head() {
        let mut bg = BufferGraph::new(2, 1);
        bg.add_move(BufferId::new(0, 0), BufferId::new(1, 0));
        let mut sim = StoreForward::new(bg);
        assert!(sim.inject(0, vec![BufferId::new(0, 0), BufferId::new(1, 0)]));
        assert!(!sim.inject(1, vec![BufferId::new(0, 0), BufferId::new(1, 0)]));
    }

    #[test]
    fn single_buffer_route_is_consumed_in_place() {
        let bg = BufferGraph::new(1, 1);
        let mut sim = StoreForward::new(bg);
        assert!(sim.inject(0, vec![BufferId::new(0, 0)]));
        let outcome = sim.drain(&mut rng(7), 10);
        assert_eq!(outcome, DrainOutcome::Drained { moves: 0 });
        assert_eq!(sim.delivered(), 1);
    }
}
