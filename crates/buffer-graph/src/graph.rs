//! The buffer-graph representation: a directed graph whose vertices are the
//! network's buffers and whose edges are the moves a controller permits.

use ssmfp_topology::NodeId;
use std::collections::VecDeque;

/// Identity of a buffer: which processor hosts it and which local slot it is
/// (slot semantics are scheme-specific: destination index, `R`/`E` pair
/// index, or orientation class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId {
    /// Hosting processor.
    pub node: NodeId,
    /// Local slot index within the processor.
    pub slot: usize,
}

impl BufferId {
    /// Convenience constructor.
    pub fn new(node: NodeId, slot: usize) -> Self {
        BufferId { node, slot }
    }
}

/// A directed graph over buffers. Buffers are addressed densely as
/// `node * slots_per_node + slot`.
///
/// ```
/// use ssmfp_buffer_graph::{BufferGraph, BufferId};
///
/// let mut bg = BufferGraph::new(3, 1);
/// bg.add_move(BufferId::new(0, 0), BufferId::new(1, 0));
/// bg.add_move(BufferId::new(1, 0), BufferId::new(2, 0));
/// assert!(bg.is_acyclic()); // the Merlin–Schweitzer condition
/// bg.add_move(BufferId::new(2, 0), BufferId::new(0, 0));
/// assert!(!bg.is_acyclic()); // a cycle: deadlock becomes possible
/// ```
#[derive(Debug, Clone)]
pub struct BufferGraph {
    n_nodes: usize,
    slots_per_node: usize,
    /// Outgoing move edges per buffer (dense index).
    succ: Vec<Vec<usize>>,
}

impl BufferGraph {
    /// An edgeless buffer graph with `slots_per_node` buffers on each of
    /// `n_nodes` processors.
    pub fn new(n_nodes: usize, slots_per_node: usize) -> Self {
        BufferGraph {
            n_nodes,
            slots_per_node,
            succ: vec![Vec::new(); n_nodes * slots_per_node],
        }
    }

    /// Number of processors.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Buffers per processor (`B` in §2.2).
    pub fn slots_per_node(&self) -> usize {
        self.slots_per_node
    }

    /// Total number of buffers.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the graph has no buffers.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Dense index of a buffer.
    #[inline]
    pub fn index(&self, b: BufferId) -> usize {
        debug_assert!(b.node < self.n_nodes && b.slot < self.slots_per_node);
        b.node * self.slots_per_node + b.slot
    }

    /// Buffer id from a dense index.
    #[inline]
    pub fn buffer(&self, idx: usize) -> BufferId {
        BufferId {
            node: idx / self.slots_per_node,
            slot: idx % self.slots_per_node,
        }
    }

    /// Adds the permitted move `from → to`. Duplicate edges are ignored.
    pub fn add_move(&mut self, from: BufferId, to: BufferId) {
        let (f, t) = (self.index(from), self.index(to));
        assert_ne!(f, t, "a buffer cannot move a message to itself");
        if !self.succ[f].contains(&t) {
            self.succ[f].push(t);
        }
    }

    /// Permitted moves out of `b`.
    pub fn moves_from(&self, b: BufferId) -> impl Iterator<Item = BufferId> + '_ {
        self.succ[self.index(b)].iter().map(|&i| self.buffer(i))
    }

    /// Whether the move `from → to` is permitted.
    pub fn permits(&self, from: BufferId, to: BufferId) -> bool {
        self.succ[self.index(from)].contains(&self.index(to))
    }

    /// Total number of permitted-move edges.
    pub fn n_moves(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Kahn's algorithm: `Some(order)` if acyclic, `None` otherwise. An
    /// acyclic buffer graph is the Merlin–Schweitzer sufficient condition
    /// for deadlock freedom.
    pub fn topological_order(&self) -> Option<Vec<BufferId>> {
        let n = self.succ.len();
        let mut indeg = vec![0usize; n];
        for out in &self.succ {
            for &t in out {
                indeg[t] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(self.buffer(i));
            for &t in &self.succ[i] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Whether the buffer graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Weakly connected components (sets of buffer indices), sorted by their
    /// smallest member. Figure 1's scheme yields exactly `n` components, one
    /// per destination.
    pub fn weak_components(&self) -> Vec<Vec<BufferId>> {
        let n = self.succ.len();
        // Build the undirected adjacency once.
        let mut und = vec![Vec::new(); n];
        for (f, out) in self.succ.iter().enumerate() {
            for &t in out {
                und[f].push(t);
                und[t].push(f);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut components = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let cid = components.len();
            let mut members = Vec::new();
            let mut stack = vec![start];
            comp[start] = cid;
            while let Some(i) = stack.pop() {
                members.push(self.buffer(i));
                for &j in &und[i] {
                    if comp[j] == usize::MAX {
                        comp[j] = cid;
                        stack.push(j);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(node: NodeId, slot: usize) -> BufferId {
        BufferId::new(node, slot)
    }

    #[test]
    fn chain_is_acyclic() {
        let mut bg = BufferGraph::new(3, 1);
        bg.add_move(b(0, 0), b(1, 0));
        bg.add_move(b(1, 0), b(2, 0));
        assert!(bg.is_acyclic());
        let order = bg.topological_order().unwrap();
        let pos = |x: BufferId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(b(0, 0)) < pos(b(1, 0)));
        assert!(pos(b(1, 0)) < pos(b(2, 0)));
    }

    #[test]
    fn cycle_is_detected() {
        let mut bg = BufferGraph::new(3, 1);
        bg.add_move(b(0, 0), b(1, 0));
        bg.add_move(b(1, 0), b(2, 0));
        bg.add_move(b(2, 0), b(0, 0));
        assert!(!bg.is_acyclic());
        assert!(bg.topological_order().is_none());
    }

    #[test]
    fn duplicate_moves_ignored() {
        let mut bg = BufferGraph::new(2, 1);
        bg.add_move(b(0, 0), b(1, 0));
        bg.add_move(b(0, 0), b(1, 0));
        assert_eq!(bg.n_moves(), 1);
        assert!(bg.permits(b(0, 0), b(1, 0)));
        assert!(!bg.permits(b(1, 0), b(0, 0)));
    }

    #[test]
    #[should_panic(expected = "cannot move a message to itself")]
    fn self_move_rejected() {
        let mut bg = BufferGraph::new(1, 2);
        bg.add_move(b(0, 1), b(0, 1));
    }

    #[test]
    fn components_partition_buffers() {
        let mut bg = BufferGraph::new(2, 2);
        bg.add_move(b(0, 0), b(1, 0)); // slot-0 component
                                       // slot-1 buffers remain isolated singletons
        let comps = bg.weak_components();
        assert_eq!(comps.len(), 3);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, bg.len());
    }

    #[test]
    fn index_roundtrip() {
        let bg = BufferGraph::new(4, 3);
        for node in 0..4 {
            for slot in 0..3 {
                let id = b(node, slot);
                assert_eq!(bg.buffer(bg.index(id)), id);
            }
        }
    }
}
