//! Property: footprint-driven incremental guard evaluation is
//! observationally identical to full recomputation.
//!
//! The engine caches per-destination guard scopes and, after each step,
//! re-evaluates only the scopes whose declared read footprint can
//! intersect what the executed actions wrote
//! (`Protocol::scope_affected_by`, derived in `footprint::scope_affects_of`
//! from the same declarations `ssmfp-lint` checks statically). This suite
//! drives two engines from the same random initial configuration — one
//! incremental (the default), one with `set_full_refresh(true)` (the
//! historical recompute-the-whole-neighbourhood behaviour) — under
//! identically seeded random daemons, and demands **identical enabled
//! action sets at every processor after every step**, identical states,
//! and identical step/round accounting. Any under-approximation in the
//! derived dirtiness tables (a stale guard surviving a write it should
//! have observed) shows up here as an enabled-set divergence.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::SsmfpProtocol;
use ssmfp_kernel::{
    CentralRandomDaemon, Daemon, DistributedRandomDaemon, Engine, SynchronousDaemon,
};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph};

/// Random forwarding state within the variable domains: garbage routing
/// tables, part-filled buffers, random choice pointers, a few requests.
fn randomize(graph: &Graph, seed: u64) -> Vec<NodeState> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n = graph.n();
    let delta = graph.max_degree() as u8;
    corruption::corrupt(graph, CorruptionKind::RandomGarbage, seed)
        .into_iter()
        .enumerate()
        .map(|(p, routing)| {
            let mut s = NodeState::clean(n, routing);
            let neighbors = graph.neighbors(p);
            for d in 0..n {
                for is_e in [false, true] {
                    if rng.gen_bool(0.3) {
                        let last_hop = if neighbors.is_empty() || rng.gen_bool(0.3) {
                            p
                        } else {
                            neighbors[rng.gen_range(0..neighbors.len())]
                        };
                        let m = Message {
                            payload: rng.gen_range(0..4),
                            last_hop,
                            color: Color(rng.gen_range(0..=delta)),
                            ghost: GhostId::Invalid(rng.gen()),
                        };
                        if is_e {
                            s.slots[d].buf_e = Some(m);
                        } else {
                            s.slots[d].buf_r = Some(m);
                        }
                    }
                }
                s.slots[d].choice_ptr = rng.gen_range(0..=neighbors.len());
            }
            if rng.gen_bool(0.5) {
                s.outbox.push_back(Outgoing {
                    dest: rng.gen_range(0..n),
                    payload: rng.gen_range(0..4),
                    ghost: GhostId::Valid(p as u64),
                });
                s.request = true;
            }
            s
        })
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (2usize..7).prop_map(gen::line),
        (3usize..7).prop_map(gen::ring),
        (3usize..7).prop_map(gen::star),
        Just(gen::caterpillar(3, 1)),
        ((4usize..8), (0usize..4), any::<u64>())
            .prop_map(|(n, e, s)| gen::random_connected(n, e, s)),
    ]
}

fn daemon_pair(kind: u8, seed: u64) -> (Box<dyn Daemon>, Box<dyn Daemon>) {
    match kind % 3 {
        0 => (
            Box::new(CentralRandomDaemon::with_random_action(seed)),
            Box::new(CentralRandomDaemon::with_random_action(seed)),
        ),
        1 => (
            Box::new(DistributedRandomDaemon::new(seed, 0.6)),
            Box::new(DistributedRandomDaemon::new(seed, 0.6)),
        ),
        _ => (Box::new(SynchronousDaemon), Box::new(SynchronousDaemon)),
    }
}

/// Runs the incremental and full-refresh engines in lockstep and checks
/// observational equality after every step.
fn run_lockstep(graph: Graph, states: Vec<NodeState>, kind: u8, seed: u64, steps: usize) {
    let proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
    let (daemon_inc, daemon_full) = daemon_pair(kind, seed);
    let mut inc = Engine::new(graph.clone(), proto.clone(), daemon_inc, states.clone());
    let mut full = Engine::new(graph, proto, daemon_full, states);
    full.set_full_refresh(true);
    for step in 0..steps {
        for p in 0..inc.graph().n() {
            assert_eq!(
                inc.enabled_actions_of(p),
                full.enabled_actions_of(p),
                "enabled set diverged at processor {p} before step {step}"
            );
        }
        // Identical enabled sets + identically seeded daemons ⇒ identical
        // choices, so the runs stay in lockstep by induction.
        let out_inc = inc.step();
        let out_full = full.step();
        assert_eq!(out_inc, out_full, "step outcome diverged at step {step}");
        assert_eq!(
            inc.states(),
            full.states(),
            "configuration diverged after step {step}"
        );
        assert_eq!(inc.steps(), full.steps());
        assert_eq!(inc.rounds(), full.rounds(), "round accounting diverged");
        if matches!(out_inc, ssmfp_kernel::StepOutcome::Terminal) {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Incremental == full refresh from arbitrary (corrupted) initial
    /// configurations under random daemons.
    #[test]
    fn incremental_matches_full_refresh(
        graph in arb_graph(),
        seed in any::<u64>(),
        kind in any::<u8>(),
    ) {
        let states = randomize(&graph, seed);
        run_lockstep(graph, states, kind, seed, 120);
    }

    /// Same property from clean configurations with queued messages (the
    /// steady-state regime: long runs dominated by forwarding moves).
    #[test]
    fn incremental_matches_full_refresh_clean_traffic(
        graph in arb_graph(),
        seed in any::<u64>(),
        kind in any::<u8>(),
    ) {
        let n = graph.n();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(n, r))
            .collect();
        if n >= 2 {
            for i in 0..3u64 {
                let src = rng.gen_range(0..n);
                let dst = (src + rng.gen_range(1..n)) % n;
                states[src].outbox.push_back(Outgoing {
                    dest: dst,
                    payload: rng.gen_range(0..4),
                    ghost: GhostId::Valid(i),
                });
                states[src].request = true;
            }
        }
        run_lockstep(graph, states, kind, seed, 200);
    }
}
