//! Property tests for the wire codec and the message-interning table.
//!
//! Three obligations from the issue: (1) frame roundtrip is lossless,
//! (2) truncated/garbage input is rejected without panic, (3)
//! `MessageTable` id assignments are stable under interleaved interning
//! (an id handed out is never remapped, whatever else is interned).

use proptest::prelude::*;
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::wire::{
    decode_body, encode_frame, ClientStamp, FrameReader, WireError, WireFrame, WireMessage,
    MAX_FRAME_LEN,
};
use ssmfp_core::MessageTable;

fn arb_ghost() -> impl Strategy<Value = GhostId> {
    prop_oneof![
        any::<u64>().prop_map(GhostId::Valid),
        any::<u64>().prop_map(GhostId::Invalid),
    ]
}

fn arb_stamp() -> impl Strategy<Value = ClientStamp> {
    // The NONE sentinel, tiny ids, and arbitrary ids all ride the same
    // 12 fixed bytes — the codec must not special-case any of them.
    prop_oneof![
        Just(ClientStamp::NONE),
        (any::<u64>(), any::<u32>()).prop_map(|(client, seq)| ClientStamp { client, seq }),
    ]
}

fn arb_msg() -> impl Strategy<Value = WireMessage> {
    (any::<u64>(), any::<u8>(), arb_ghost(), arb_stamp()).prop_map(
        |(payload, color, ghost, stamp)| WireMessage {
            payload,
            color,
            ghost,
            stamp,
        },
    )
}

fn arb_frame() -> impl Strategy<Value = WireFrame> {
    prop_oneof![
        (any::<u16>(), arb_msg(), any::<u64>()).prop_map(|(d, msg, nonce)| WireFrame::Offer {
            d,
            msg,
            nonce
        }),
        (any::<u16>(), arb_msg(), any::<u64>()).prop_map(|(d, msg, nonce)| WireFrame::Accept {
            d,
            msg,
            nonce
        }),
        (any::<u16>(), arb_msg(), any::<u64>()).prop_map(|(d, msg, nonce)| WireFrame::Confirm {
            d,
            msg,
            nonce
        }),
        (any::<u16>(), arb_msg(), any::<u64>()).prop_map(|(d, msg, nonce)| WireFrame::Deny {
            d,
            msg,
            nonce
        }),
        (any::<u16>(), any::<u32>()).prop_map(|(d, dist)| WireFrame::Dv { d, dist }),
        (any::<u16>(), any::<u32>())
            .prop_map(|(node, incarnation)| WireFrame::Hello { node, incarnation }),
        (any::<u16>(), any::<u64>()).prop_map(|(node, clock)| WireFrame::Heartbeat { node, clock }),
    ]
}

proptest! {
    /// encode → decode is the identity, for every frame kind and any
    /// field values, including through an incremental reader fed the
    /// stream in arbitrary chunk sizes.
    #[test]
    fn roundtrip_lossless(frames in proptest::collection::vec(arb_frame(), 1..20),
                          chunk in 1usize..64) {
        let mut bytes = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in bytes.chunks(chunk) {
            reader.extend(piece);
            while let Some(f) = reader.next_frame().expect("clean stream must decode") {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// A truncated valid stream never errors — it parks waiting for the
    /// rest — and never yields a frame beyond the fully received prefix.
    #[test]
    fn truncation_parks_without_error(frame in arb_frame(), cut_back in 1usize..8) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let cut = bytes.len().saturating_sub(cut_back).max(1);
        let mut reader = FrameReader::new();
        reader.extend(&bytes[..cut]);
        prop_assert_eq!(reader.next_frame(), Ok(None));
        reader.extend(&bytes[cut..]);
        prop_assert_eq!(reader.next_frame(), Ok(Some(frame)));
    }

    /// Arbitrary garbage never panics the decoder: every outcome is a
    /// clean `Ok`/`Err`, and an oversized length prefix is refused
    /// before any allocation proportional to it.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        // Drain until the stream errors or parks; both are acceptable,
        // panicking or looping forever is not.
        for _ in 0..bytes.len() + 1 {
            match reader.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        // Direct body decoding is total too.
        let _ = decode_body(&bytes);
    }

    /// Bit-flipping a valid frame's tag or length never panics, and a
    /// corrupted tag byte is either another valid tag or a structural
    /// rejection.
    #[test]
    fn flipped_bytes_rejected_cleanly(frame in arb_frame(), at in 0usize..8, bit in 0u8..8) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        match reader.next_frame() {
            Ok(_) => {}
            Err(WireError::OversizedFrame(len)) => prop_assert!(len > MAX_FRAME_LEN),
            Err(_) => {}
        }
    }

    /// Interleaved interning never remaps an id: whatever mix of new and
    /// repeated messages two logical "writers" intern, every id observed
    /// earlier still resolves to the same message afterwards — the
    /// append-only guarantee cross-version readers rely on.
    #[test]
    fn message_table_ids_stable_under_interleaving(
        script in proptest::collection::vec((any::<bool>(), 0u64..40, 0u8..4), 1..200)
    ) {
        let mut table = MessageTable::new();
        let mut observed: Vec<(u32, Message)> = Vec::new();
        for (writer_b, payload, color) in script {
            // Two interleaved writers with overlapping message pools.
            let m = Message {
                payload: if writer_b { payload } else { payload / 2 },
                last_hop: usize::from(writer_b),
                color: Color(color),
                ghost: GhostId::Valid(payload % 7),
            };
            let id = table.intern(m);
            prop_assert_eq!(table.resolve(id), m);
            // Every previously issued id still resolves identically.
            for &(old_id, old_m) in &observed {
                prop_assert_eq!(table.resolve(old_id), old_m);
            }
            observed.push((id, m));
        }
        // Ids are dense: the table's length equals the distinct count.
        let distinct: std::collections::HashSet<Message> =
            observed.iter().map(|&(_, m)| m).collect();
        prop_assert_eq!(table.len(), distinct.len());
    }
}
