//! Property tests tying the *declared* rule footprints (what `ssmfp-lint`
//! analyzes statically and the checker's partial-order reduction trusts)
//! to *observed* behaviour: on random small topologies and randomized
//! configurations, every enabled action executed under an instrumented
//! [`TrackedView`] must read only processors its declaration names, and
//! the pre/post state diff must stay inside the declared write set.
//!
//! The final test is the dynamic twin of the lint's
//! `corrupted_ownership_is_caught`: the same deliberately corrupted R2
//! declaration that the static analyzer rejects is also caught at run
//! time by the footprint assertion the engine applies in debug builds.

use proptest::prelude::*;
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::rules::enabled_rules_with;
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{guards_can_overlap, rule_footprint, Rule, SsmfpProtocol};
use ssmfp_kernel::footprint::{check_reads_within, check_writes_within};
use ssmfp_kernel::{Access, Locus, Protocol, TrackedView};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph};

/// Randomizes the full forwarding state of every node within the domains
/// (same generator as `prop_rules.rs`).
fn randomize(graph: &Graph, seed: u64, fill: f64, with_requests: bool) -> Vec<NodeState> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n = graph.n();
    let delta = graph.max_degree() as u8;
    corruption::corrupt(graph, CorruptionKind::RandomGarbage, seed)
        .into_iter()
        .enumerate()
        .map(|(p, routing)| {
            let mut s = NodeState::clean(n, routing);
            let neighbors = graph.neighbors(p);
            for d in 0..n {
                for is_e in [false, true] {
                    if rng.gen_bool(fill) {
                        let last_hop = if neighbors.is_empty() || rng.gen_bool(0.3) {
                            p
                        } else {
                            neighbors[rng.gen_range(0..neighbors.len())]
                        };
                        let m = Message {
                            payload: rng.gen_range(0..4),
                            last_hop,
                            color: Color(rng.gen_range(0..=delta)),
                            ghost: GhostId::Invalid(rng.gen()),
                        };
                        if is_e {
                            s.slots[d].buf_e = Some(m);
                        } else {
                            s.slots[d].buf_r = Some(m);
                        }
                    }
                }
                s.slots[d].choice_ptr = rng.gen_range(0..=neighbors.len());
            }
            if with_requests && rng.gen_bool(0.5) {
                s.outbox.push_back(Outgoing {
                    dest: rng.gen_range(0..n),
                    payload: rng.gen_range(0..4),
                    ghost: GhostId::Valid(p as u64),
                });
                s.request = true;
            }
            s
        })
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3usize..7).prop_map(gen::ring),
        (2usize..7).prop_map(gen::line),
        (3usize..7).prop_map(gen::star),
        ((4usize..8), (0usize..4), any::<u64>())
            .prop_map(|(n, e, s)| gen::random_connected(n, e, s)),
    ]
}

/// Executes every enabled action at every processor through a
/// `TrackedView` and checks observed reads/writes against the declaration.
fn check_all_enabled(
    graph: &Graph,
    states: &[NodeState],
    proto: &SsmfpProtocol,
) -> Result<(), String> {
    for p in 0..graph.n() {
        let tracked = TrackedView::new(graph, states, p);
        let mut actions = Vec::new();
        proto.enabled_actions(&tracked.view(), &mut actions);
        for &action in &actions {
            tracked.clear();
            let mut events = Vec::new();
            let post = proto.execute(&tracked.view(), action, &mut events);
            let declared = proto.footprint(action);
            let label = proto.describe(action);
            check_reads_within(&tracked.reads(), &declared, p, graph.neighbors(p))
                .map_err(|r| format!("{label} at {p}: undeclared read of processor {r}"))?;
            let observed = proto
                .observe_writes(&states[p], &post)
                .expect("SSMFP declares observable writes");
            check_writes_within(&observed, &declared)
                .map_err(|a| format!("{label} at {p}: undeclared write {a:?}"))?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Observed footprints ⊆ declared footprints, with the paper's
    /// priority composition (A-reads attached to forwarding actions).
    #[test]
    fn observed_within_declared_with_priority(
        graph in arb_graph(),
        seed in any::<u64>(),
        fill in 0.0f64..1.0,
    ) {
        let states = randomize(&graph, seed, fill, true);
        let proto = SsmfpProtocol::new(graph.n(), graph.max_degree());
        if let Err(e) = check_all_enabled(&graph, &states, &proto) {
            prop_assert!(false, "{e}");
        }
    }

    /// Same, for the ablation composition without routing priority (the
    /// declarations drop the A-coupling reads, so this pins that the
    /// *narrower* declaration is still sound for the rules themselves).
    #[test]
    fn observed_within_declared_without_priority(
        graph in arb_graph(),
        seed in any::<u64>(),
        fill in 0.0f64..1.0,
    ) {
        let states = randomize(&graph, seed, fill, true);
        let proto = SsmfpProtocol::new(graph.n(), graph.max_degree()).without_routing_priority();
        if let Err(e) = check_all_enabled(&graph, &states, &proto) {
            prop_assert!(false, "{e}");
        }
    }

    /// Every pair of rules co-enabled at the same (processor, destination)
    /// in a reachable-or-not configuration is a pair the static guard
    /// shapes admit: the lint's overlap matrix over-approximates reality.
    #[test]
    fn co_enabled_pairs_within_static_overlap(
        graph in arb_graph(),
        seed in any::<u64>(),
        fill in 0.0f64..1.0,
    ) {
        let states = randomize(&graph, seed, fill, true);
        for p in 0..graph.n() {
            let tracked = TrackedView::new(&graph, &states, p);
            for d in 0..graph.n() {
                let mut rules = Vec::new();
                enabled_rules_with(
                    &tracked.view(),
                    d,
                    ssmfp_core::ChoiceStrategy::RotationQueue,
                    &mut rules,
                );
                for (i, &a) in rules.iter().enumerate() {
                    for &b in &rules[i + 1..] {
                        prop_assert!(
                            guards_can_overlap(a, b),
                            "rules {a:?},{b:?} co-enabled at p={p} d={d} \
                             but statically declared exclusive"
                        );
                    }
                }
            }
        }
    }
}

/// The acceptance-criterion corruption, dynamic half: swap R2's `bufE`
/// write declaration for routing's `parent` (a variable SSMFP does not
/// own — the exact corruption `ssmfp-lint` rejects statically as an
/// `ownership` violation) and drive a real R2 execution through the
/// instrumented view. The observed write diff escapes the corrupted
/// declaration, so the debug-build engine assertion would fire.
#[test]
fn corrupted_declaration_is_caught_dynamically() {
    use ssmfp_routing::footprint::PARENT;

    let graph = gen::line(3);
    let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(3, r))
        .collect();
    states[0].outbox.push_back(Outgoing {
        dest: 2,
        payload: 7,
        ghost: GhostId::Valid(0),
    });
    states[0].request = true;
    let proto = SsmfpProtocol::new(3, graph.max_degree());

    // Drive to a configuration where R2 is enabled at node 0: fire R1.
    let r1 = ssmfp_core::SsmfpAction::Fwd(ssmfp_core::FwdAction {
        rule: Rule::R1,
        dest: 2,
    });
    let mut events = Vec::new();
    states[0] = {
        let tracked = TrackedView::new(&graph, &states, 0);
        proto.execute(&tracked.view(), r1, &mut events)
    };

    // R2 must now be enabled at node 0 for destination 2.
    let tracked = TrackedView::new(&graph, &states, 0);
    let mut actions = Vec::new();
    proto.enabled_actions(&tracked.view(), &mut actions);
    let r2 = ssmfp_core::SsmfpAction::Fwd(ssmfp_core::FwdAction {
        rule: Rule::R2,
        dest: 2,
    });
    assert!(actions.contains(&r2), "R2 should be enabled: {actions:?}");

    tracked.clear();
    let mut events = Vec::new();
    let post = proto.execute(&tracked.view(), r2, &mut events);
    let observed = proto.observe_writes(&states[0], &post).unwrap();

    // Honest declaration: clean.
    let honest = proto.footprint(r2);
    assert!(check_writes_within(&observed, &honest).is_ok());
    assert!(check_reads_within(&tracked.reads(), &honest, 0, graph.neighbors(0)).is_ok());

    // Corrupted declaration (bufE write → A's parent): the observed
    // bufE write is no longer covered — the assertion catches it.
    let mut corrupted = rule_footprint(Rule::R2, 2);
    for w in corrupted.writes.iter_mut() {
        if w.var.name == "bufE" {
            *w = Access::me(PARENT, 2);
        }
    }
    let err = check_writes_within(&observed, &corrupted);
    assert!(
        matches!(err, Err(a) if a.var.name == "bufE"),
        "corrupted declaration must be caught: {err:?}"
    );

    // Read-side corruption: strip the Neighbors accesses (R2's re-coloring
    // reads the neighbours' reception buffers) — also caught.
    let mut no_neighbor_reads = rule_footprint(Rule::R2, 2);
    no_neighbor_reads
        .reads
        .retain(|a| a.locus != Locus::Neighbors);
    assert!(
        check_reads_within(&tracked.reads(), &no_neighbor_reads, 0, graph.neighbors(0)).is_err(),
        "undeclared neighbour read must be caught"
    );
}
