//! Property tests for the packed state codec: the flat word encoding must
//! be lossless and its fingerprints must agree with the deep `Hash` over
//! *randomized* configurations — arbitrary buffer contents (including
//! invalid ghosts), corrupted routing tables, waiting outboxes, rotated
//! choice pointers, and populated `waits` counters.

use proptest::prelude::*;
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{node_fingerprint, MessageTable, StateCodec};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph};

/// Randomizes every codec-visible variable of every node within its
/// domain: garbage routing tables, random buffer occupancy with invalid
/// ghosts, valid-ghost outbox entries, choice pointers, wait counters,
/// request bits and destination cursors.
fn randomize(graph: &Graph, seed: u64, fill: f64) -> Vec<NodeState> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n = graph.n();
    let delta = graph.max_degree() as u8;
    corruption::corrupt(graph, CorruptionKind::RandomGarbage, seed)
        .into_iter()
        .enumerate()
        .map(|(p, routing)| {
            let mut s = NodeState::clean(n, routing);
            let neighbors = graph.neighbors(p);
            for d in 0..n {
                for is_e in [false, true] {
                    if rng.gen_bool(fill) {
                        let last_hop = if neighbors.is_empty() || rng.gen_bool(0.3) {
                            p
                        } else {
                            neighbors[rng.gen_range(0..neighbors.len())]
                        };
                        let ghost = if rng.gen_bool(0.5) {
                            GhostId::Invalid(rng.gen())
                        } else {
                            GhostId::Valid(rng.gen())
                        };
                        let m = Message {
                            payload: rng.gen_range(0..4),
                            last_hop,
                            color: Color(rng.gen_range(0..=delta)),
                            ghost,
                        };
                        if is_e {
                            s.slots[d].buf_e = Some(m);
                        } else {
                            s.slots[d].buf_r = Some(m);
                        }
                    }
                }
                s.slots[d].choice_ptr = rng.gen_range(0..=neighbors.len());
                if rng.gen_bool(0.2) {
                    let w: Vec<u32> = (0..=neighbors.len())
                        .map(|_| rng.gen_range(0..64))
                        .collect();
                    s.slots[d].waits = Some(w.into_boxed_slice());
                }
            }
            for _ in 0..rng.gen_range(0..3) {
                s.outbox.push_back(Outgoing {
                    dest: rng.gen_range(0..n),
                    payload: rng.gen_range(0..4),
                    ghost: GhostId::Valid(rng.gen()),
                });
                s.request = true;
            }
            s.dest_cursor = rng.gen_range(0..n);
            s
        })
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3usize..8).prop_map(gen::ring),
        (2usize..8).prop_map(gen::line),
        (3usize..8).prop_map(gen::star),
        ((2usize..4), (0usize..3)).prop_map(|(s, l)| gen::caterpillar(s, l)),
        ((4usize..9), (0usize..5), any::<u64>())
            .prop_map(|(n, e, s)| gen::random_connected(n, e, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Pack → unpack is the identity on every node, and the reported word
    /// consumption matches the words produced.
    #[test]
    fn node_roundtrip_is_lossless(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill);
        let codec = StateCodec::new(graph.n());
        let mut table = MessageTable::new();
        for node in &states {
            let mut words = Vec::new();
            codec.pack_node(node, &mut table, &mut words);
            let (back, used) = codec.unpack_node(&words, &table);
            prop_assert_eq!(used, words.len());
            prop_assert_eq!(&back, node);
        }
    }

    /// Pack → unpack over a whole configuration (concatenated node blocks
    /// sharing one message table) is the identity.
    #[test]
    fn config_roundtrip_is_lossless(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill);
        let codec = StateCodec::new(graph.n());
        let mut table = MessageTable::new();
        let mut words = Vec::new();
        codec.pack_config(&states, &mut table, &mut words);
        prop_assert_eq!(codec.unpack_config(&words, &table), states);
    }

    /// The fingerprint computed from packed words equals the deep
    /// `Hash`-based fingerprint of the original node — packed and raw
    /// visited-set entries can never disagree about state identity.
    #[test]
    fn packed_fingerprint_matches_deep_hash(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill);
        let codec = StateCodec::new(graph.n());
        let mut table = MessageTable::new();
        for (p, node) in states.iter().enumerate() {
            let mut words = Vec::new();
            codec.pack_node(node, &mut table, &mut words);
            prop_assert_eq!(
                codec.fingerprint(p, &words, &table),
                node_fingerprint(p, node),
                "p={}", p
            );
        }
    }

    /// Re-packing the same configuration against the same table produces
    /// identical words (interning is deterministic within a run), and the
    /// table only grows on first encounters.
    #[test]
    fn repacking_is_stable(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill);
        let codec = StateCodec::new(graph.n());
        let mut table = MessageTable::new();
        let mut first = Vec::new();
        codec.pack_config(&states, &mut table, &mut first);
        let interned = table.len();
        let mut second = Vec::new();
        codec.pack_config(&states, &mut table, &mut second);
        prop_assert_eq!(first, second);
        prop_assert_eq!(table.len(), interned);
    }
}
