//! Tests for the pluggable `choice_p(d)` strategies (the §4 future-work
//! ablation): both fair strategies preserve SP end-to-end; the unfair
//! greedy strategy starves the hub's own emission under sustained
//! competing traffic — demonstrating that the fairness of `choice_p(d)`
//! is load-bearing for SP's first property.

use ssmfp_core::choice::{choice_with, Choice, ChoiceStrategy};
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_core::{DaemonKind, Network, NetworkConfig};
use ssmfp_kernel::View;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::gen;

fn star_states(n: usize) -> (ssmfp_topology::Graph, Vec<NodeState>) {
    let g = gen::star(n);
    let states = corruption::corrupt(&g, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(n, r))
        .collect();
    (g, states)
}

fn msg(payload: u64, last_hop: usize, color: u8) -> Message {
    Message {
        payload,
        last_hop,
        color: Color(color),
        ghost: GhostId::Invalid(0),
    }
}

#[test]
fn greedy_always_picks_first_position() {
    let (g, mut states) = star_states(5);
    states[1].slots[4].buf_e = Some(msg(1, 1, 0));
    states[3].slots[4].buf_e = Some(msg(3, 3, 0));
    // Rotation pointer would favour 3; greedy ignores it.
    states[0].slots[4].choice_ptr = 2;
    let view = View::new(&g, &states, 0);
    assert_eq!(
        choice_with(&view, 4, ChoiceStrategy::GreedyFirst),
        Some(Choice {
            who: 1,
            position: 0
        })
    );
    assert_eq!(
        choice_with(&view, 4, ChoiceStrategy::RotationQueue),
        Some(Choice {
            who: 3,
            position: 2
        })
    );
}

#[test]
fn longest_waiting_prefers_higher_wait() {
    let (g, mut states) = star_states(5);
    states[1].slots[4].buf_e = Some(msg(1, 1, 0));
    states[3].slots[4].buf_e = Some(msg(3, 3, 0));
    states[0].slots[4].waits = Some(vec![0, 0, 5, 0, 0].into_boxed_slice()); // position 2 = node 3
    let view = View::new(&g, &states, 0);
    assert_eq!(
        choice_with(&view, 4, ChoiceStrategy::LongestWaiting),
        Some(Choice {
            who: 3,
            position: 2
        })
    );
}

#[test]
fn longest_waiting_ties_break_to_smallest_position() {
    let (g, mut states) = star_states(5);
    states[1].slots[4].buf_e = Some(msg(1, 1, 0));
    states[3].slots[4].buf_e = Some(msg(3, 3, 0));
    // No waits recorded: all zero, smallest position (node 1) wins.
    let view = View::new(&g, &states, 0);
    assert_eq!(
        choice_with(&view, 4, ChoiceStrategy::LongestWaiting),
        Some(Choice {
            who: 1,
            position: 0
        })
    );
}

#[test]
fn self_candidate_visible_to_all_strategies() {
    let (g, mut states) = star_states(4);
    states[0].outbox.push_back(Outgoing {
        dest: 2,
        payload: 9,
        ghost: GhostId::Valid(0),
    });
    states[0].request = true;
    let view = View::new(&g, &states, 0);
    for strategy in [
        ChoiceStrategy::RotationQueue,
        ChoiceStrategy::LongestWaiting,
        ChoiceStrategy::GreedyFirst,
    ] {
        let c = choice_with(&view, 2, strategy).expect("self candidate");
        assert_eq!(c.who, 0, "{strategy:?}");
        assert_eq!(c.position, g.degree(0), "{strategy:?}");
    }
}

/// Both fair strategies satisfy SP end-to-end from adversarial starts.
#[test]
fn fair_strategies_preserve_sp() {
    for strategy in [
        ChoiceStrategy::RotationQueue,
        ChoiceStrategy::LongestWaiting,
    ] {
        for seed in 0..4 {
            let config = NetworkConfig::adversarial(seed).with_choice_strategy(strategy);
            let mut net = Network::new(gen::ring(6), config);
            let mut ghosts = Vec::new();
            for s in 0..6 {
                ghosts.push(net.send(s, (s + 2) % 6, s as u64 % 8));
            }
            assert!(
                net.run_to_quiescence(20_000_000),
                "{strategy:?} seed {seed}: must drain"
            );
            for g in &ghosts {
                assert_eq!(net.deliveries_of(*g), 1, "{strategy:?} seed {seed}");
            }
            assert!(net.check_sp().is_empty(), "{strategy:?} seed {seed}");
        }
    }
}

/// The unfair greedy strategy lets sustained neighbour traffic starve the
/// hub's own generation: the hub's first emission waits for the entire
/// competing backlog, while fair strategies bound the wait by Δ services.
#[test]
fn greedy_starves_the_hub_under_sustained_traffic() {
    let n = 5;
    let backlog = 30; // messages per leaf, all routed through the hub
    let measure = |strategy: ChoiceStrategy| -> u64 {
        let config = NetworkConfig::clean()
            .with_daemon(DaemonKind::RoundRobin)
            .with_choice_strategy(strategy);
        let mut net = Network::new(gen::star(n), config);
        // Leaves 1..3 flood leaf 4 through the hub.
        for leaf in 1..4 {
            for i in 0..backlog {
                net.send(leaf, 4, (leaf as u64 + i) % 8);
            }
        }
        // Prime the pipelines so the hub faces sustained competition
        // before it raises its own request.
        for _ in 0..60 {
            net.pump();
        }
        let send_round = net.rounds();
        // The hub wants to emit one message of its own to leaf 4.
        let hub_msg = net.send(0, 4, 7);
        net.run_to_quiescence(10_000_000);
        net.ledger()
            .generation_of(hub_msg)
            .expect("eventually generated (finite backlog)")
            .round
            - send_round
    };
    let fair = measure(ChoiceStrategy::RotationQueue);
    let greedy = measure(ChoiceStrategy::GreedyFirst);
    assert!(
        greedy > 3 * fair,
        "greedy should starve the hub: fair={fair}, greedy={greedy}"
    );
}
