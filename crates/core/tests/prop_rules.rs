//! Property tests over the rule guards: structural mutual-exclusion and
//! soundness invariants evaluated on *randomized* local configurations
//! (arbitrary buffer contents within the variable domains, arbitrary
//! routing entries, arbitrary choice pointers).

use proptest::prelude::*;
use ssmfp_core::choice::choice;
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::rules::{
    enabled_rules, guard_r1, guard_r2, guard_r3, guard_r4, guard_r5, guard_r6, Rule,
};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_kernel::View;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph};

/// Randomizes the full forwarding state of every node within the domains.
fn randomize(graph: &Graph, seed: u64, fill: f64, with_requests: bool) -> Vec<NodeState> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n = graph.n();
    let delta = graph.max_degree() as u8;
    corruption::corrupt(graph, CorruptionKind::RandomGarbage, seed)
        .into_iter()
        .enumerate()
        .map(|(p, routing)| {
            let mut s = NodeState::clean(n, routing);
            let neighbors = graph.neighbors(p);
            for d in 0..n {
                for is_e in [false, true] {
                    if rng.gen_bool(fill) {
                        let last_hop = if neighbors.is_empty() || rng.gen_bool(0.3) {
                            p
                        } else {
                            neighbors[rng.gen_range(0..neighbors.len())]
                        };
                        let m = Message {
                            payload: rng.gen_range(0..4),
                            last_hop,
                            color: Color(rng.gen_range(0..=delta)),
                            ghost: GhostId::Invalid(rng.gen()),
                        };
                        if is_e {
                            s.slots[d].buf_e = Some(m);
                        } else {
                            s.slots[d].buf_r = Some(m);
                        }
                    }
                }
                s.slots[d].choice_ptr = rng.gen_range(0..=neighbors.len());
            }
            if with_requests && rng.gen_bool(0.5) {
                s.outbox.push_back(Outgoing {
                    dest: rng.gen_range(0..n),
                    payload: rng.gen_range(0..4),
                    ghost: GhostId::Valid(p as u64),
                });
                s.request = true;
            }
            s
        })
        .collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (3usize..8).prop_map(gen::ring),
        (2usize..8).prop_map(gen::line),
        (3usize..8).prop_map(gen::star),
        ((4usize..9), (0usize..5), any::<u64>())
            .prop_map(|(n, e, s)| gen::random_connected(n, e, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// R1 and R3 are mutually exclusive in every configuration (they share
    /// the empty-bufR precondition and the single-valued choice).
    #[test]
    fn r1_r3_exclusive_everywhere(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill, true);
        for p in 0..graph.n() {
            let view = View::new(&graph, &states, p);
            for d in 0..graph.n() {
                prop_assert!(!(guard_r1(&view, d) && guard_r3(&view, d)),
                    "p={p} d={d}");
            }
        }
    }

    /// R2 and R5 are mutually exclusive (the source copy is either gone or
    /// alive, never both).
    #[test]
    fn r2_r5_exclusive_everywhere(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill, false);
        for p in 0..graph.n() {
            let view = View::new(&graph, &states, p);
            for d in 0..graph.n() {
                prop_assert!(!(guard_r2(&view, d) && guard_r5(&view, d)),
                    "p={p} d={d}");
            }
        }
    }

    /// R4 and R6 are mutually exclusive (R4 requires p ≠ d, R6 requires
    /// p = d), and R6 only ever appears for the own-destination instance.
    #[test]
    fn r4_r6_partition_by_destination(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill, false);
        for p in 0..graph.n() {
            let view = View::new(&graph, &states, p);
            for d in 0..graph.n() {
                prop_assert!(!(guard_r4(&view, d) && guard_r6(&view, d)));
                if guard_r6(&view, d) {
                    prop_assert_eq!(d, p);
                }
            }
        }
    }

    /// Guards needing a message are never enabled on empty buffers, and
    /// `enabled_rules` agrees with the individual guards.
    #[test]
    fn enumeration_matches_guards(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill, true);
        for p in 0..graph.n() {
            let view = View::new(&graph, &states, p);
            for d in 0..graph.n() {
                let mut rules = Vec::new();
                enabled_rules(&view, d, &mut rules);
                for rule in [Rule::R1, Rule::R2, Rule::R3, Rule::R4, Rule::R5, Rule::R6] {
                    let individually = match rule {
                        Rule::R1 => guard_r1(&view, d),
                        Rule::R2 => guard_r2(&view, d),
                        Rule::R3 => guard_r3(&view, d),
                        Rule::R4 => guard_r4(&view, d),
                        Rule::R5 => guard_r5(&view, d),
                        Rule::R6 => guard_r6(&view, d),
                    };
                    prop_assert_eq!(rules.contains(&rule), individually,
                        "p={} d={} {:?}", p, d, rule);
                }
                // Buffer preconditions.
                let slot = &states[p].slots[d];
                if slot.buf_r.is_none() {
                    prop_assert!(!rules.contains(&Rule::R2));
                    prop_assert!(!rules.contains(&Rule::R5));
                }
                if slot.buf_e.is_none() {
                    prop_assert!(!rules.contains(&Rule::R4));
                    prop_assert!(!rules.contains(&Rule::R6));
                }
                if slot.buf_r.is_some() {
                    prop_assert!(!rules.contains(&Rule::R1));
                    prop_assert!(!rules.contains(&Rule::R3));
                }
            }
        }
    }

    /// `choice_p(d)` always returns an element of `N_p ∪ {p}` whose
    /// predicate holds, or `None` when no candidate satisfies it.
    #[test]
    fn choice_is_sound(graph in arb_graph(), seed in any::<u64>(), fill in 0.0f64..1.0) {
        let states = randomize(&graph, seed, fill, true);
        for p in 0..graph.n() {
            let view = View::new(&graph, &states, p);
            for d in 0..graph.n() {
                if let Some(c) = choice(&view, d) {
                    let in_space = c.who == p || graph.has_edge(p, c.who);
                    prop_assert!(in_space, "choice outside N_p ∪ {{p}}");
                    if c.who == p {
                        prop_assert!(states[p].request);
                        prop_assert_eq!(
                            states[p].outbox.front().map(|o| o.dest), Some(d));
                    } else {
                        prop_assert!(states[c.who].slots[d].buf_e.is_some());
                        prop_assert_eq!(states[c.who].routing.parent[d], p);
                    }
                }
            }
        }
    }
}

/// Executing any enabled rule never panics and only mutates the acting
/// processor's state (write-locality of the model).
#[test]
fn execution_is_local_and_total() {
    use ssmfp_core::rules::execute_rule;
    let graph = gen::random_connected(7, 4, 9);
    for seed in 0..30 {
        let states = randomize(&graph, seed, 0.6, true);
        for p in 0..graph.n() {
            let view = View::new(&graph, &states, p);
            for d in 0..graph.n() {
                let mut rules = Vec::new();
                enabled_rules(&view, d, &mut rules);
                for rule in rules {
                    let mut events = Vec::new();
                    let next = execute_rule(&view, d, rule, graph.max_degree(), &mut events);
                    // Only slot `d` / request / outbox may differ; routing
                    // is untouched by forwarding rules.
                    assert_eq!(next.routing, states[p].routing, "{rule:?} touched routing");
                    for other in 0..graph.n() {
                        if other != d {
                            assert_eq!(
                                next.slots[other], states[p].slots[other],
                                "{rule:?} touched foreign slot {other}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Unique-choice determinism: equal configurations give equal choices.
#[test]
fn choice_is_deterministic() {
    let graph = gen::star(6);
    let states = randomize(&graph, 4, 0.7, true);
    for p in 0..graph.n() {
        let v1 = View::new(&graph, &states, p);
        let v2 = View::new(&graph, &states, p);
        for d in 0..graph.n() {
            assert_eq!(choice(&v1, d), choice(&v2, d));
        }
    }
}

/// Helper sanity: randomize respects the variable domains.
#[test]
fn randomize_respects_domains() {
    let graph = gen::random_connected(8, 5, 2);
    let delta = graph.max_degree() as u8;
    let states = randomize(&graph, 11, 0.8, true);
    for (p, s) in states.iter().enumerate() {
        for slot in &s.slots {
            for m in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                assert!(m.color.0 <= delta);
                assert!(m.last_hop == p || graph.has_edge(p, m.last_hop));
            }
            assert!(slot.choice_ptr <= graph.degree(p));
        }
    }
}
