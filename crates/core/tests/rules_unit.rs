//! Guard-level unit tests for rules R1–R6: each guard's positive case and
//! every one of its conjuncts' negative cases, plus the statements'
//! effects, on hand-built configurations.

use ssmfp_core::choice::choice;
use ssmfp_core::message::{Color, GhostId, Message};
use ssmfp_core::rules::{
    enabled_rules, execute_rule, guard_r1, guard_r2, guard_r3, guard_r4, guard_r5, guard_r6, Rule,
};
use ssmfp_core::state::{NodeState, Outgoing};
use ssmfp_kernel::View;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};

/// A line 0—1—2—3 with correct tables and clean buffers.
fn setup() -> (Graph, Vec<NodeState>) {
    let g = gen::line(4);
    let states = corruption::corrupt(&g, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(4, r))
        .collect();
    (g, states)
}

fn msg(payload: u64, last_hop: NodeId, color: u8) -> Message {
    Message {
        payload,
        last_hop,
        color: Color(color),
        ghost: GhostId::Invalid(0),
    }
}

fn outgoing(dest: NodeId, payload: u64) -> Outgoing {
    Outgoing {
        dest,
        payload,
        ghost: GhostId::Valid(0),
    }
}

// ---------------- R1: generation ----------------

#[test]
fn r1_fires_with_request_and_empty_buffer() {
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    states[1].request = true;
    assert!(guard_r1(&View::new(&g, &states, 1), 3));
}

#[test]
fn r1_requires_request_bit() {
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    // request stays false
    assert!(!guard_r1(&View::new(&g, &states, 1), 3));
}

#[test]
fn r1_requires_matching_destination() {
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    states[1].request = true;
    assert!(
        !guard_r1(&View::new(&g, &states, 1), 2),
        "wrong destination"
    );
}

#[test]
fn r1_requires_empty_reception_buffer() {
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    states[1].request = true;
    states[1].slots[3].buf_r = Some(msg(5, 1, 0));
    assert!(!guard_r1(&View::new(&g, &states, 1), 3));
}

#[test]
fn r1_requires_choice_to_select_self() {
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    states[1].request = true;
    // A competing neighbour: node 0 has a message for 3 routed through 1,
    // and the rotation pointer favours it (position 0 = neighbour 0).
    states[0].slots[3].buf_e = Some(msg(7, 0, 1));
    states[1].slots[3].choice_ptr = 0;
    let view = View::new(&g, &states, 1);
    assert_eq!(choice(&view, 3).unwrap().who, 0);
    assert!(!guard_r1(&view, 3), "choice points at the neighbour");
}

#[test]
fn r1_statement_creates_color0_message_and_clears_request() {
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    states[1].request = true;
    let view = View::new(&g, &states, 1);
    let mut events = Vec::new();
    let next = execute_rule(&view, 3, Rule::R1, g.max_degree(), &mut events);
    let m = next.slots[3].buf_r.expect("generated");
    assert_eq!(m.payload, 9);
    assert_eq!(m.last_hop, 1);
    assert_eq!(m.color, Color(0));
    assert!(m.ghost.is_valid());
    assert!(!next.request);
    assert!(next.outbox.is_empty());
    assert_eq!(events.len(), 1);
}

// ---------------- R2: internal forwarding ----------------

#[test]
fn r2_fires_for_locally_generated_message() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(9, 1, 0)); // q = p
    assert!(guard_r2(&View::new(&g, &states, 1), 3));
}

#[test]
fn r2_requires_empty_emission_buffer() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(9, 1, 0));
    states[1].slots[3].buf_e = Some(msg(4, 1, 1));
    assert!(!guard_r2(&View::new(&g, &states, 1), 3));
}

#[test]
fn r2_blocked_while_source_copy_alive() {
    let (g, mut states) = setup();
    // Message forwarded from 0, and 0's emission buffer still holds it.
    states[1].slots[3].buf_r = Some(msg(9, 0, 2));
    states[0].slots[3].buf_e = Some(msg(9, 0, 2));
    assert!(
        !guard_r2(&View::new(&g, &states, 1), 3),
        "must wait for R4 at the source"
    );
    // Once the source erases, R2 unblocks.
    states[0].slots[3].buf_e = None;
    assert!(guard_r2(&View::new(&g, &states, 1), 3));
}

#[test]
fn r2_source_match_is_payload_and_color_only() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(9, 0, 2));
    // Same payload, different color in 0's emission buffer: not the same
    // message — R2 may proceed.
    states[0].slots[3].buf_e = Some(msg(9, 0, 3));
    assert!(guard_r2(&View::new(&g, &states, 1), 3));
}

#[test]
fn r2_statement_recolors_and_sets_last_hop() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(9, 1, 0));
    // Neighbour 2's reception buffer holds color 0: color_1(3) must skip it.
    states[2].slots[3].buf_r = Some(msg(4, 2, 0));
    let view = View::new(&g, &states, 1);
    let mut events = Vec::new();
    let next = execute_rule(&view, 3, Rule::R2, g.max_degree(), &mut events);
    assert!(next.slots[3].buf_r.is_none());
    let e = next.slots[3].buf_e.expect("moved");
    assert_eq!(e.payload, 9);
    assert_eq!(e.last_hop, 1);
    assert_eq!(e.color, Color(1), "color 0 occupied at a neighbour");
}

// ---------------- R3: forwarding between processors ----------------

#[test]
fn r3_fires_when_chosen_neighbor_has_message() {
    let (g, mut states) = setup();
    states[0].slots[3].buf_e = Some(msg(7, 0, 1)); // 0 routes to 3 via 1
    assert!(guard_r3(&View::new(&g, &states, 1), 3));
}

#[test]
fn r3_requires_empty_reception_buffer() {
    let (g, mut states) = setup();
    states[0].slots[3].buf_e = Some(msg(7, 0, 1));
    states[1].slots[3].buf_r = Some(msg(2, 1, 0));
    assert!(!guard_r3(&View::new(&g, &states, 1), 3));
}

#[test]
fn r3_requires_senders_table_to_point_here() {
    let (g, mut states) = setup();
    states[0].slots[3].buf_e = Some(msg(7, 0, 1));
    states[0].routing.parent[3] = 0; // corrupted: points at itself
    assert!(!guard_r3(&View::new(&g, &states, 1), 3));
}

#[test]
fn r3_statement_copies_with_new_last_hop_same_color() {
    let (g, mut states) = setup();
    states[0].slots[3].buf_e = Some(msg(7, 0, 1));
    let view = View::new(&g, &states, 1);
    let mut events = Vec::new();
    let next = execute_rule(&view, 3, Rule::R3, g.max_degree(), &mut events);
    let m = next.slots[3].buf_r.expect("copied");
    assert_eq!(m.payload, 7);
    assert_eq!(m.last_hop, 0, "last hop updated to the sender");
    assert_eq!(m.color, Color(1), "color preserved across the hop");
}

#[test]
fn r3_advances_the_choice_pointer() {
    let (g, mut states) = setup();
    states[0].slots[3].buf_e = Some(msg(7, 0, 1));
    states[1].slots[3].choice_ptr = 0;
    let view = View::new(&g, &states, 1);
    let pos = choice(&view, 3).unwrap().position;
    let next = execute_rule(&view, 3, Rule::R3, g.max_degree(), &mut Vec::new());
    assert_eq!(next.slots[3].choice_ptr, (pos + 1) % (g.degree(1) + 1));
}

// ---------------- R4: erasure after forwarding ----------------

#[test]
fn r4_fires_when_exactly_one_copy_at_next_hop() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_e = Some(msg(7, 0, 1));
    states[2].slots[3].buf_r = Some(msg(7, 1, 1)); // copy, last hop = 1
    assert!(guard_r4(&View::new(&g, &states, 1), 3));
}

#[test]
fn r4_disabled_at_the_destination() {
    let (g, mut states) = setup();
    states[3].slots[3].buf_e = Some(msg(7, 2, 1));
    assert!(!guard_r4(&View::new(&g, &states, 3), 3), "p = d uses R6");
}

#[test]
fn r4_requires_exact_triplet_at_next_hop() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_e = Some(msg(7, 0, 1));
    // Copy with wrong color: no certified copy.
    states[2].slots[3].buf_r = Some(msg(7, 1, 2));
    assert!(!guard_r4(&View::new(&g, &states, 1), 3));
    // Copy with wrong last hop.
    states[2].slots[3].buf_r = Some(msg(7, 3, 1));
    assert!(!guard_r4(&View::new(&g, &states, 1), 3));
}

#[test]
fn r4_blocked_while_a_stale_copy_sits_elsewhere() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_e = Some(msg(7, 1, 1));
    states[2].slots[3].buf_r = Some(msg(7, 1, 1)); // copy at next hop
    states[0].slots[3].buf_r = Some(msg(7, 1, 1)); // stale duplicate at 0
    assert!(
        !guard_r4(&View::new(&g, &states, 1), 3),
        "the ∀-clause must see the duplicate"
    );
    // R5 at node 0 is what clears it.
    assert!(guard_r5(&View::new(&g, &states, 0), 3));
}

// ---------------- R5: duplicate erasure ----------------

#[test]
fn r5_fires_when_source_rerouted() {
    let (g, mut states) = setup();
    // 1 holds a copy from 2, 2 still has the message, but 2's table no
    // longer points at 1.
    states[1].slots[3].buf_r = Some(msg(7, 2, 1));
    states[2].slots[3].buf_e = Some(msg(7, 2, 1));
    states[2].routing.parent[3] = 3; // rerouted straight to 3
    assert!(guard_r5(&View::new(&g, &states, 1), 3));
}

#[test]
fn r5_disabled_when_source_still_points_here() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(7, 2, 1));
    states[2].slots[3].buf_e = Some(msg(7, 2, 1));
    states[2].routing.parent[3] = 1; // still the legitimate next hop
    assert!(!guard_r5(&View::new(&g, &states, 1), 3));
}

#[test]
fn r5_disabled_for_locally_generated_messages() {
    // The documented deviation: q = p never triggers R5, protecting a
    // fresh generation from a payload/color collision with an in-flight
    // predecessor (Lemma 4).
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(9, 1, 0)); // generated here
    states[1].slots[3].buf_e = Some(msg(9, 1, 0)); // same payload+color!
    assert!(!guard_r5(&View::new(&g, &states, 1), 3));
}

#[test]
fn r5_match_ignores_source_last_hop() {
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(7, 2, 1));
    states[2].slots[3].buf_e = Some(msg(7, 3, 1)); // (m, q', c) pattern
    states[2].routing.parent[3] = 3;
    assert!(guard_r5(&View::new(&g, &states, 1), 3));
}

// ---------------- R6: consumption ----------------

#[test]
fn r6_fires_only_for_own_destination_instance() {
    let (g, mut states) = setup();
    states[3].slots[3].buf_e = Some(msg(7, 2, 1));
    assert!(guard_r6(&View::new(&g, &states, 3), 3));
    assert!(!guard_r6(&View::new(&g, &states, 3), 2));
    // An occupied bufE for a FOREIGN destination is not consumable.
    states[2].slots[3].buf_e = Some(msg(5, 2, 0));
    assert!(!guard_r6(&View::new(&g, &states, 2), 3));
}

#[test]
fn r6_statement_delivers_and_empties() {
    let (g, mut states) = setup();
    states[3].slots[3].buf_e = Some(msg(7, 2, 1));
    let view = View::new(&g, &states, 3);
    let mut events = Vec::new();
    let next = execute_rule(&view, 3, Rule::R6, g.max_degree(), &mut events);
    assert!(next.slots[3].buf_e.is_none());
    assert_eq!(events.len(), 1);
}

// ---------------- mutual exclusion & enumeration ----------------

#[test]
fn r1_and_r3_are_mutually_exclusive() {
    // Both need bufR empty and a choice; the choice is single-valued, so
    // they can never be enabled together for the same (p, d).
    let (g, mut states) = setup();
    states[1].outbox.push_back(outgoing(3, 9));
    states[1].request = true;
    states[0].slots[3].buf_e = Some(msg(7, 0, 1));
    for ptr in 0..=g.degree(1) {
        states[1].slots[3].choice_ptr = ptr;
        let view = View::new(&g, &states, 1);
        assert!(
            !(guard_r1(&view, 3) && guard_r3(&view, 3)),
            "ptr {ptr}: R1 and R3 both enabled"
        );
        let mut rules = Vec::new();
        enabled_rules(&view, 3, &mut rules);
        assert_eq!(rules.len(), 1, "exactly one of R1/R3: {rules:?}");
    }
}

#[test]
fn r2_and_r5_are_mutually_exclusive() {
    // R2 requires the source copy gone; R5 requires it alive.
    let (g, mut states) = setup();
    states[1].slots[3].buf_r = Some(msg(7, 2, 1));
    for (src_copy, rerouted) in [(true, true), (true, false), (false, true), (false, false)] {
        states[2].slots[3].buf_e = src_copy.then(|| msg(7, 2, 1));
        states[2].routing.parent[3] = if rerouted { 3 } else { 1 };
        let view = View::new(&g, &states, 1);
        assert!(
            !(guard_r2(&view, 3) && guard_r5(&view, 3)),
            "src_copy={src_copy} rerouted={rerouted}"
        );
    }
}

#[test]
fn enumeration_respects_eval_order() {
    // R4 (erase) and R3 (pull) can be enabled together; drain-first order
    // lists R4 before R3.
    let (g, mut states) = setup();
    states[1].slots[3].buf_e = Some(msg(7, 0, 1));
    states[2].slots[3].buf_r = Some(msg(7, 1, 1)); // R4 at 1 enabled
    states[0].slots[3].buf_e = Some(msg(4, 0, 2)); // R3 at 1 enabled too
    let view = View::new(&g, &states, 1);
    let mut rules = Vec::new();
    enabled_rules(&view, 3, &mut rules);
    assert_eq!(rules, vec![Rule::R4, Rule::R3]);
}
