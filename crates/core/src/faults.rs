//! Mid-execution transient faults.
//!
//! Snap-stabilization quantifies over *every* configuration, which the rest
//! of the harness only exercises through adversarial **initial** states.
//! This module closes the gap: a [`FaultPlan`] is a seeded, serializable
//! schedule of transient faults that strike *during* an execution, and a
//! [`FaultInjector`] is the kernel step-hook that applies them between
//! daemon selections. Every fault is constrained to the variable **domains**
//! of Algorithm 1 and of the routing layer `A` (colors in `{0..Δ}`, last
//! hops in `N_p ∪ {p}`, parents among link labels, distances in `{0..n}`,
//! choice pointers in `{0..deg(p)}`), so a faulted configuration is always
//! one the model itself could be started from — the paper's fault model.
//!
//! Determinism is the load-bearing property: each [`Fault`] carries its own
//! RNG seed, so applying it produces the same write whether it fires
//! through the hook, is force-applied by a scenario driver, or survives a
//! shrinking pass that deleted its neighbours. That is what makes
//! delta-debugging of failing plans (see `ssmfp-soak`) sound.
//!
//! Ghost identities and the delivery ledger are **not** in any fault's
//! write-set: faults may touch model variables only, never the
//! verification harness's instrumentation (`ssmfp-lint` enforces this
//! against the declared rule footprints).

use crate::message::{Color, GhostId, Message};
use crate::protocol::SsmfpProtocol;
use crate::state::NodeState;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_kernel::{StepHook, VarClass};
use ssmfp_topology::{Graph, NodeId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// High bit marking invalid ghost ids minted by fault injection, keeping
/// them disjoint from the initial configuration's garbage sequence.
const INJECTED_GHOST_BIT: u64 = 1 << 63;

/// Which of the two per-destination buffers a buffer fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufSel {
    /// The reception buffer `bufR_p(d)`.
    R,
    /// The emission buffer `bufE_p(d)`.
    E,
}

impl BufSel {
    /// Serialization label.
    pub fn label(self) -> &'static str {
        match self {
            BufSel::R => "R",
            BufSel::E => "E",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "R" => Ok(BufSel::R),
            "E" => Ok(BufSel::E),
            other => Err(format!("unknown buffer selector '{other}'")),
        }
    }
}

/// One kind of domain-legal transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Re-corrupts one routing-table entry: `dist_node(dest)` becomes a
    /// random value in `{0..n}` and `parent_node(dest)` a random link label.
    RoutingEntry {
        /// The faulted processor.
        node: NodeId,
        /// The corrupted destination entry.
        dest: NodeId,
    },
    /// Overwrites one buffer with a fresh domain-legal invalid message.
    BufferGarbage {
        /// The faulted processor.
        node: NodeId,
        /// The destination instance.
        dest: NodeId,
        /// Which buffer is overwritten.
        buf: BufSel,
    },
    /// Empties one buffer (the message it held vanishes).
    BufferClear {
        /// The faulted processor.
        node: NodeId,
        /// The destination instance.
        dest: NodeId,
        /// Which buffer is emptied.
        buf: BufSel,
    },
    /// Re-colors the message in one buffer (keeping its identity) — the
    /// hazard `color_p(d)` exists to make survivable.
    ColorFlip {
        /// The faulted processor.
        node: NodeId,
        /// The destination instance.
        dest: NodeId,
        /// Which buffer's occupant is re-colored.
        buf: BufSel,
    },
    /// Flips the `request_node` bit.
    RequestFlip {
        /// The faulted processor.
        node: NodeId,
    },
    /// Scrambles the `choice_node(dest)` rotation pointer (and wait
    /// counters, when the ablation strategy materialized them).
    ChoiceScramble {
        /// The faulted processor.
        node: NodeId,
        /// The destination instance.
        dest: NodeId,
    },
    /// Whole-node reset: every buffer emptied, every fairness pointer and
    /// routing entry randomized within its domain, `request` lowered. The
    /// higher-layer outbox survives (it is the application's, not the
    /// protocol's).
    NodeReset {
        /// The reset processor.
        node: NodeId,
    },
}

impl FaultKind {
    /// The faulted processor.
    pub fn node(self) -> NodeId {
        match self {
            FaultKind::RoutingEntry { node, .. }
            | FaultKind::BufferGarbage { node, .. }
            | FaultKind::BufferClear { node, .. }
            | FaultKind::ColorFlip { node, .. }
            | FaultKind::RequestFlip { node }
            | FaultKind::ChoiceScramble { node, .. }
            | FaultKind::NodeReset { node } => node,
        }
    }

    /// Serialization label of the kind tag.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RoutingEntry { .. } => "routing",
            FaultKind::BufferGarbage { .. } => "garbage",
            FaultKind::BufferClear { .. } => "clear",
            FaultKind::ColorFlip { .. } => "color",
            FaultKind::RequestFlip { .. } => "request",
            FaultKind::ChoiceScramble { .. } => "choice",
            FaultKind::NodeReset { .. } => "reset",
        }
    }

    /// The variable classes this fault kind writes — the contract checked
    /// by the `ssmfp-lint` fault-domain lint: every class must appear in
    /// some declared rule footprint's write-set (faults touch model
    /// variables only, never ghost/ledger instrumentation).
    pub fn write_set(self) -> Vec<VarClass> {
        use crate::footprint::{BUF_E, BUF_R, CHOICE_PTR, DEST_CURSOR, REQUEST, WAITS};
        use ssmfp_routing::footprint::{DIST, PARENT};
        let buf_class = |buf: BufSel| match buf {
            BufSel::R => BUF_R,
            BufSel::E => BUF_E,
        };
        match self {
            FaultKind::RoutingEntry { .. } => vec![DIST, PARENT],
            FaultKind::BufferGarbage { buf, .. }
            | FaultKind::BufferClear { buf, .. }
            | FaultKind::ColorFlip { buf, .. } => vec![buf_class(buf)],
            FaultKind::RequestFlip { .. } => vec![REQUEST],
            FaultKind::ChoiceScramble { .. } => vec![CHOICE_PTR, WAITS],
            FaultKind::NodeReset { .. } => vec![
                BUF_R,
                BUF_E,
                CHOICE_PTR,
                WAITS,
                REQUEST,
                DEST_CURSOR,
                DIST,
                PARENT,
            ],
        }
    }

    /// One representative instance of every fault kind (probe node 0,
    /// destination 0, both buffer variants) — the closed enumeration the
    /// `ssmfp-lint` fault-domain analysis iterates. Adding a `FaultKind`
    /// variant without extending this list is caught by the exhaustive
    /// `match` in [`FaultKind::write_set`].
    pub fn representatives() -> Vec<FaultKind> {
        let mut kinds = vec![
            FaultKind::RoutingEntry { node: 0, dest: 0 },
            FaultKind::RequestFlip { node: 0 },
            FaultKind::ChoiceScramble { node: 0, dest: 0 },
            FaultKind::NodeReset { node: 0 },
        ];
        for buf in [BufSel::R, BufSel::E] {
            kinds.push(FaultKind::BufferGarbage {
                node: 0,
                dest: 0,
                buf,
            });
            kinds.push(FaultKind::BufferClear {
                node: 0,
                dest: 0,
                buf,
            });
            kinds.push(FaultKind::ColorFlip {
                node: 0,
                dest: 0,
                buf,
            });
        }
        kinds
    }

    /// Strictly narrower kinds with the same write targets, used by the
    /// soak shrinker after the greedy drop pass: replacing a fault with a
    /// narrowing candidate never widens the reproduction.
    pub fn narrow_candidates(self) -> Vec<FaultKind> {
        match self {
            FaultKind::NodeReset { node } => vec![
                FaultKind::RequestFlip { node },
                FaultKind::ChoiceScramble { node, dest: 0 },
                FaultKind::RoutingEntry { node, dest: 0 },
                FaultKind::BufferClear {
                    node,
                    dest: 0,
                    buf: BufSel::R,
                },
            ],
            FaultKind::BufferGarbage { node, dest, buf } => vec![
                FaultKind::ColorFlip { node, dest, buf },
                FaultKind::BufferClear { node, dest, buf },
            ],
            FaultKind::RoutingEntry { node, dest } => {
                vec![FaultKind::ChoiceScramble { node, dest }]
            }
            _ => Vec::new(),
        }
    }
}

/// One scheduled transient fault. `seed` makes the application
/// deterministic and independent of every other fault in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The step before which the fault strikes (it lands on the first step
    /// whose index is `>= at_step`).
    pub at_step: u64,
    /// Per-fault RNG seed.
    pub seed: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

fn random_link(graph: &Graph, p: NodeId, rng: &mut impl Rng) -> NodeId {
    let nb = graph.neighbors(p);
    if nb.is_empty() {
        p
    } else {
        nb[rng.gen_range(0..nb.len())]
    }
}

fn garbage_message(graph: &Graph, p: NodeId, seed: u64, rng: &mut impl Rng) -> Message {
    let delta = graph.max_degree() as u8;
    let nb = graph.neighbors(p);
    let last_hop = if nb.is_empty() || rng.gen_bool(1.0 / (nb.len() + 1) as f64) {
        p
    } else {
        nb[rng.gen_range(0..nb.len())]
    };
    Message {
        payload: rng.gen_range(0..8),
        last_hop,
        color: Color(rng.gen_range(0..=delta)),
        ghost: GhostId::Invalid(INJECTED_GHOST_BIT | (seed & (INJECTED_GHOST_BIT - 1))),
    }
}

impl Fault {
    /// Applies the fault to the configuration, returning the touched node
    /// (whose guards the caller must refresh). Deterministic in
    /// `(self, graph)` — the write never depends on the current states.
    pub fn apply(&self, graph: &Graph, states: &mut [NodeState]) -> NodeId {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = graph.n();
        match self.kind {
            FaultKind::RoutingEntry { node, dest } => {
                let dist = rng.gen_range(0..=n as u32);
                let parent = random_link(graph, node, &mut rng);
                let s = &mut states[node];
                s.routing.dist[dest] = dist;
                s.routing.parent[dest] = parent;
                node
            }
            FaultKind::BufferGarbage { node, dest, buf } => {
                let m = garbage_message(graph, node, self.seed, &mut rng);
                let slot = &mut states[node].slots[dest];
                match buf {
                    BufSel::R => slot.buf_r = Some(m),
                    BufSel::E => slot.buf_e = Some(m),
                }
                node
            }
            FaultKind::BufferClear { node, dest, buf } => {
                let slot = &mut states[node].slots[dest];
                match buf {
                    BufSel::R => slot.buf_r = None,
                    BufSel::E => slot.buf_e = None,
                }
                node
            }
            FaultKind::ColorFlip { node, dest, buf } => {
                let delta = graph.max_degree() as u8;
                let color = Color(rng.gen_range(0..=delta));
                let slot = &mut states[node].slots[dest];
                let target = match buf {
                    BufSel::R => &mut slot.buf_r,
                    BufSel::E => &mut slot.buf_e,
                };
                if let Some(m) = target {
                    m.color = color;
                }
                node
            }
            FaultKind::RequestFlip { node } => {
                states[node].request = !states[node].request;
                node
            }
            FaultKind::ChoiceScramble { node, dest } => {
                let deg = graph.degree(node);
                let s = &mut states[node];
                s.slots[dest].choice_ptr = rng.gen_range(0..=deg);
                if let Some(w) = &mut s.slots[dest].waits {
                    for x in w.iter_mut() {
                        *x = rng.gen_range(0..16);
                    }
                }
                node
            }
            FaultKind::NodeReset { node } => {
                let deg = graph.degree(node);
                for d in 0..n {
                    let dist = rng.gen_range(0..=n as u32);
                    let parent = random_link(graph, node, &mut rng);
                    let ptr = rng.gen_range(0..=deg);
                    let s = &mut states[node];
                    s.slots[d].buf_r = None;
                    s.slots[d].buf_e = None;
                    s.slots[d].choice_ptr = ptr;
                    s.slots[d].waits = None;
                    s.routing.dist[d] = dist;
                    s.routing.parent[d] = parent;
                }
                states[node].request = false;
                states[node].dest_cursor = rng.gen_range(0..n);
                node
            }
        }
    }
}

/// Shape of a randomly generated plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// How many faults to schedule.
    pub faults: usize,
    /// Steps over which the `at_step` stamps are drawn (uniformly in
    /// `0..horizon`).
    pub horizon: u64,
    /// Master seed of the draw.
    pub seed: u64,
}

/// A seeded, serializable schedule of transient faults, sorted by
/// `at_step`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The generating seed (provenance only; the faults are self-contained).
    pub seed: u64,
    /// The schedule, ascending by `at_step`.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (fault-free epoch 0).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Draws a random plan over `graph`: each fault gets a uniform
    /// `at_step` in `0..horizon`, a fresh seed, and a uniformly chosen
    /// kind with domain-legal targets.
    pub fn random(graph: &Graph, config: FaultPlanConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x000F_A017_5EED);
        let n = graph.n();
        let mut faults: Vec<Fault> = (0..config.faults)
            .map(|_| {
                let node = rng.gen_range(0..n);
                let dest = rng.gen_range(0..n);
                let buf = if rng.gen_bool(0.5) {
                    BufSel::R
                } else {
                    BufSel::E
                };
                let kind = match rng.gen_range(0..7u32) {
                    0 => FaultKind::RoutingEntry { node, dest },
                    1 => FaultKind::BufferGarbage { node, dest, buf },
                    2 => FaultKind::BufferClear { node, dest, buf },
                    3 => FaultKind::ColorFlip { node, dest, buf },
                    4 => FaultKind::RequestFlip { node },
                    5 => FaultKind::ChoiceScramble { node, dest },
                    _ => FaultKind::NodeReset { node },
                };
                Fault {
                    at_step: rng.gen_range(0..config.horizon.max(1)),
                    seed: rng.gen(),
                    kind,
                }
            })
            .collect();
        faults.sort_by_key(|f| f.at_step);
        FaultPlan {
            seed: config.seed,
            faults,
        }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A copy with fault `i` removed (greedy-drop shrinking step).
    pub fn without(&self, i: usize) -> FaultPlan {
        let mut faults = self.faults.clone();
        faults.remove(i);
        FaultPlan {
            seed: self.seed,
            faults,
        }
    }

    /// A copy with fault `i`'s kind replaced (narrowing shrinking step);
    /// stamp and seed are preserved so the rest of the plan is unaffected.
    pub fn with_kind(&self, i: usize, kind: FaultKind) -> FaultPlan {
        let mut faults = self.faults.clone();
        faults[i].kind = kind;
        FaultPlan {
            seed: self.seed,
            faults,
        }
    }

    /// Serializes the plan as one `faultplan` header line plus one `fault`
    /// line per fault (the format [`FaultPlan::from_text`] reads).
    pub fn to_text(&self) -> String {
        let mut out = format!("faultplan v1 seed={}\n", self.seed);
        for f in &self.faults {
            out.push_str(&fault_line(f));
            out.push('\n');
        }
        out
    }

    /// Parses the [`FaultPlan::to_text`] format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty fault plan")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("faultplan") || fields.next() != Some("v1") {
            return Err(format!("bad fault plan header '{header}'"));
        }
        let seed = parse_field(header, "seed")?;
        let mut faults = Vec::new();
        for line in lines {
            faults.push(parse_fault_line(line)?);
        }
        Ok(FaultPlan { seed, faults })
    }
}

pub(crate) fn fault_line(f: &Fault) -> String {
    let mut out = format!(
        "fault at={} seed={} kind={} node={}",
        f.at_step,
        f.seed,
        f.kind.label(),
        f.kind.node()
    );
    match f.kind {
        FaultKind::RoutingEntry { dest, .. } | FaultKind::ChoiceScramble { dest, .. } => {
            out.push_str(&format!(" dest={dest}"));
        }
        FaultKind::BufferGarbage { dest, buf, .. }
        | FaultKind::BufferClear { dest, buf, .. }
        | FaultKind::ColorFlip { dest, buf, .. } => {
            out.push_str(&format!(" dest={dest} buf={}", buf.label()));
        }
        FaultKind::RequestFlip { .. } | FaultKind::NodeReset { .. } => {}
    }
    out
}

/// Finds `key=value` in a whitespace-separated line and parses the value.
pub(crate) fn parse_field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, String> {
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&prefix))
        .ok_or_else(|| format!("missing field '{key}' in '{line}'"))?
        .parse()
        .map_err(|_| format!("bad value for '{key}' in '{line}'"))
}

pub(crate) fn parse_fault_line(line: &str) -> Result<Fault, String> {
    if !line.starts_with("fault ") {
        return Err(format!("bad fault line '{line}'"));
    }
    let at_step = parse_field(line, "at")?;
    let seed = parse_field(line, "seed")?;
    let kind_tag: String = parse_field(line, "kind")?;
    let node: NodeId = parse_field(line, "node")?;
    let kind = match kind_tag.as_str() {
        "routing" => FaultKind::RoutingEntry {
            node,
            dest: parse_field(line, "dest")?,
        },
        "garbage" | "clear" | "color" => {
            let dest = parse_field(line, "dest")?;
            let buf_tag: String = parse_field(line, "buf")?;
            let buf = BufSel::parse(&buf_tag)?;
            match kind_tag.as_str() {
                "garbage" => FaultKind::BufferGarbage { node, dest, buf },
                "clear" => FaultKind::BufferClear { node, dest, buf },
                _ => FaultKind::ColorFlip { node, dest, buf },
            }
        }
        "request" => FaultKind::RequestFlip { node },
        "choice" => FaultKind::ChoiceScramble {
            node,
            dest: parse_field(line, "dest")?,
        },
        "reset" => FaultKind::NodeReset { node },
        other => return Err(format!("unknown fault kind '{other}'")),
    };
    Ok(Fault {
        at_step,
        seed,
        kind,
    })
}

/// Shared progress of a [`FaultInjector`]: how many faults have fired and
/// the *actual* step of the last application (the oracle's epoch). The
/// `warp` floor lets a scenario driver pull the next pending fault forward
/// when the network quiesces before its stamp — the fault still applies
/// through the hook, exactly once, with its own seed.
#[derive(Debug)]
pub struct FaultCursor {
    fired: AtomicUsize,
    epoch: AtomicU64,
    warp: AtomicU64,
    total: usize,
}

impl FaultCursor {
    fn new(total: usize) -> Self {
        FaultCursor {
            fired: AtomicUsize::new(0),
            epoch: AtomicU64::new(u64::MAX),
            warp: AtomicU64::new(0),
            total,
        }
    }

    /// Faults applied so far.
    pub fn fired(&self) -> usize {
        self.fired.load(Ordering::SeqCst)
    }

    /// Total faults in the plan.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether every scheduled fault has been applied.
    pub fn all_fired(&self) -> bool {
        self.fired() == self.total
    }

    /// The engine step at which the last fault actually applied (`None`
    /// before the first application). Specification `SP` quantifies over
    /// messages generated at or after this step.
    pub fn epoch_step(&self) -> Option<u64> {
        match self.epoch.load(Ordering::SeqCst) {
            u64::MAX => None,
            s => Some(s),
        }
    }

    /// Raises the virtual-time floor: on the next hook invocation every
    /// fault stamped `<= step` applies regardless of the real step counter.
    /// Used by scenario drivers when the network quiesces early.
    pub fn warp_to(&self, step: u64) {
        self.warp.fetch_max(step, Ordering::SeqCst);
    }

    fn effective_step(&self, real: u64) -> u64 {
        real.max(self.warp.load(Ordering::SeqCst))
    }

    fn record(&self, fired: usize, step: u64) {
        self.fired.store(fired, Ordering::SeqCst);
        self.epoch.store(step, Ordering::SeqCst);
    }
}

/// The kernel step-hook that injects a [`FaultPlan`]: before each step,
/// every not-yet-fired fault stamped at or before the (possibly warped)
/// current step applies, in schedule order.
pub struct FaultInjector {
    plan: FaultPlan,
    next: usize,
    cursor: Arc<FaultCursor>,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let cursor = Arc::new(FaultCursor::new(plan.faults.len()));
        FaultInjector {
            plan,
            next: 0,
            cursor,
        }
    }

    /// The shared progress cursor.
    pub fn cursor(&self) -> Arc<FaultCursor> {
        Arc::clone(&self.cursor)
    }
}

impl StepHook<SsmfpProtocol> for FaultInjector {
    fn before_step(
        &mut self,
        step: u64,
        graph: &Graph,
        states: &mut [NodeState],
        touched: &mut Vec<NodeId>,
    ) {
        let eff = self.cursor.effective_step(step);
        while self.next < self.plan.faults.len() && self.plan.faults[self.next].at_step <= eff {
            let fault = self.plan.faults[self.next];
            touched.push(fault.apply(graph, states));
            self.next += 1;
            self.cursor.record(self.next, step);
        }
    }
}

/// A deterministically seeded protocol bug, used **only** to self-test the
/// spec oracle by mutation: a soak campaign over the mutated protocol must
/// flag a violation (and shrink its plan), or the oracle is vacuous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededBug {
    /// Disables rule R4's guard: the source copy is never erased after a
    /// successful forward, wedging the pipeline (R2 at the next hop stays
    /// blocked by the surviving source copy).
    SkipR4Erase,
    /// Rule R2 always assigns color 0 instead of `color_p(d)`: two
    /// same-payload messages become indistinguishable and R4 can certify
    /// against the wrong copy, erasing an un-forwarded message.
    ColorReuse,
}

impl SeededBug {
    /// Serialization label.
    pub fn label(self) -> &'static str {
        match self {
            SeededBug::SkipR4Erase => "skip-r4-erase",
            SeededBug::ColorReuse => "color-reuse",
        }
    }

    /// Parses a [`SeededBug::label`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "skip-r4-erase" => Ok(SeededBug::SkipR4Erase),
            "color-reuse" => Ok(SeededBug::ColorReuse),
            other => Err(format!("unknown seeded bug '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn clean_states(g: &Graph) -> Vec<NodeState> {
        corruption::corrupt(g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(g.n(), r))
            .collect()
    }

    /// Property: any fault applied to any configuration leaves every
    /// variable inside its model domain.
    #[test]
    fn faults_stay_domain_legal() {
        for seed in 0..40u64 {
            let g = gen::random_connected(7, 9, seed);
            let n = g.n();
            let delta = g.max_degree() as u8;
            let plan = FaultPlan::random(
                &g,
                FaultPlanConfig {
                    faults: 12,
                    horizon: 100,
                    seed,
                },
            );
            let mut states = clean_states(&g);
            // Pre-load some garbage so ColorFlip has occupants to re-color.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut inv = 0;
            for (p, state) in states.iter_mut().enumerate() {
                state.scatter_garbage(&g, p, 0.5, &mut rng, &mut inv);
            }
            for f in &plan.faults {
                let touched = f.apply(&g, &mut states);
                assert_eq!(touched, f.kind.node());
            }
            for (p, s) in states.iter().enumerate() {
                for d in 0..n {
                    assert!(s.routing.dist[d] <= n as u32, "dist domain");
                    let par = s.routing.parent[d];
                    assert!(
                        par == p || par == d || g.has_edge(p, par),
                        "parent {par} of {p} for {d} is not a link label"
                    );
                    assert!(s.slots[d].choice_ptr <= g.degree(p), "choice domain");
                    for m in [&s.slots[d].buf_r, &s.slots[d].buf_e].into_iter().flatten() {
                        assert!(m.color.0 <= delta, "color domain");
                        assert!(
                            m.last_hop == p || g.has_edge(p, m.last_hop),
                            "last hop domain"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fault_application_is_deterministic() {
        let g = gen::ring(6);
        let plan = FaultPlan::random(
            &g,
            FaultPlanConfig {
                faults: 8,
                horizon: 50,
                seed: 3,
            },
        );
        let run = |plan: &FaultPlan| {
            let mut states = clean_states(&g);
            for f in &plan.faults {
                f.apply(&g, &mut states);
            }
            states
        };
        assert_eq!(run(&plan), run(&plan));
        // Dropping one fault leaves the others' effects unchanged where
        // they don't overlap: same seeds, same writes.
        let dropped = plan.without(0);
        assert_eq!(dropped.faults.len(), plan.faults.len() - 1);
        assert_eq!(&plan.faults[1..], &dropped.faults[..]);
    }

    #[test]
    fn plan_text_roundtrip() {
        let g = gen::grid(2, 3);
        let plan = FaultPlan::random(
            &g,
            FaultPlanConfig {
                faults: 10,
                horizon: 64,
                seed: 11,
            },
        );
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).expect("roundtrip");
        assert_eq!(plan, back);
        assert!(FaultPlan::from_text("garbage").is_err());
        assert!(FaultPlan::from_text("faultplan v1 seed=1\nfault at=x").is_err());
    }

    #[test]
    fn injector_applies_at_stamps_and_reports_epoch() {
        use ssmfp_kernel::StepHook as _;
        let g = gen::line(4);
        let mut states = clean_states(&g);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                Fault {
                    at_step: 2,
                    seed: 7,
                    kind: FaultKind::RequestFlip { node: 1 },
                },
                Fault {
                    at_step: 5,
                    seed: 8,
                    kind: FaultKind::BufferGarbage {
                        node: 2,
                        dest: 0,
                        buf: BufSel::R,
                    },
                },
            ],
        };
        let mut inj = FaultInjector::new(plan);
        let cursor = inj.cursor();
        let mut touched = Vec::new();
        inj.before_step(0, &g, &mut states, &mut touched);
        assert!(touched.is_empty());
        assert_eq!(cursor.fired(), 0);
        assert_eq!(cursor.epoch_step(), None);
        inj.before_step(2, &g, &mut states, &mut touched);
        assert_eq!(touched, vec![1]);
        assert!(states[1].request);
        assert_eq!(cursor.fired(), 1);
        assert_eq!(cursor.epoch_step(), Some(2));
        // Warp pulls the remaining fault forward.
        cursor.warp_to(10);
        touched.clear();
        inj.before_step(3, &g, &mut states, &mut touched);
        assert_eq!(touched, vec![2]);
        assert!(states[2].slots[0].buf_r.is_some());
        assert!(cursor.all_fired());
        assert_eq!(cursor.epoch_step(), Some(3), "epoch is the real step");
        // No double application.
        touched.clear();
        inj.before_step(9, &g, &mut states, &mut touched);
        assert!(touched.is_empty());
    }

    #[test]
    fn injected_ghosts_are_marked_invalid_and_salted() {
        let g = gen::line(3);
        let mut states = clean_states(&g);
        let f = Fault {
            at_step: 0,
            seed: 42,
            kind: FaultKind::BufferGarbage {
                node: 0,
                dest: 2,
                buf: BufSel::E,
            },
        };
        f.apply(&g, &mut states);
        let m = states[0].slots[2].buf_e.expect("written");
        match m.ghost {
            GhostId::Invalid(k) => assert!(k & INJECTED_GHOST_BIT != 0),
            GhostId::Valid(_) => panic!("injected message must be invalid"),
        }
    }

    #[test]
    fn write_sets_cover_only_model_variables() {
        let g = gen::ring(4);
        let plan = FaultPlan::random(
            &g,
            FaultPlanConfig {
                faults: 30,
                horizon: 10,
                seed: 5,
            },
        );
        for f in &plan.faults {
            let ws = f.kind.write_set();
            assert!(!ws.is_empty());
            for c in ws {
                assert!(
                    c.owner == crate::footprint::LAYER_SSMFP
                        || c.owner == ssmfp_routing::footprint::LAYER_A,
                    "fault writes outside the model layers: {c:?}"
                );
            }
        }
    }
}
