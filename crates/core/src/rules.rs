//! Rules **R1–R6** of Algorithm 1, transcribed literally.
//!
//! Each rule is a pair *(guard, statement)* over the viewing processor `p`
//! and one destination `d`. Guards are pure; statements build the
//! processor's next state (the engine applies all of a step's writes
//! together). Guard-level message comparisons use only the paper's triplet
//! fields — never ghost identities.
//!
//! One documented deviation: the paper's rule R5 reads
//! `bufR_p(d) = (m,q,c) ∧ bufE_q(d) = (m,q',c) ∧ nextHop_q(d) ≠ p` with
//! `q ∈ N_p ∪ {p}`. We restrict R5 to `q ∈ N_p` (i.e. `q ≠ p`). With
//! `q = p` the literal guard would erase a *freshly generated* message
//! (always `(m, p, 0)` in `bufR_p(d)`) whenever the processor's own
//! emission buffer still holds an earlier in-flight message with the same
//! payload that happened to receive color 0 — `color_p(d)` only avoids the
//! colors in *neighbours'* reception buffers. That would contradict
//! Lemma 4 ("SSMFP does not delete a valid message without delivering
//! it"), so the intended reading is clearly the duplication-after-
//! forwarding case between distinct processors. See DESIGN.md §5.

use crate::choice::{after_serve, choice_with, satisfies, Choice, ChoiceStrategy};
use crate::color::color;
use crate::message::Message;
use crate::protocol::Event;
use crate::state::NodeState;
use ssmfp_kernel::View;
use ssmfp_topology::NodeId;

/// Which of the six guarded rules fired (per destination instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Generation of a message from the higher layer into `bufR_p(d)`.
    R1,
    /// Internal forwarding `bufR_p(d) → bufE_p(d)` (with re-coloring).
    R2,
    /// Forwarding from a chosen neighbour's `bufE` into `bufR_p(d)`.
    R3,
    /// Erasure of `bufE_p(d)` after its copy reached `bufR_{nextHop}(d)`.
    R4,
    /// Erasure of a duplicate copy from `bufR_p(d)` after routing moved.
    R5,
    /// Consumption: delivery of `bufE_p(p)` to the higher layer.
    R6,
}

impl Rule {
    /// All rules, in the drain-before-generate evaluation order used by
    /// [`enabled_rules`].
    pub const EVAL_ORDER: [Rule; 6] = [Rule::R6, Rule::R4, Rule::R5, Rule::R2, Rule::R3, Rule::R1];

    /// Dense index (R1 → 0 … R6 → 5) for per-rule lookup tables.
    pub const fn index(self) -> usize {
        match self {
            Rule::R1 => 0,
            Rule::R2 => 1,
            Rule::R3 => 2,
            Rule::R4 => 3,
            Rule::R5 => 4,
            Rule::R6 => 5,
        }
    }
}

/// Whether one rule's guard holds for destination `d` — the
/// zero-allocation core behind [`enabled_rules_with`] and the scoped
/// guard evaluation of the composed protocol. `literal_r5` takes rule R5
/// verbatim from the paper (see [`guard_r5_variant`]).
#[inline]
pub fn rule_enabled(
    view: &View<'_, NodeState>,
    d: NodeId,
    rule: Rule,
    strategy: ChoiceStrategy,
    literal_r5: bool,
) -> bool {
    match rule {
        Rule::R1 => guard_r1_with(view, d, strategy),
        Rule::R2 => guard_r2(view, d),
        Rule::R3 => guard_r3_with(view, d, strategy),
        Rule::R4 => guard_r4(view, d),
        Rule::R5 => guard_r5_variant(view, d, literal_r5),
        Rule::R6 => guard_r6(view, d),
    }
}

/// `nextHop_p(d)` as Algorithm 1 reads it: the routing-table parent.
#[inline]
fn next_hop_of(view: &View<'_, NodeState>, p: NodeId, d: NodeId) -> NodeId {
    view.state(p).routing.parent[d]
}

/// Guard of rule R1 (generation) for destination `d`:
/// `request_p ∧ nextDestination_p = d ∧ bufR_p(d) = ∅ ∧ choice_p(d) = p`.
pub fn guard_r1(view: &View<'_, NodeState>, d: NodeId) -> bool {
    guard_r1_with(view, d, ChoiceStrategy::RotationQueue)
}

/// [`guard_r1`] under a pluggable `choice_p(d)` strategy.
pub fn guard_r1_with(view: &View<'_, NodeState>, d: NodeId, strategy: ChoiceStrategy) -> bool {
    let me = view.me();
    me.request
        && me.outbox.front().map(|o| o.dest) == Some(d)
        && me.slots[d].buf_r.is_none()
        && choice_with(view, d, strategy).map(|c| c.who) == Some(view.me_id())
}

/// Guard of rule R2 (internal forwarding) for destination `d`:
/// `bufE_p(d) = ∅ ∧ bufR_p(d) = (m,q,c) ∧ (q = p ∨ bufE_q(d) ≠ (m,·,c))`.
pub fn guard_r2(view: &View<'_, NodeState>, d: NodeId) -> bool {
    let me = view.me();
    if me.slots[d].buf_e.is_some() {
        return false;
    }
    let Some(m) = &me.slots[d].buf_r else {
        return false;
    };
    let q = m.last_hop;
    if q == view.me_id() {
        return true;
    }
    // The message must exist *only* in bufR_p(d): its source copy in q's
    // emission buffer must be gone (same payload and color, any last hop).
    !view.state(q).slots[d]
        .buf_e
        .as_ref()
        .is_some_and(|e| e.same_payload_color(m))
}

/// Guard of rule R3 (forwarding between processors) for destination `d`:
/// `bufR_p(d) = ∅ ∧ choice_p(d) = s ∧ s ≠ p ∧ bufE_s(d) = (m,q,c)`.
pub fn guard_r3(view: &View<'_, NodeState>, d: NodeId) -> bool {
    guard_r3_with(view, d, ChoiceStrategy::RotationQueue)
}

/// [`guard_r3`] under a pluggable `choice_p(d)` strategy.
pub fn guard_r3_with(view: &View<'_, NodeState>, d: NodeId, strategy: ChoiceStrategy) -> bool {
    let me = view.me();
    if me.slots[d].buf_r.is_some() {
        return false;
    }
    match choice_with(view, d, strategy) {
        Some(c) if c.who != view.me_id() => view.state(c.who).slots[d].buf_e.is_some(),
        _ => false,
    }
}

/// Guard of rule R4 (erasure after forwarding) for destination `d`:
/// `bufE_p(d) = (m,q,c) ∧ p ≠ d ∧ bufR_{nextHop_p(d)}(d) = (m,p,c)
///  ∧ ∀r ∈ N_p \ {nextHop_p(d)} : bufR_r(d) ≠ (m,p,c)`.
pub fn guard_r4(view: &View<'_, NodeState>, d: NodeId) -> bool {
    let p = view.me_id();
    if p == d {
        return false;
    }
    let me = view.me();
    let Some(m) = &me.slots[d].buf_e else {
        return false;
    };
    let nh = me.routing.parent[d];
    if !view.neighbors().contains(&nh) {
        // A corrupted table may not point at a neighbour; then no copy can
        // be certified and the rule stays disabled (A will repair the
        // table, unblocking it).
        return false;
    }
    let at_next_hop = view.state(nh).slots[d]
        .buf_r
        .as_ref()
        .is_some_and(|r| r.matches_triplet(m.payload, p, m.color));
    if !at_next_hop {
        return false;
    }
    view.neighbors().iter().all(|&r| {
        r == nh
            || !view.state(r).slots[d]
                .buf_r
                .as_ref()
                .is_some_and(|x| x.matches_triplet(m.payload, p, m.color))
    })
}

/// Guard of rule R5 (erasure after duplication) for destination `d`:
/// `bufR_p(d) = (m,q,c) ∧ q ∈ N_p ∧ bufE_q(d) = (m,·,c) ∧ nextHop_q(d) ≠ p`
/// (see the module docs for the `q ∈ N_p` restriction).
pub fn guard_r5(view: &View<'_, NodeState>, d: NodeId) -> bool {
    guard_r5_variant(view, d, false)
}

/// [`guard_r5`] with the `literal` switch: when true, the paper's guard is
/// taken verbatim — `q ∈ N_p ∪ {p}` — including the `q = p` case our
/// deviation excludes. The exhaustive checker in `ssmfp-check` uses this
/// to produce a machine-checked counterexample (a lost valid message)
/// justifying the deviation.
pub fn guard_r5_variant(view: &View<'_, NodeState>, d: NodeId, literal: bool) -> bool {
    let p = view.me_id();
    let me = view.me();
    let Some(m) = &me.slots[d].buf_r else {
        return false;
    };
    let q = m.last_hop;
    if q == p && !literal {
        return false;
    }
    view.state(q).slots[d]
        .buf_e
        .as_ref()
        .is_some_and(|e| e.same_payload_color(m))
        && next_hop_of(view, q, d) != p
}

/// Guard of rule R6 (consumption): `bufE_p(p) = (m,q,c)` — only for the
/// destination instance `d = p`.
pub fn guard_r6(view: &View<'_, NodeState>, d: NodeId) -> bool {
    d == view.me_id() && view.me().slots[d].buf_e.is_some()
}

/// Evaluates all six guards of destination instance `d` at the viewing
/// processor, appending the enabled rules in [`Rule::EVAL_ORDER`].
pub fn enabled_rules(view: &View<'_, NodeState>, d: NodeId, out: &mut Vec<Rule>) {
    enabled_rules_with(view, d, ChoiceStrategy::RotationQueue, out);
}

/// [`enabled_rules`] under a pluggable `choice_p(d)` strategy.
pub fn enabled_rules_with(
    view: &View<'_, NodeState>,
    d: NodeId,
    strategy: ChoiceStrategy,
    out: &mut Vec<Rule>,
) {
    for rule in Rule::EVAL_ORDER {
        if rule_enabled(view, d, rule, strategy, false) {
            out.push(rule);
        }
    }
}

/// As [`enabled_rules_with`], but with the literal-R5 switch (see
/// [`guard_r5_variant`]).
pub fn enabled_rules_literal_r5(
    view: &View<'_, NodeState>,
    d: NodeId,
    strategy: ChoiceStrategy,
    out: &mut Vec<Rule>,
) {
    for rule in Rule::EVAL_ORDER {
        if rule_enabled(view, d, rule, strategy, true) {
            out.push(rule);
        }
    }
}

/// Executes `rule` for destination `d`, returning the processor's next
/// state and appending observable events. Must only be called when the
/// corresponding guard holds in `view` (debug-asserted).
pub fn execute_rule(
    view: &View<'_, NodeState>,
    d: NodeId,
    rule: Rule,
    delta: usize,
    events: &mut Vec<Event>,
) -> NodeState {
    execute_rule_with(view, d, rule, delta, ChoiceStrategy::RotationQueue, events)
}

/// [`execute_rule`] under a pluggable `choice_p(d)` strategy.
pub fn execute_rule_with(
    view: &View<'_, NodeState>,
    d: NodeId,
    rule: Rule,
    delta: usize,
    strategy: ChoiceStrategy,
    events: &mut Vec<Event>,
) -> NodeState {
    let p = view.me_id();
    // Positions currently satisfying the choice predicate (wait-counter
    // bookkeeping for the LongestWaiting strategy).
    let satisfying: Vec<usize> = if matches!(strategy, ChoiceStrategy::LongestWaiting)
        && matches!(rule, Rule::R1 | Rule::R3)
    {
        (0..=view.neighbors().len())
            .filter(|&pos| satisfies(view, d, pos))
            .collect()
    } else {
        Vec::new()
    };
    let mut next = view.me().clone();
    match rule {
        Rule::R1 => {
            debug_assert!(guard_r1_with(view, d, strategy));
            let out = next.outbox.pop_front().expect("guard checked outbox");
            next.slots[d].buf_r = Some(Message::generated(out.payload, p, out.ghost));
            next.request = false;
            // The generation was served through choice_p(d): apply the
            // strategy's fairness bookkeeping (self position = deg).
            let deg = view.neighbors().len();
            after_serve(&mut next.slots[d], deg, deg, strategy, &satisfying);
            events.push(Event::Generated {
                ghost: out.ghost,
                dest: d,
                payload: out.payload,
            });
        }
        Rule::R2 => {
            debug_assert!(guard_r2(view, d));
            let m = next.slots[d].buf_r.take().expect("guard checked bufR");
            next.slots[d].buf_e = Some(Message {
                payload: m.payload,
                last_hop: p,
                color: color(view, d, delta),
                ghost: m.ghost,
            });
            events.push(Event::InternalMove { ghost: m.ghost });
        }
        Rule::R3 => {
            debug_assert!(guard_r3_with(view, d, strategy));
            let c: Choice = choice_with(view, d, strategy).expect("guard checked choice");
            let src = view.state(c.who).slots[d]
                .buf_e
                .as_ref()
                .expect("guard checked source bufE");
            next.slots[d].buf_r = Some(Message {
                payload: src.payload,
                last_hop: c.who,
                color: src.color,
                ghost: src.ghost,
            });
            after_serve(
                &mut next.slots[d],
                c.position,
                view.neighbors().len(),
                strategy,
                &satisfying,
            );
            events.push(Event::Forwarded { ghost: src.ghost });
        }
        Rule::R4 => {
            debug_assert!(guard_r4(view, d));
            let m = next.slots[d].buf_e.take().expect("guard checked bufE");
            events.push(Event::ErasedAfterCopy { ghost: m.ghost });
        }
        Rule::R5 => {
            // Literal-R5 ablation runs through the same statement: accept
            // either guard variant (the deviation implies the literal one).
            debug_assert!(guard_r5_variant(view, d, true));
            let m = next.slots[d].buf_r.take().expect("guard checked bufR");
            events.push(Event::ErasedDuplicate { ghost: m.ghost });
        }
        Rule::R6 => {
            debug_assert!(guard_r6(view, d));
            let m = next.slots[d].buf_e.take().expect("guard checked bufE");
            events.push(Event::Delivered {
                ghost: m.ghost,
                payload: m.payload,
            });
        }
    }
    next
}
