//! `SSMFP` — the **S**nap-**S**tabilizing **M**essage **F**orwarding
//! **P**rotocol of Cournier, Dubois & Villain (IPPS 2009), executable.
//!
//! The protocol solves the message forwarding problem under Specification
//! `SP`: starting from **any** configuration — corrupted routing tables,
//! garbage ("invalid") messages pre-loaded in buffers — any message can be
//! generated in finite time, and every *valid* (generated) message is
//! delivered to its destination **once and only once** in finite time.
//!
//! Module map (mirroring the paper's Algorithm 1):
//!
//! * [`message`] — the message triplet `(m, q, c)`: payload, last hop,
//!   color in `{0..Δ}`; plus the *ghost identity* instrumentation that lets
//!   the test harness distinguish physically distinct messages with equal
//!   useful information (the proofs' "message ≠ useful information" device).
//! * [`state`] — the per-processor shared variables: `bufR_p(d)`,
//!   `bufE_p(d)`, `request_p`, the `choice_p(d)` fairness pointers, and the
//!   higher-layer outbox behind `nextMessage_p`/`nextDestination_p`.
//! * [`choice`] — the fair selection `choice_p(d)` (queue of length `Δ+1`).
//! * [`color`] — `color_p(d)`: smallest color absent from all neighbours'
//!   reception buffers (pigeonhole-guaranteed to exist).
//! * [`rules`] — rules **R1–R6**, transcribed literally.
//! * [`footprint`] — the rules' declared read/write footprints and guard
//!   shapes, feeding the `ssmfp-lint` static analyses and the exhaustive
//!   checker's partial-order reduction.
//! * [`protocol`] — [`SsmfpProtocol`]: the per-destination instances
//!   multiplexed at each processor and composed with the routing algorithm
//!   `A` under the paper's priority rule.
//! * [`caterpillar`] — Definition 3's caterpillar classifier (Figure 4).
//! * [`ledger`] — the `SP`/`SP'` specification monitors: exactly-once
//!   delivery of valid messages, invalid-delivery census (Proposition 4).
//! * [`faults`] — mid-execution transient faults: seeded, serializable
//!   [`FaultPlan`]s of domain-legal corruptions and the [`FaultInjector`]
//!   step-hook that applies them between daemon selections.
//! * [`baseline`] — the fault-free Merlin–Schweitzer destination-based
//!   forwarding protocol of \[21\] (one buffer per destination, source/flag
//!   dedup), the paper's implicit comparison point.
//! * [`api`] — [`Network`]: the user-facing facade (build, send, run,
//!   observe deliveries).
//! * [`replay`] — the scripted Figure 3 scenario.
//! * [`codec`] — the packed state codec: message interning and the flat
//!   fixed-width encoding the checker's visited/frontier sets and the
//!   snapshot path store configurations in.
//! * [`wire`] — the cluster runtime's wire codec: length-prefixed frames
//!   for the link-crossing traffic (handshake, routing advertisements,
//!   supervision), with a total decoder and the tag/event-kind surface
//!   `ssmfp-lint`'s `wire-coverage` lint audits.
//! * [`conc`] — declared concurrency footprints (thread roles, lock ranks,
//!   channel bounds, blocking edges) for the runtime layers, with the
//!   debug-build `TrackedMutex`/`TrackedChannel` instrumentation and the
//!   thread registry backing `ssmfp-lint`'s `conc-*` passes.

pub mod api;
pub mod baseline;
pub mod caterpillar;
pub mod choice;
pub mod codec;
pub mod color;
pub mod conc;
pub mod faults;
pub mod footprint;
pub mod ledger;
pub mod message;
pub mod protocol;
pub mod replay;
pub mod rules;
pub mod state;
pub mod trajectory;
pub mod wire;

pub use api::{DaemonKind, Network, NetworkConfig};
pub use caterpillar::{classify_buffers, CaterpillarCensus, CaterpillarType};
pub use choice::ChoiceStrategy;
pub use codec::{
    codec_footprint, deep_node_bytes, node_fingerprint, MessageTable, PackedSnapshot, StateCodec,
    NO_MESSAGE,
};
pub use conc::{
    observed_threads, register_thread, registered_thread_count, spawn_registered, tracked_channel,
    BlockingEdge, ChannelDecl, ChannelStats, ConcModel, FullPolicy, LockDecl, Multiplicity,
    SendOutcome, ThreadDecl, TrackedMutex, TrackedSender, WaitPoint, EXTERN_ROLE,
};
pub use faults::{
    BufSel, Fault, FaultCursor, FaultInjector, FaultKind, FaultPlan, FaultPlanConfig, SeededBug,
};
pub use footprint::{action_footprint, guards_can_overlap, rule_footprint};
pub use ledger::{
    reconcile_clients, reconcile_ledgers, reconcile_ledgers_counted, ClientVerdict,
    ClientViolation, ClusterVerdict, DeliveryLedger, NodeLedger, ReconcileWork, SpViolation,
};
pub use message::{Color, GhostId, Message, Payload};
pub use protocol::{Event, FwdAction, SsmfpAction, SsmfpProtocol};
pub use rules::Rule;
pub use state::{FwdSlot, NodeState};
pub use trajectory::{Trajectory, TrajectoryLog, TrajectoryViolation};
pub use wire::{
    decode_body, encode_frame, ClientStamp, FrameReader, FrameTag, WireError, WireFrame,
    WireMessage, CLIENT_STAMP_FIELDS, ENCODED_CLIENT_STAMP_FIELDS, LINK_EVENT_KINDS, MAX_FRAME_LEN,
};
