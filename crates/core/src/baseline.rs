//! The **fault-free baseline**: Merlin–Schweitzer destination-based
//! forwarding \[21\] as §3.1 sketches it — one buffer `b_p(d)` per processor
//! per destination (Figure 1's buffer graph), with *"the concatenation of
//! the identity of the source and a two-value flag"* to distinguish two
//! consecutive identical messages.
//!
//! In the shared-memory model the receiver *pulls* a copy and the sender
//! erases once the receiver's per-port acknowledgment (`last_recv`)
//! records it — the classical alternating-bit handshake. This protocol is
//! correct **when the routing tables are correct from the start**
//! (validated by the tests), but it is *not* stabilizing:
//!
//! * a routing move between a copy and its erasure duplicates the message
//!   (two receivers each pull a copy);
//! * initial garbage in a buffer or an acknowledgment cell can cause a
//!   *silent loss* (the sender erases a message that was never copied);
//! * messages can chase routing loops.
//!
//! The E9/E10 experiments quantify exactly this contrast against SSMFP:
//! comparable cost when clean, broken when started from an arbitrary
//! configuration.

use crate::ledger::DeliveryLedger;
use crate::message::{GhostId, Payload};
use crate::protocol::Event;
use crate::state::Outgoing;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ssmfp_kernel::{Engine, Protocol, StepOutcome, View};
use ssmfp_routing::{corruption, CorruptionKind, HasRouting, RoutingProtocol, RoutingState};
use ssmfp_topology::{Graph, NodeId};
use std::collections::VecDeque;

/// A baseline message: payload plus the `(source, flag)` pair used for
/// duplicate suppression. `ghost` is verification-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineMsg {
    /// Useful information.
    pub payload: Payload,
    /// The generating processor (part of the dedup key).
    pub src: NodeId,
    /// Two-value flag alternated per source per destination.
    pub flag: bool,
    /// Verification identity.
    pub ghost: GhostId,
}

impl BaselineMsg {
    /// The guard-level dedup key `(m, source, flag)`.
    pub fn key(&self) -> (Payload, NodeId, bool) {
        (self.payload, self.src, self.flag)
    }
}

/// Per-processor state of the baseline protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineState {
    /// Routing table maintained by `A`.
    pub routing: RoutingState,
    /// The single buffer `b_p(d)` per destination.
    pub bufs: Vec<Option<BaselineMsg>>,
    /// Per-destination, per-port acknowledgment: key of the last message
    /// pulled from that neighbour (the alternating-bit memory).
    pub last_recv: Vec<Vec<Option<(Payload, NodeId, bool)>>>,
    /// Fairness pointers (rotation over `N_p ∪ {p}`) per destination.
    pub choice_ptr: Vec<usize>,
    /// Alternating flag for this processor's own next generation, per
    /// destination.
    pub next_flag: Vec<bool>,
    /// The `request_p` bit.
    pub request: bool,
    /// Higher-layer queue.
    pub outbox: VecDeque<Outgoing>,
    /// Destination fairness cursor (same role as in SSMFP).
    pub dest_cursor: NodeId,
}

impl BaselineState {
    /// Clean state: empty buffers and acknowledgments.
    pub fn clean(graph: &Graph, p: NodeId, routing: RoutingState) -> Self {
        let n = graph.n();
        let deg = graph.degree(p);
        BaselineState {
            routing,
            bufs: vec![None; n],
            last_recv: vec![vec![None; deg]; n],
            choice_ptr: vec![0; n],
            next_flag: vec![false; n],
            request: false,
            outbox: VecDeque::new(),
            dest_cursor: 0,
        }
    }

    /// Scatters invalid garbage into buffers and acknowledgment cells —
    /// the arbitrary initial configuration the baseline was never designed
    /// to survive.
    pub fn scatter_garbage(
        &mut self,
        graph: &Graph,
        p: NodeId,
        fill: f64,
        rng: &mut impl Rng,
        next_invalid: &mut u64,
    ) {
        let n = self.bufs.len();
        for d in 0..n {
            if rng.gen_bool(fill) {
                self.bufs[d] = Some(BaselineMsg {
                    payload: rng.gen_range(0..8),
                    src: rng.gen_range(0..n),
                    flag: rng.gen_bool(0.5),
                    ghost: GhostId::Invalid(*next_invalid),
                });
                *next_invalid += 1;
            }
            for port in 0..graph.degree(p) {
                if rng.gen_bool(fill) {
                    self.last_recv[d][port] =
                        Some((rng.gen_range(0..8), rng.gen_range(0..n), rng.gen_bool(0.5)));
                }
            }
            self.choice_ptr[d] = rng.gen_range(0..=graph.degree(p));
            self.next_flag[d] = rng.gen_bool(0.5);
        }
    }

    /// Occupied buffers at this processor.
    pub fn occupied_buffers(&self) -> usize {
        self.bufs.iter().filter(|b| b.is_some()).count()
    }
}

impl HasRouting for BaselineState {
    fn routing(&self) -> &RoutingState {
        &self.routing
    }
    fn routing_mut(&mut self) -> &mut RoutingState {
        &mut self.routing
    }
}

/// Baseline rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineRule {
    /// Generation into the local buffer.
    Generate,
    /// Pull a copy from the chosen upstream neighbour.
    Pull,
    /// Erase after the downstream acknowledgment records our message.
    Erase,
    /// Consume at the destination.
    Consume,
}

/// An action of the composed baseline protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineAction {
    /// Routing correction (priority).
    Routing(ssmfp_routing::RoutingAction),
    /// A forwarding rule for one destination.
    Fwd {
        /// The rule.
        rule: BaselineRule,
        /// The destination instance.
        dest: NodeId,
    },
}

/// The composed baseline protocol (`A` + destination-based forwarding).
#[derive(Debug, Clone)]
pub struct BaselineProtocol {
    n: usize,
    routing: RoutingProtocol<BaselineState>,
}

impl BaselineProtocol {
    /// Creates the protocol for `n` processors.
    pub fn new(n: usize) -> Self {
        BaselineProtocol {
            n,
            routing: RoutingProtocol::new(n),
        }
    }
}

/// Resolved `choice` for the baseline (same rotation scheme as SSMFP's).
fn bl_choice(view: &View<'_, BaselineState>, d: NodeId) -> Option<(NodeId, usize)> {
    let me = view.me();
    let neighbors = view.neighbors();
    let len = neighbors.len() + 1;
    let start = me.choice_ptr[d] % len;
    for offset in 0..len {
        let position = (start + offset) % len;
        let ok = if position == neighbors.len() {
            me.request && me.outbox.front().map(|o| o.dest) == Some(d)
        } else {
            let s = neighbors[position];
            let ss = view.state(s);
            match &ss.bufs[d] {
                Some(msg) => {
                    ss.routing.parent[d] == view.me_id()
                        && me.last_recv[d][position] != Some(msg.key())
                }
                None => false,
            }
        };
        if ok {
            let who = if position == neighbors.len() {
                view.me_id()
            } else {
                neighbors[position]
            };
            return Some((who, position));
        }
    }
    None
}

fn guard_generate(view: &View<'_, BaselineState>, d: NodeId) -> bool {
    let me = view.me();
    me.request
        && me.outbox.front().map(|o| o.dest) == Some(d)
        && me.bufs[d].is_none()
        && bl_choice(view, d).map(|(who, _)| who) == Some(view.me_id())
}

fn guard_pull(view: &View<'_, BaselineState>, d: NodeId) -> bool {
    view.me().bufs[d].is_none()
        && matches!(bl_choice(view, d), Some((who, _)) if who != view.me_id())
}

fn guard_erase(view: &View<'_, BaselineState>, d: NodeId) -> bool {
    let p = view.me_id();
    if p == d {
        return false;
    }
    let me = view.me();
    let Some(msg) = &me.bufs[d] else {
        return false;
    };
    let nh = me.routing.parent[d];
    if !view.neighbors().contains(&nh) {
        return false;
    }
    // Downstream acknowledgment: the receiver's per-port memory of what it
    // last pulled from us records exactly our message.
    let Some(port) = view.graph().port_of(nh, p) else {
        return false;
    };
    view.state(nh).last_recv[d][port] == Some(msg.key())
}

fn guard_consume(view: &View<'_, BaselineState>, d: NodeId) -> bool {
    d == view.me_id() && view.me().bufs[d].is_some()
}

impl Protocol for BaselineProtocol {
    type State = BaselineState;
    type Action = BaselineAction;
    type Event = Event;

    fn enabled_actions(&self, view: &View<'_, Self::State>, out: &mut Vec<Self::Action>) {
        let mut routing_actions = Vec::new();
        self.routing.enabled_into(view, &mut routing_actions);
        out.extend(routing_actions.into_iter().map(BaselineAction::Routing));
        if !out.is_empty() {
            return; // A has priority, as for SSMFP.
        }
        let start = view.me().dest_cursor % self.n;
        for offset in 0..self.n {
            let d = (start + offset) % self.n;
            for (rule, guard) in [
                (BaselineRule::Consume, guard_consume(view, d)),
                (BaselineRule::Erase, guard_erase(view, d)),
                (BaselineRule::Pull, guard_pull(view, d)),
                (BaselineRule::Generate, guard_generate(view, d)),
            ] {
                if guard {
                    out.push(BaselineAction::Fwd { rule, dest: d });
                }
            }
        }
    }

    fn execute(
        &self,
        view: &View<'_, Self::State>,
        action: Self::Action,
        events: &mut Vec<Self::Event>,
    ) -> Self::State {
        match action {
            BaselineAction::Routing(a) => self.routing.apply(view, a),
            BaselineAction::Fwd { rule, dest: d } => {
                let p = view.me_id();
                let mut next = view.me().clone();
                match rule {
                    BaselineRule::Generate => {
                        let out = next.outbox.pop_front().expect("guard checked outbox");
                        let flag = next.next_flag[d];
                        next.next_flag[d] = !flag;
                        next.bufs[d] = Some(BaselineMsg {
                            payload: out.payload,
                            src: p,
                            flag,
                            ghost: out.ghost,
                        });
                        next.request = false;
                        let deg = view.neighbors().len();
                        next.choice_ptr[d] = (deg + 1) % (deg + 1);
                        events.push(Event::Generated {
                            ghost: out.ghost,
                            dest: d,
                            payload: out.payload,
                        });
                    }
                    BaselineRule::Pull => {
                        let (s, position) = bl_choice(view, d).expect("guard checked choice");
                        let msg = *view.state(s).bufs[d]
                            .as_ref()
                            .expect("guard checked source buffer");
                        next.bufs[d] = Some(msg);
                        next.last_recv[d][position] = Some(msg.key());
                        next.choice_ptr[d] = (position + 1) % (view.neighbors().len() + 1);
                        events.push(Event::Forwarded { ghost: msg.ghost });
                    }
                    BaselineRule::Erase => {
                        let msg = next.bufs[d].take().expect("guard checked buffer");
                        events.push(Event::ErasedAfterCopy { ghost: msg.ghost });
                    }
                    BaselineRule::Consume => {
                        let msg = next.bufs[d].take().expect("guard checked buffer");
                        events.push(Event::Delivered {
                            ghost: msg.ghost,
                            payload: msg.payload,
                        });
                    }
                }
                next.dest_cursor = (d + 1) % self.n;
                next
            }
        }
    }

    fn describe(&self, action: Self::Action) -> String {
        match action {
            BaselineAction::Routing(a) => format!("A:correct(d={})", a.dest),
            BaselineAction::Fwd { rule, dest } => format!("B:{rule:?}(d={dest})"),
        }
    }
}

/// Facade mirroring [`crate::api::Network`] for the baseline protocol.
pub struct BaselineNetwork {
    engine: Engine<BaselineProtocol>,
    ledger: DeliveryLedger,
    next_valid: u64,
    /// Reused event drain buffer (see `Network::event_buf`).
    event_buf: Vec<ssmfp_kernel::engine::EventRecord<Event>>,
}

impl BaselineNetwork {
    /// Builds a baseline network with the given table corruption and
    /// garbage fill, scheduled by `daemon`.
    pub fn new(
        graph: Graph,
        daemon: crate::api::DaemonKind,
        corruption_kind: CorruptionKind,
        garbage_fill: f64,
        seed: u64,
    ) -> Self {
        let n = graph.n();
        let routing_states = corruption::corrupt(&graph, corruption_kind, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBAD5_EED0_F00D_CAFE);
        let mut next_invalid = 0;
        let states: Vec<BaselineState> = routing_states
            .into_iter()
            .enumerate()
            .map(|(p, r)| {
                let mut s = BaselineState::clean(&graph, p, r);
                if garbage_fill > 0.0 {
                    s.scatter_garbage(&graph, p, garbage_fill, &mut rng, &mut next_invalid);
                }
                s
            })
            .collect();
        let d = daemon.build_for(&graph);
        let engine = Engine::new(graph, BaselineProtocol::new(n), d, states);
        BaselineNetwork {
            engine,
            ledger: DeliveryLedger::new(),
            next_valid: 0,
            event_buf: Vec::new(),
        }
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        self.engine.graph()
    }

    /// The ground-truth ledger.
    pub fn ledger(&self) -> &DeliveryLedger {
        &self.ledger
    }

    /// Steps executed.
    pub fn steps(&self) -> u64 {
        self.engine.steps()
    }

    /// Rounds completed.
    pub fn rounds(&self) -> u64 {
        self.engine.rounds()
    }

    /// Hands a message to the higher layer (see `Network::send`).
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: Payload) -> GhostId {
        let ghost = GhostId::Valid(self.next_valid);
        self.next_valid += 1;
        self.engine.mutate_state(src, |s| {
            s.outbox.push_back(Outgoing {
                dest: dst,
                payload,
                ghost,
            });
            if !s.request {
                s.request = true;
            }
        });
        ghost
    }

    /// One step plus higher-layer upkeep.
    pub fn pump(&mut self) -> StepOutcome {
        let outcome = self.engine.step();
        self.event_buf.clear();
        self.engine.drain_events_into(&mut self.event_buf);
        self.ledger.absorb(&self.event_buf);
        let n = self.graph().n();
        for p in 0..n {
            let s = self.engine.state(p);
            if !s.request && !s.outbox.is_empty() {
                self.engine.mutate_state(p, |s| s.request = true);
            }
        }
        outcome
    }

    /// Runs for at most `max_steps`, stopping at quiescence. Returns true
    /// if quiescent.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if let StepOutcome::Terminal = self.pump() {
                return true;
            }
        }
        false
    }

    /// Deliveries of one message.
    pub fn deliveries_of(&self, ghost: GhostId) -> u64 {
        self.ledger.deliveries_of(ghost)
    }

    /// Messages currently in buffers.
    pub fn messages_in_flight(&self) -> usize {
        self.engine
            .states()
            .iter()
            .map(BaselineState::occupied_buffers)
            .sum()
    }

    /// Valid messages that are neither delivered nor anywhere in the
    /// system (buffers or outboxes): lost by the baseline.
    pub fn lost_messages(&self) -> Vec<GhostId> {
        let mut in_flight = std::collections::HashSet::new();
        for s in self.engine.states() {
            for b in s.bufs.iter().flatten() {
                in_flight.insert(b.ghost);
            }
            for o in &s.outbox {
                in_flight.insert(o.ghost);
            }
        }
        self.ledger
            .outstanding()
            .into_iter()
            .filter(|g| !in_flight.contains(g))
            .collect()
    }

    /// Valid messages delivered more than once.
    pub fn duplicated_messages(&self) -> Vec<(GhostId, u64)> {
        (0..self.next_valid)
            .map(GhostId::Valid)
            .filter_map(|g| {
                let k = self.ledger.deliveries_of(g);
                (k > 1).then_some((g, k))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DaemonKind;
    use ssmfp_topology::gen;

    #[test]
    fn baseline_correct_tables_exactly_once() {
        let mut net = BaselineNetwork::new(
            gen::line(5),
            DaemonKind::RoundRobin,
            CorruptionKind::None,
            0.0,
            0,
        );
        let g = net.send(0, 4, 42);
        assert!(net.run_to_quiescence(200_000));
        assert_eq!(net.deliveries_of(g), 1);
        assert!(net.lost_messages().is_empty());
        assert!(net.duplicated_messages().is_empty());
    }

    #[test]
    fn baseline_all_pairs_clean() {
        let mut net = BaselineNetwork::new(
            gen::grid(3, 3),
            DaemonKind::RoundRobin,
            CorruptionKind::None,
            0.0,
            0,
        );
        let mut ghosts = Vec::new();
        for s in 0..9 {
            for d in 0..9 {
                if s != d {
                    ghosts.push(net.send(s, d, (s * 9 + d) as u64));
                }
            }
        }
        assert!(net.run_to_quiescence(5_000_000));
        for g in ghosts {
            assert_eq!(net.deliveries_of(g), 1);
        }
    }

    #[test]
    fn baseline_consecutive_same_payload_not_merged() {
        // The alternating flag distinguishes two consecutive identical
        // messages from the same source (the paper's stated purpose).
        let mut net = BaselineNetwork::new(
            gen::line(4),
            DaemonKind::RoundRobin,
            CorruptionKind::None,
            0.0,
            0,
        );
        let g1 = net.send(0, 3, 7);
        let g2 = net.send(0, 3, 7);
        assert!(net.run_to_quiescence(200_000));
        assert_eq!(net.deliveries_of(g1), 1);
        assert_eq!(net.deliveries_of(g2), 1);
    }

    #[test]
    fn baseline_loses_message_on_crafted_ack_garbage() {
        // Deterministic loss: initial garbage in the downstream
        // acknowledgment cell equals the key of the message node 0 is about
        // to generate — node 0 erases it believing it was copied. One
        // corrupted cell, one silent loss; SSMFP survives the same start
        // (its R4 erase checks the *message*, re-colored per hop, not a
        // stale acknowledgment).
        let graph = gen::line(3);
        let mut net = BaselineNetwork::new(
            graph.clone(),
            DaemonKind::RoundRobin,
            CorruptionKind::None,
            0.0,
            0,
        );
        // First generation of node 0 toward destination 2: key (7, 0, false).
        let port_of_0_at_1 = graph.port_of(1, 0).unwrap();
        net.engine.mutate_state(1, |s| {
            s.last_recv[2][port_of_0_at_1] = Some((7, 0, false));
        });
        let g = net.send(0, 2, 7);
        net.run_to_quiescence(100_000);
        assert_eq!(net.deliveries_of(g), 0, "message must be silently lost");
        assert_eq!(net.lost_messages(), vec![g]);
    }

    #[test]
    fn baseline_breaks_under_corruption_somewhere() {
        // Snap-stabilization is exactly what the baseline lacks: across a
        // seed sweep with corrupted tables AND garbage buffers/acks (drawn
        // from a small payload space shared with the senders), at least one
        // run must lose or duplicate a valid message (or fail to deliver
        // within the budget). This is E10's headline.
        let mut broken = 0;
        for seed in 0..20 {
            let mut net = BaselineNetwork::new(
                gen::ring(8),
                DaemonKind::CentralRandom { seed },
                CorruptionKind::AntiDistance,
                0.5,
                seed,
            );
            let mut ghosts = Vec::new();
            for s in 0..8 {
                for k in 0..2 {
                    ghosts.push(net.send(s, (s + 3 + k) % 8, (s as u64 + k as u64) % 8));
                }
            }
            net.run_to_quiescence(400_000);
            let lost = !net.lost_messages().is_empty();
            let duplicated = !net.duplicated_messages().is_empty();
            let undelivered = ghosts.iter().any(|g| net.deliveries_of(*g) == 0);
            if lost || duplicated || undelivered {
                broken += 1;
            }
        }
        assert!(
            broken > 0,
            "baseline should break under at least one corrupted start"
        );
    }
}
