//! Wire codec for the cluster runtime: length-prefixed frames carrying
//! the port's link-crossing traffic over real sockets.
//!
//! Every frame is `len:u32 LE` followed by `len` body bytes; the body is
//! a one-byte [`FrameTag`] followed by that tag's fixed-layout fields
//! (little-endian throughout). Ghost identities reuse
//! [`crate::codec::encode_ghost`]/[`crate::codec::decode_ghost`] — the
//! same `(tag, lo, hi)` convention the packed state codec frames its
//! word streams with — so the wire and the checker agree on one encoding.
//!
//! The decoder is **total**: truncated input parks in the reader until
//! more bytes arrive, and structurally invalid input (unknown tag, body
//! length that does not match the tag's layout, length prefix above
//! [`MAX_FRAME_LEN`]) returns a [`WireError`] instead of panicking or
//! allocating unboundedly. The property suite in `tests/prop_wire.rs`
//! drives both directions: encode→decode losslessness and
//! garbage-rejection without panic.
//!
//! [`FrameTag::ALL`] and [`LINK_EVENT_KINDS`] are the declared surface
//! for `ssmfp-lint`'s `wire-coverage` lint: every protocol event kind
//! that crosses a link must have exactly one frame tag, and every frame
//! tag must map back to exactly one declared kind.

use crate::codec::{decode_ghost, encode_ghost};
use crate::message::GhostId;

/// Upper bound on a frame body. The largest legal body today is
/// [`FrameTag::Offer`]'s 44 bytes (client stamp included); the bound
/// leaves headroom for growth while making a garbage length prefix
/// unable to stall the stream or balloon the reader's buffer.
pub const MAX_FRAME_LEN: u32 = 256;

/// The one-byte discriminant of every frame kind on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameTag {
    /// R3's offer of a tentative copy to the next hop.
    Offer = 1,
    /// The next hop's acceptance (tentative copy written).
    Accept = 2,
    /// R4's certification: the source erased, the copy is now the one.
    Confirm = 3,
    /// R5's disavowal: the tentative copy must be dropped.
    Deny = 4,
    /// Routing algorithm `A`'s distance-vector advertisement.
    Dv = 5,
    /// Connection bootstrap: the dialing node identifies itself.
    Hello = 6,
    /// Liveness probe on an idle link (supervision only, never audited).
    Heartbeat = 7,
}

impl FrameTag {
    /// Every tag, in wire order.
    pub const ALL: [FrameTag; 7] = [
        FrameTag::Offer,
        FrameTag::Accept,
        FrameTag::Confirm,
        FrameTag::Deny,
        FrameTag::Dv,
        FrameTag::Hello,
        FrameTag::Heartbeat,
    ];

    /// The wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`FrameTag::as_u8`].
    pub fn from_u8(b: u8) -> Option<FrameTag> {
        FrameTag::ALL.iter().copied().find(|t| t.as_u8() == b)
    }

    /// The link-crossing protocol event kind this tag carries — the
    /// lint's mapping surface. Exactly one tag must claim each entry of
    /// [`LINK_EVENT_KINDS`].
    pub fn event_kind(self) -> &'static str {
        match self {
            FrameTag::Offer => "port.offer",
            FrameTag::Accept => "port.accept",
            FrameTag::Confirm => "port.confirm",
            FrameTag::Deny => "port.deny",
            FrameTag::Dv => "routing.dv",
            FrameTag::Hello => "control.hello",
            FrameTag::Heartbeat => "control.heartbeat",
        }
    }
}

/// Every protocol event kind that crosses a link, declared once. The
/// `wire-coverage` lint checks this list against [`FrameTag::ALL`] in
/// both directions.
pub const LINK_EVENT_KINDS: [&str; 7] = [
    "port.offer",
    "port.accept",
    "port.confirm",
    "port.deny",
    "routing.dv",
    "control.hello",
    "control.heartbeat",
];

/// The logical-client identity stamped on a message by the client
/// multiplexer: which client issued it and its per-client sequence
/// number. [`ClientStamp::NONE`] marks traffic with no client attached
/// (node-level workloads, protocol internals) — the sentinel client id
/// `u64::MAX` is reserved and never minted by a mux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientStamp {
    /// Cluster-wide logical client id.
    pub client: u64,
    /// The client's own sequence number for this message.
    pub seq: u32,
}

impl ClientStamp {
    /// "No client attached" sentinel.
    pub const NONE: ClientStamp = ClientStamp {
        client: u64::MAX,
        seq: 0,
    };

    /// Whether a real client identity is attached.
    pub fn is_present(self) -> bool {
        self.client != u64::MAX
    }
}

/// The per-client audit's identity fields, declared once. Every field
/// here must be carried by the message codec ([`put_msg`] and its
/// decoder) or the stamp would be dropped on the wire and the
/// per-client exactly-once verdict could not be reconstructed. The
/// `wire-coverage` lint checks this list against
/// [`ENCODED_CLIENT_STAMP_FIELDS`] in both directions.
pub const CLIENT_STAMP_FIELDS: [&str; 2] = ["stamp.client_id", "stamp.client_seq"];

/// The message triplet as it crosses a link: payload, color, ghost —
/// plus the client stamp when a client multiplexer issued it. The
/// last-hop field of the state model's triplet is implicit in the link
/// the frame arrives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireMessage {
    /// Application payload.
    pub payload: u64,
    /// Per-hop color in `{0..Δ}`.
    pub color: u8,
    /// Ghost identity (test instrumentation; carried for the audit).
    pub ghost: GhostId,
    /// Logical-client identity ([`ClientStamp::NONE`] outside client mode).
    pub stamp: ClientStamp,
}

/// One decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFrame {
    /// `Offer { d, msg, nonce }` — see [`FrameTag::Offer`].
    Offer {
        /// Destination the handshake forwards toward.
        d: u16,
        /// The offered message.
        msg: WireMessage,
        /// Per-offer nonce pairing the reply.
        nonce: u64,
    },
    /// `Accept { d, msg, nonce }`.
    Accept {
        /// Destination slot.
        d: u16,
        /// The accepted message (echoed).
        msg: WireMessage,
        /// The offer's nonce.
        nonce: u64,
    },
    /// `Confirm { d, msg, nonce }`.
    Confirm {
        /// Destination slot.
        d: u16,
        /// The certified message (echoed).
        msg: WireMessage,
        /// The offer's nonce.
        nonce: u64,
    },
    /// `Deny { d, msg, nonce }`.
    Deny {
        /// Destination slot.
        d: u16,
        /// The disavowed message (echoed).
        msg: WireMessage,
        /// The offer's nonce.
        nonce: u64,
    },
    /// `Dv { d, dist }` — routing advertisement.
    Dv {
        /// Destination the estimate refers to.
        d: u16,
        /// Estimated distance.
        dist: u32,
    },
    /// `Hello { node, incarnation }` — dialing node identifies itself.
    Hello {
        /// The dialing node's id.
        node: u16,
        /// Its connection incarnation (bumped per reconnect).
        incarnation: u32,
    },
    /// `Heartbeat { node, clock }` — idle-link liveness probe.
    Heartbeat {
        /// The probing node's id.
        node: u16,
        /// Its monotonic probe counter.
        clock: u64,
    },
}

impl WireFrame {
    /// This frame's tag.
    pub fn tag(&self) -> FrameTag {
        match self {
            WireFrame::Offer { .. } => FrameTag::Offer,
            WireFrame::Accept { .. } => FrameTag::Accept,
            WireFrame::Confirm { .. } => FrameTag::Confirm,
            WireFrame::Deny { .. } => FrameTag::Deny,
            WireFrame::Dv { .. } => FrameTag::Dv,
            WireFrame::Hello { .. } => FrameTag::Hello,
            WireFrame::Heartbeat { .. } => FrameTag::Heartbeat,
        }
    }

    /// Whether this frame is data-plane traffic (audited, chaos-eligible)
    /// as opposed to supervision (`Hello`/`Heartbeat`, which the chaos
    /// shim must never touch lest it kill the link it is testing).
    pub fn is_data_plane(&self) -> bool {
        !matches!(self, WireFrame::Hello { .. } | WireFrame::Heartbeat { .. })
    }
}

/// A structural decoding failure. Every variant is a *rejection* — the
/// decoder never panics on adversarial bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    OversizedFrame(u32),
    /// The body was empty (no tag byte).
    EmptyBody,
    /// The tag byte is not a known [`FrameTag`].
    UnknownTag(u8),
    /// The body length does not match the tag's fixed layout.
    BadBodyLen {
        /// The offending tag.
        tag: FrameTag,
        /// Bytes the layout requires.
        expected: usize,
        /// Bytes the body carried.
        got: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::OversizedFrame(len) => {
                write!(
                    f,
                    "frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
                )
            }
            WireError::EmptyBody => write!(f, "empty frame body"),
            WireError::UnknownTag(b) => write!(f, "unknown frame tag {b:#04x}"),
            WireError::BadBodyLen { tag, expected, got } => {
                write!(f, "{tag:?} body is {got} bytes, layout requires {expected}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// The client-stamp fields [`put_msg`] actually writes (and
/// [`Cursor::msg`] reads back), declared adjacent to the codec so a
/// dropped field is a one-line diff away from this list. The
/// `wire-coverage` lint checks it against [`CLIENT_STAMP_FIELDS`].
pub const ENCODED_CLIENT_STAMP_FIELDS: [&str; 2] = ["stamp.client_id", "stamp.client_seq"];

fn put_msg(out: &mut Vec<u8>, msg: &WireMessage) {
    put_u64(out, msg.payload);
    out.push(msg.color);
    let (gtag, lo, hi) = encode_ghost(msg.ghost);
    put_u32(out, gtag);
    put_u32(out, lo);
    put_u32(out, hi);
    // Client stamp — see ENCODED_CLIENT_STAMP_FIELDS above.
    put_u64(out, msg.stamp.client);
    put_u32(out, msg.stamp.seq);
}

/// Bytes of a handshake body: tag + d + nonce + (payload, color, ghost,
/// client stamp).
const HANDSHAKE_BODY: usize = 1 + 2 + 8 + (8 + 1 + 12 + 12);

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take<const K: usize>(&mut self) -> [u8; K] {
        let mut out = [0u8; K];
        out.copy_from_slice(&self.bytes[self.at..self.at + K]);
        self.at += K;
        out
    }

    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take::<2>())
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    fn msg(&mut self) -> WireMessage {
        let payload = self.u64();
        let color = self.bytes[self.at];
        self.at += 1;
        let (gtag, lo, hi) = (self.u32(), self.u32(), self.u32());
        let stamp = ClientStamp {
            client: self.u64(),
            seq: self.u32(),
        };
        WireMessage {
            payload,
            color,
            ghost: decode_ghost(gtag, lo, hi),
            stamp,
        }
    }
}

/// Encodes one frame — length prefix included — appending to `out`.
pub fn encode_frame(frame: &WireFrame, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, 0); // length placeholder
    out.push(frame.tag().as_u8());
    match frame {
        WireFrame::Offer { d, msg, nonce }
        | WireFrame::Accept { d, msg, nonce }
        | WireFrame::Confirm { d, msg, nonce }
        | WireFrame::Deny { d, msg, nonce } => {
            put_u16(out, *d);
            put_u64(out, *nonce);
            put_msg(out, msg);
        }
        WireFrame::Dv { d, dist } => {
            put_u16(out, *d);
            put_u32(out, *dist);
        }
        WireFrame::Hello { node, incarnation } => {
            put_u16(out, *node);
            put_u32(out, *incarnation);
        }
        WireFrame::Heartbeat { node, clock } => {
            put_u16(out, *node);
            put_u64(out, *clock);
        }
    }
    let body_len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Decodes one frame *body* (the bytes after the length prefix).
pub fn decode_body(body: &[u8]) -> Result<WireFrame, WireError> {
    let Some((&tag_byte, rest)) = body.split_first() else {
        return Err(WireError::EmptyBody);
    };
    let tag = FrameTag::from_u8(tag_byte).ok_or(WireError::UnknownTag(tag_byte))?;
    let expected = match tag {
        FrameTag::Offer | FrameTag::Accept | FrameTag::Confirm | FrameTag::Deny => {
            HANDSHAKE_BODY - 1
        }
        FrameTag::Dv | FrameTag::Hello => 2 + 4,
        FrameTag::Heartbeat => 2 + 8,
    };
    if rest.len() != expected {
        return Err(WireError::BadBodyLen {
            tag,
            expected,
            got: rest.len(),
        });
    }
    let mut c = Cursor { bytes: rest, at: 0 };
    Ok(match tag {
        FrameTag::Offer => {
            let d = c.u16();
            let nonce = c.u64();
            let msg = c.msg();
            WireFrame::Offer { d, msg, nonce }
        }
        FrameTag::Accept => {
            let d = c.u16();
            let nonce = c.u64();
            let msg = c.msg();
            WireFrame::Accept { d, msg, nonce }
        }
        FrameTag::Confirm => {
            let d = c.u16();
            let nonce = c.u64();
            let msg = c.msg();
            WireFrame::Confirm { d, msg, nonce }
        }
        FrameTag::Deny => {
            let d = c.u16();
            let nonce = c.u64();
            let msg = c.msg();
            WireFrame::Deny { d, msg, nonce }
        }
        FrameTag::Dv => WireFrame::Dv {
            d: c.u16(),
            dist: c.u32(),
        },
        FrameTag::Hello => WireFrame::Hello {
            node: c.u16(),
            incarnation: c.u32(),
        },
        FrameTag::Heartbeat => WireFrame::Heartbeat {
            node: c.u16(),
            clock: c.u64(),
        },
    })
}

/// Incremental frame decoder over a byte stream: feed arbitrary chunks
/// with [`FrameReader::extend`], pop complete frames with
/// [`FrameReader::next_frame`]. A structural error poisons the stream —
/// the caller must drop the connection (resynchronizing inside a
/// length-prefixed stream after corruption is not meaningful).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    at: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.at == self.buf.len() {
            // Fully consumed: recycle capacity for free instead of
            // letting the dead prefix grow toward the compaction
            // threshold — the common case on the event loop's incremental
            // readiness reads, where most reads end frame-aligned.
            self.buf.clear();
            self.at = 0;
        } else if self.at > 4096 && self.at * 2 > self.buf.len() {
            // Compact lazily: only when the consumed prefix dominates.
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pops the next complete frame. `Ok(None)` means "need more bytes".
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, WireError> {
        let avail = &self.buf[self.at..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_LEN {
            return Err(WireError::OversizedFrame(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = decode_body(&avail[4..total])?;
        self.at += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<WireFrame> {
        let msg = WireMessage {
            payload: 0xDEAD_BEEF_0BAD_F00D,
            color: 3,
            ghost: GhostId::Valid(42),
            stamp: ClientStamp {
                client: 0x0123_4567_89AB_CDEF,
                seq: 77,
            },
        };
        let inv = WireMessage {
            payload: 7,
            color: 0,
            ghost: GhostId::Invalid(u64::MAX),
            stamp: ClientStamp::NONE,
        };
        vec![
            WireFrame::Offer {
                d: 4,
                msg,
                nonce: 0x1234_5678_9ABC_DEF0,
            },
            WireFrame::Accept {
                d: 0,
                msg: inv,
                nonce: 0,
            },
            WireFrame::Confirm {
                d: u16::MAX,
                msg,
                nonce: u64::MAX,
            },
            WireFrame::Deny {
                d: 1,
                msg,
                nonce: 9,
            },
            WireFrame::Dv { d: 3, dist: 17 },
            WireFrame::Hello {
                node: 2,
                incarnation: 5,
            },
            WireFrame::Heartbeat { node: 2, clock: 99 },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for frame in sample_frames() {
            let mut bytes = Vec::new();
            encode_frame(&frame, &mut bytes);
            let mut r = FrameReader::new();
            r.extend(&bytes);
            assert_eq!(r.next_frame(), Ok(Some(frame)));
            assert_eq!(r.next_frame(), Ok(None));
            assert_eq!(r.pending(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_stream() {
        let frames = sample_frames();
        let mut bytes = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes);
        }
        let mut r = FrameReader::new();
        let mut decoded = Vec::new();
        for b in bytes {
            r.extend(&[b]);
            while let Some(f) = r.next_frame().expect("clean stream") {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut r = FrameReader::new();
        r.extend(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            r.next_frame(),
            Err(WireError::OversizedFrame(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1);
        bytes.push(0xEE);
        let mut r = FrameReader::new();
        r.extend(&bytes);
        assert_eq!(r.next_frame(), Err(WireError::UnknownTag(0xEE)));
    }

    #[test]
    fn wrong_body_length_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 3);
        bytes.push(FrameTag::Dv.as_u8());
        bytes.extend_from_slice(&[0, 0]);
        let mut r = FrameReader::new();
        r.extend(&bytes);
        assert!(matches!(
            r.next_frame(),
            Err(WireError::BadBodyLen {
                tag: FrameTag::Dv,
                ..
            })
        ));
    }

    #[test]
    fn every_declared_stamp_field_is_really_on_the_wire() {
        // For each field in ENCODED_CLIENT_STAMP_FIELDS, flipping that
        // component of the stamp must change the encoded bytes and
        // roundtrip to the flipped value — proving the declaration is
        // anchored to the codec, not aspirational.
        let base = WireMessage {
            payload: 5,
            color: 1,
            ghost: GhostId::Valid(9),
            stamp: ClientStamp {
                client: 10,
                seq: 20,
            },
        };
        let variants: Vec<(&str, WireMessage)> = vec![
            (
                "stamp.client_id",
                WireMessage {
                    stamp: ClientStamp {
                        client: 11,
                        ..base.stamp
                    },
                    ..base
                },
            ),
            (
                "stamp.client_seq",
                WireMessage {
                    stamp: ClientStamp {
                        seq: 21,
                        ..base.stamp
                    },
                    ..base
                },
            ),
        ];
        assert_eq!(variants.len(), ENCODED_CLIENT_STAMP_FIELDS.len());
        for (field, msg) in variants {
            assert!(ENCODED_CLIENT_STAMP_FIELDS.contains(&field));
            let (mut a, mut b) = (Vec::new(), Vec::new());
            encode_frame(
                &WireFrame::Offer {
                    d: 0,
                    msg: base,
                    nonce: 1,
                },
                &mut a,
            );
            encode_frame(
                &WireFrame::Offer {
                    d: 0,
                    msg,
                    nonce: 1,
                },
                &mut b,
            );
            assert_ne!(a, b, "{field} is not encoded");
            let mut r = FrameReader::new();
            r.extend(&b);
            assert_eq!(
                r.next_frame(),
                Ok(Some(WireFrame::Offer {
                    d: 0,
                    msg,
                    nonce: 1
                }))
            );
        }
    }

    #[test]
    fn tag_kind_mapping_is_a_bijection() {
        let mut kinds: Vec<&str> = FrameTag::ALL.iter().map(|t| t.event_kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), FrameTag::ALL.len());
        for kind in LINK_EVENT_KINDS {
            assert!(FrameTag::ALL.iter().any(|t| t.event_kind() == kind));
        }
        assert_eq!(LINK_EVENT_KINDS.len(), FrameTag::ALL.len());
    }
}
