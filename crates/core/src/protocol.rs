//! [`SsmfpProtocol`]: the per-destination SSMFP instances multiplexed at
//! each processor, composed with the routing algorithm `A` under the
//! paper's priority rule (*"a processor which has enabled actions for both
//! algorithms always chooses the action of A"*).

use crate::choice::ChoiceStrategy;
use crate::faults::SeededBug;
use crate::footprint::{scope_affects_of, ScopeAffects};
use crate::message::{Color, GhostId, Payload};
use crate::rules::{enabled_rules_with, execute_rule_with, rule_enabled, Rule};
use crate::state::NodeState;
use ssmfp_kernel::{Protocol, View};
use ssmfp_routing::{RoutingAction, RoutingProtocol};
use ssmfp_topology::NodeId;

/// An SSMFP action: one rule of one destination instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FwdAction {
    /// Which rule fires.
    pub rule: Rule,
    /// Which destination instance it belongs to.
    pub dest: NodeId,
}

/// An action of the composed protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsmfpAction {
    /// A routing correction of `A` (always listed first: priority).
    Routing(RoutingAction),
    /// A forwarding rule of SSMFP.
    Fwd(FwdAction),
}

/// Observable events emitted by SSMFP statements. The emitting processor is
/// recorded by the engine's event stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Rule R1 accepted a message from the higher layer.
    Generated {
        /// Identity of the new valid message.
        ghost: GhostId,
        /// Its destination.
        dest: NodeId,
        /// Its useful information.
        payload: Payload,
    },
    /// Rule R6 delivered a message to the higher layer of the emitting
    /// processor (which is its destination).
    Delivered {
        /// Identity of the delivered message.
        ghost: GhostId,
        /// Its useful information.
        payload: Payload,
    },
    /// Rule R2 moved a message from `bufR` to `bufE` (re-colored).
    InternalMove {
        /// Identity of the moved message.
        ghost: GhostId,
    },
    /// Rule R3 copied a message from a neighbour's `bufE` into `bufR`.
    Forwarded {
        /// Identity of the copied message.
        ghost: GhostId,
    },
    /// Rule R4 erased the source copy after a successful forward.
    ErasedAfterCopy {
        /// Identity of the erased copy.
        ghost: GhostId,
    },
    /// Rule R5 erased a duplicate copy created by a routing-table move.
    ErasedDuplicate {
        /// Identity of the erased copy.
        ghost: GhostId,
    },
}

/// The composed protocol: `A` (min+1 BFS routing) with priority over the
/// SSMFP forwarding rules.
#[derive(Debug, Clone)]
pub struct SsmfpProtocol {
    n: usize,
    delta: usize,
    routing: RoutingProtocol<NodeState>,
    routing_priority: bool,
    choice_strategy: ChoiceStrategy,
    literal_r5: bool,
    seeded_bug: Option<SeededBug>,
    /// Per-rule scope coupling (indexed by [`Rule::index`]), derived once
    /// from the declared footprints: drives the engine's incremental
    /// guard re-evaluation ([`Protocol::scope_affected_by`]).
    rule_affects: [ScopeAffects; 6],
    /// Scope coupling of a routing correction.
    routing_affects: ScopeAffects,
}

impl SsmfpProtocol {
    /// Creates the composed protocol for a network of `n` processors with
    /// maximal degree `delta`, with the paper's priority of `A` over SSMFP.
    pub fn new(n: usize, delta: usize) -> Self {
        let mut rule_affects = [ScopeAffects::default(); 6];
        for rule in Rule::EVAL_ORDER {
            rule_affects[rule.index()] =
                scope_affects_of(&crate::footprint::composed_fwd_footprint(rule, 0, true).writes);
        }
        let routing_affects =
            scope_affects_of(&ssmfp_routing::footprint::routing_footprint(0).writes);
        SsmfpProtocol {
            n,
            delta,
            routing: RoutingProtocol::new(n),
            routing_priority: true,
            choice_strategy: ChoiceStrategy::RotationQueue,
            literal_r5: false,
            seeded_bug: None,
            rule_affects,
            routing_affects,
        }
    }

    /// Takes rule R5 *literally* from the paper (`q ∈ N_p ∪ {p}`), i.e.
    /// without the documented deviation. Used only by the exhaustive
    /// checker to reproduce the Lemma 4 counterexample.
    pub fn with_literal_r5(mut self) -> Self {
        self.literal_r5 = true;
        self
    }

    /// Disables the priority of `A` (for ablation experiments only — the
    /// paper's Proposition 2/3 proofs require the priority).
    pub fn without_routing_priority(mut self) -> Self {
        self.routing_priority = false;
        self
    }

    /// Selects the `choice_p(d)` strategy (E13 ablation; the default is
    /// the paper's rotation queue).
    pub fn with_choice_strategy(mut self, strategy: ChoiceStrategy) -> Self {
        self.choice_strategy = strategy;
        self
    }

    /// Plants a deterministic protocol bug. **Test harness only**: the
    /// soak oracle's mutation self-test runs the protocol with a bug
    /// planted and must flag an `SP` violation — otherwise the oracle is
    /// vacuous (same runtime-gating precedent as [`Self::with_literal_r5`]).
    pub fn with_seeded_bug(mut self, bug: SeededBug) -> Self {
        self.seeded_bug = Some(bug);
        self
    }

    /// Whether the seeded bug suppresses `rule` entirely.
    fn bug_suppresses(&self, rule: Rule) -> bool {
        self.seeded_bug == Some(SeededBug::SkipR4Erase) && rule == Rule::R4
    }

    /// The configured `choice_p(d)` strategy.
    pub fn choice_strategy(&self) -> ChoiceStrategy {
        self.choice_strategy
    }

    /// Number of processors/destinations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The network's maximal degree Δ (the color budget is `Δ+1`).
    pub fn delta(&self) -> usize {
        self.delta
    }
}

impl Protocol for SsmfpProtocol {
    type State = NodeState;
    type Action = SsmfpAction;
    type Event = Event;

    fn enabled_actions(&self, view: &View<'_, Self::State>, out: &mut Vec<Self::Action>) {
        // Priority phase: actions of A.
        let mut routing_actions = Vec::new();
        self.routing.enabled_into(view, &mut routing_actions);
        out.extend(routing_actions.into_iter().map(SsmfpAction::Routing));
        if self.routing_priority && !out.is_empty() {
            return;
        }

        // SSMFP phase: destinations visited from the processor's fairness
        // cursor so a deterministic first-action daemon cannot starve high
        // destination indices.
        let start = view.me().dest_cursor % self.n;
        let mut rules_buf = Vec::new();
        for offset in 0..self.n {
            let d = (start + offset) % self.n;
            rules_buf.clear();
            if self.literal_r5 {
                crate::rules::enabled_rules_literal_r5(
                    view,
                    d,
                    self.choice_strategy,
                    &mut rules_buf,
                );
            } else {
                enabled_rules_with(view, d, self.choice_strategy, &mut rules_buf);
            }
            out.extend(
                rules_buf
                    .iter()
                    .filter(|&&rule| !self.bug_suppresses(rule))
                    .map(|&rule| SsmfpAction::Fwd(FwdAction { rule, dest: d })),
            );
        }
    }

    fn guard_scopes(&self) -> usize {
        self.n
    }

    fn enabled_in_scope(
        &self,
        view: &View<'_, Self::State>,
        scope: usize,
        out: &mut Vec<Self::Action>,
    ) {
        // Scope `d` is the destination instance `d`: the routing correction
        // C(d) (listed first; the priority mask is applied when composing)
        // plus rules R1–R6 of instance `d` in EVAL_ORDER.
        let me = &view.me().routing;
        let (td, tp) = self.routing.target(view, scope);
        if me.dist[scope] != td || me.parent[scope] != tp {
            out.push(SsmfpAction::Routing(RoutingAction { dest: scope }));
        }
        for rule in Rule::EVAL_ORDER {
            if !self.bug_suppresses(rule)
                && rule_enabled(view, scope, rule, self.choice_strategy, self.literal_r5)
            {
                out.push(SsmfpAction::Fwd(FwdAction { rule, dest: scope }));
            }
        }
    }

    fn compose_scopes(
        &self,
        state: &Self::State,
        per_scope: &[Vec<Self::Action>],
        out: &mut Vec<Self::Action>,
    ) {
        // Priority phase: A's corrections, ascending destination. Each
        // scope lists its routing action (if enabled) first.
        for scope in per_scope {
            if let Some(a @ SsmfpAction::Routing(_)) = scope.first() {
                out.push(*a);
            }
        }
        if self.routing_priority && !out.is_empty() {
            return;
        }
        // SSMFP phase: destinations from the fairness cursor; rules are
        // already in EVAL_ORDER within each scope.
        let start = state.dest_cursor % self.n;
        for offset in 0..self.n {
            let d = (start + offset) % self.n;
            for &a in &per_scope[d] {
                if matches!(a, SsmfpAction::Fwd(_)) {
                    out.push(a);
                }
            }
        }
    }

    fn scope_affected_by(
        &self,
        action: Self::Action,
        writer: NodeId,
        _writer_neighbors: &[NodeId],
        reader: NodeId,
        _reader_neighbors: &[NodeId],
        scope: usize,
    ) -> bool {
        let (aff, dest) = match action {
            SsmfpAction::Routing(a) => (self.routing_affects, a.dest),
            SsmfpAction::Fwd(FwdAction { rule, dest }) => (self.rule_affects[rule.index()], dest),
        };
        if reader == writer {
            aff.self_any || (aff.self_same && scope == dest)
        } else {
            aff.nbr_any || (aff.nbr_same && scope == dest)
        }
    }

    fn execute(
        &self,
        view: &View<'_, Self::State>,
        action: Self::Action,
        events: &mut Vec<Self::Event>,
    ) -> Self::State {
        match action {
            SsmfpAction::Routing(a) => self.routing.apply(view, a),
            SsmfpAction::Fwd(FwdAction { rule, dest }) => {
                let mut next =
                    execute_rule_with(view, dest, rule, self.delta, self.choice_strategy, events);
                if self.seeded_bug == Some(SeededBug::ColorReuse) && rule == Rule::R2 {
                    // The planted bug: R2 ignores `color_p(d)` and always
                    // stamps color 0, breaking the distinctness the R4
                    // certification relies on.
                    if let Some(m) = next.slots[dest].buf_e.as_mut() {
                        m.color = Color(0);
                    }
                }
                next.dest_cursor = (dest + 1) % self.n;
                next
            }
        }
    }

    fn describe(&self, action: Self::Action) -> String {
        match action {
            SsmfpAction::Routing(a) => format!("A:correct(d={})", a.dest),
            SsmfpAction::Fwd(FwdAction { rule, dest }) => format!("{rule:?}(d={dest})"),
        }
    }

    fn footprint(&self, action: Self::Action) -> ssmfp_kernel::Footprint {
        crate::footprint::action_footprint(action, self.routing_priority)
    }

    fn observe_writes(
        &self,
        pre: &Self::State,
        post: &Self::State,
    ) -> Option<Vec<ssmfp_kernel::Access>> {
        let mut out = Vec::new();
        crate::footprint::diff_node_state(pre, post, &mut out);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Outgoing;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn clean_states(g: &ssmfp_topology::Graph) -> Vec<NodeState> {
        corruption::corrupt(g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(g.n(), r))
            .collect()
    }

    #[test]
    fn quiescent_network_has_no_enabled_actions() {
        let g = gen::ring(5);
        let states = clean_states(&g);
        let proto = SsmfpProtocol::new(5, g.max_degree());
        for p in 0..5 {
            let mut out = Vec::new();
            proto.enabled_actions(&View::new(&g, &states, p), &mut out);
            assert!(out.is_empty(), "processor {p} should be idle: {out:?}");
        }
    }

    #[test]
    fn request_enables_generation() {
        let g = gen::line(3);
        let mut states = clean_states(&g);
        states[0].outbox.push_back(Outgoing {
            dest: 2,
            payload: 11,
            ghost: GhostId::Valid(0),
        });
        states[0].request = true;
        let proto = SsmfpProtocol::new(3, g.max_degree());
        let mut out = Vec::new();
        proto.enabled_actions(&View::new(&g, &states, 0), &mut out);
        assert_eq!(
            out,
            vec![SsmfpAction::Fwd(FwdAction {
                rule: Rule::R1,
                dest: 2
            })]
        );
    }

    #[test]
    fn routing_priority_masks_forwarding() {
        let g = gen::line(3);
        let mut states = clean_states(&g);
        states[0].outbox.push_back(Outgoing {
            dest: 2,
            payload: 11,
            ghost: GhostId::Valid(0),
        });
        states[0].request = true;
        // Corrupt processor 0's own routing entry: A becomes enabled there.
        states[0].routing.dist[2] = 0;
        let proto = SsmfpProtocol::new(3, g.max_degree());
        let mut out = Vec::new();
        proto.enabled_actions(&View::new(&g, &states, 0), &mut out);
        assert!(
            out.iter().all(|a| matches!(a, SsmfpAction::Routing(_))),
            "A has priority: {out:?}"
        );
        assert!(!out.is_empty());

        // Without priority, both appear, routing still listed first.
        let proto = SsmfpProtocol::new(3, g.max_degree()).without_routing_priority();
        let mut out = Vec::new();
        proto.enabled_actions(&View::new(&g, &states, 0), &mut out);
        assert!(matches!(out[0], SsmfpAction::Routing(_)));
        assert!(out.iter().any(|a| matches!(a, SsmfpAction::Fwd(_))));
    }

    #[test]
    fn describe_is_informative() {
        let proto = SsmfpProtocol::new(4, 2);
        assert_eq!(
            proto.describe(SsmfpAction::Fwd(FwdAction {
                rule: Rule::R3,
                dest: 1
            })),
            "R3(d=1)"
        );
        assert_eq!(
            proto.describe(SsmfpAction::Routing(RoutingAction { dest: 2 })),
            "A:correct(d=2)"
        );
    }
}
