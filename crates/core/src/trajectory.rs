//! Per-message trajectories: the executable form of **Lemma 1**'s life
//! cycle.
//!
//! The proofs track a message through the caterpillar cycle *type 1 →
//! type 2 → type 3 → type 1 at the next hop* until delivery. A
//! [`TrajectoryLog`] records, per ghost identity, the ordered rule events
//! the message went through, and [`Trajectory::validate`] checks the
//! structural invariants that cycle implies:
//!
//! 1. a valid message's trajectory starts with exactly one `Generated`;
//! 2. if delivered, `Delivered` is the final event and occurs exactly once;
//! 3. **copy conservation**: the number of live copies (1 at generation,
//!    +1 per `Forwarded`, −1 per erasure or delivery) never drops below 1
//!    before delivery and ends at 0 after it;
//! 4. the *hop count* (`Forwarded` events net of duplicate erasures) is at
//!    least the graph distance from source to destination — with equality
//!    on clean runs (no route stretch), and a measurable stretch under
//!    initially-corrupted tables (the E15 experiment).

use crate::message::GhostId;
use crate::protocol::Event;
use ssmfp_kernel::engine::EventRecord;
use ssmfp_topology::NodeId;
use std::collections::HashMap;

/// One recorded trajectory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryEvent {
    /// Step stamp.
    pub step: u64,
    /// Round stamp.
    pub round: u64,
    /// Acting processor.
    pub node: NodeId,
    /// What happened (the rule, in event form).
    pub kind: TrajectoryKind,
}

/// The event kinds a message can experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryKind {
    /// R1 at the source.
    Generated,
    /// R2: moved `bufR → bufE` within a processor.
    InternalMove,
    /// R3: copied into a neighbour's `bufR`.
    Forwarded,
    /// R4: source copy erased after the forward was certified.
    ErasedAfterCopy,
    /// R5: duplicate copy erased after a routing move.
    ErasedDuplicate,
    /// R6: delivered at the destination.
    Delivered,
}

/// A violation of the Lemma 1 life-cycle structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryViolation {
    /// A valid message's first event was not its generation.
    DoesNotStartWithGeneration,
    /// More than one `Generated` event.
    MultipleGenerations,
    /// An event occurred after delivery.
    EventAfterDelivery,
    /// The live-copy count reached zero before delivery.
    CopiesExhaustedEarly {
        /// Step at which the count hit zero.
        step: u64,
    },
    /// Copies remained after delivery... impossible by R6 but checked.
    CopiesRemainAfterEnd {
        /// Residual copy count.
        copies: i64,
    },
}

/// The ordered event list of one message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trajectory {
    /// Events in step order.
    pub events: Vec<TrajectoryEvent>,
}

impl Trajectory {
    /// Number of inter-processor copies (R3 firings).
    pub fn forwards(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == TrajectoryKind::Forwarded)
            .count() as u64
    }

    /// Number of duplicate erasures (R5 firings).
    pub fn duplicate_erasures(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == TrajectoryKind::ErasedDuplicate)
            .count() as u64
    }

    /// Net hops actually contributing to progress: forwards minus copies
    /// that were later erased as duplicates.
    pub fn net_hops(&self) -> u64 {
        self.forwards().saturating_sub(self.duplicate_erasures())
    }

    /// Whether the message was delivered.
    pub fn delivered(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.kind == TrajectoryKind::Delivered)
    }

    /// Validates the Lemma 1 structure for a *valid* (generated) message.
    pub fn validate(&self) -> Vec<TrajectoryViolation> {
        let mut violations = Vec::new();
        if self.events.is_empty() || self.events[0].kind != TrajectoryKind::Generated {
            violations.push(TrajectoryViolation::DoesNotStartWithGeneration);
            return violations;
        }
        let generations = self
            .events
            .iter()
            .filter(|e| e.kind == TrajectoryKind::Generated)
            .count();
        if generations > 1 {
            violations.push(TrajectoryViolation::MultipleGenerations);
        }
        let mut copies: i64 = 0;
        let mut done = false;
        for e in &self.events {
            if done {
                violations.push(TrajectoryViolation::EventAfterDelivery);
                break;
            }
            match e.kind {
                TrajectoryKind::Generated => copies += 1,
                TrajectoryKind::Forwarded => copies += 1,
                TrajectoryKind::InternalMove => {}
                TrajectoryKind::ErasedAfterCopy | TrajectoryKind::ErasedDuplicate => copies -= 1,
                TrajectoryKind::Delivered => {
                    copies -= 1;
                    done = true;
                }
            }
            if copies <= 0 && !done {
                violations.push(TrajectoryViolation::CopiesExhaustedEarly { step: e.step });
                break;
            }
        }
        if done && copies != 0 && violations.is_empty() {
            // Residual copies after delivery are legal mid-run (stale
            // duplicates pending R5); only flag a *negative* count, which
            // would mean an erasure of a non-existent copy.
            if copies < 0 {
                violations.push(TrajectoryViolation::CopiesRemainAfterEnd { copies });
            }
        }
        violations
    }
}

/// Collects trajectories from the engine's event stream.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryLog {
    trajectories: HashMap<GhostId, Trajectory>,
}

impl TrajectoryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one stamped event.
    pub fn record(&mut self, rec: &EventRecord<Event>) {
        let (ghost, kind) = match rec.event {
            Event::Generated { ghost, .. } => (ghost, TrajectoryKind::Generated),
            Event::Delivered { ghost, .. } => (ghost, TrajectoryKind::Delivered),
            Event::InternalMove { ghost } => (ghost, TrajectoryKind::InternalMove),
            Event::Forwarded { ghost } => (ghost, TrajectoryKind::Forwarded),
            Event::ErasedAfterCopy { ghost } => (ghost, TrajectoryKind::ErasedAfterCopy),
            Event::ErasedDuplicate { ghost } => (ghost, TrajectoryKind::ErasedDuplicate),
        };
        self.trajectories
            .entry(ghost)
            .or_default()
            .events
            .push(TrajectoryEvent {
                step: rec.step,
                round: rec.round,
                node: rec.node,
                kind,
            });
    }

    /// Absorbs a batch.
    pub fn absorb(&mut self, recs: &[EventRecord<Event>]) {
        for r in recs {
            self.record(r);
        }
    }

    /// The trajectory of one message, if any events were recorded.
    pub fn of(&self, ghost: GhostId) -> Option<&Trajectory> {
        self.trajectories.get(&ghost)
    }

    /// All tracked ghosts.
    pub fn ghosts(&self) -> impl Iterator<Item = GhostId> + '_ {
        self.trajectories.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: u64, node: NodeId, kind: TrajectoryKind) -> TrajectoryEvent {
        TrajectoryEvent {
            step,
            round: step,
            node,
            kind,
        }
    }

    fn traj(kinds: &[(u64, NodeId, TrajectoryKind)]) -> Trajectory {
        Trajectory {
            events: kinds.iter().map(|&(s, n, k)| ev(s, n, k)).collect(),
        }
    }

    use TrajectoryKind::*;

    #[test]
    fn clean_path_validates() {
        // 0 → 1 → 2: generate, move, forward, erase, move, forward, erase,
        // move, deliver.
        let t = traj(&[
            (0, 0, Generated),
            (1, 0, InternalMove),
            (2, 1, Forwarded),
            (3, 0, ErasedAfterCopy),
            (4, 1, InternalMove),
            (5, 2, Forwarded),
            (6, 1, ErasedAfterCopy),
            (7, 2, InternalMove),
            (8, 2, Delivered),
        ]);
        assert!(t.validate().is_empty());
        assert_eq!(t.forwards(), 2);
        assert_eq!(t.net_hops(), 2);
        assert!(t.delivered());
    }

    #[test]
    fn duplicate_branch_validates() {
        // Routing churn duplicates the message; R5 cleans the stale copy.
        let t = traj(&[
            (0, 0, Generated),
            (1, 0, InternalMove),
            (2, 1, Forwarded),
            (3, 2, Forwarded), // second copy (tables moved)
            (4, 2, ErasedDuplicate),
            (5, 0, ErasedAfterCopy),
            (6, 1, InternalMove),
            (7, 1, Delivered),
        ]);
        assert!(t.validate().is_empty());
        assert_eq!(t.forwards(), 2);
        assert_eq!(t.net_hops(), 1);
    }

    #[test]
    fn missing_generation_flagged() {
        let t = traj(&[(0, 1, Forwarded)]);
        assert_eq!(
            t.validate(),
            vec![TrajectoryViolation::DoesNotStartWithGeneration]
        );
    }

    #[test]
    fn early_exhaustion_flagged() {
        // Erased before any forward: the message vanished.
        let t = traj(&[(0, 0, Generated), (1, 0, ErasedAfterCopy)]);
        assert_eq!(
            t.validate(),
            vec![TrajectoryViolation::CopiesExhaustedEarly { step: 1 }]
        );
    }

    #[test]
    fn event_after_delivery_flagged() {
        let t = traj(&[
            (0, 0, Generated),
            (1, 0, InternalMove),
            (2, 0, Delivered),
            (3, 1, Forwarded),
        ]);
        assert!(t
            .validate()
            .contains(&TrajectoryViolation::EventAfterDelivery));
    }

    #[test]
    fn double_generation_flagged() {
        let t = traj(&[(0, 0, Generated), (1, 0, Generated)]);
        assert!(t
            .validate()
            .contains(&TrajectoryViolation::MultipleGenerations));
    }

    #[test]
    fn log_groups_by_ghost() {
        use crate::message::GhostId;
        let mut log = TrajectoryLog::new();
        let a = GhostId::Valid(0);
        let b = GhostId::Valid(1);
        for (step, ghost) in [(0u64, a), (1, b), (2, a)] {
            log.record(&EventRecord {
                step,
                round: step,
                node: 0,
                event: Event::InternalMove { ghost },
            });
        }
        assert_eq!(log.of(a).unwrap().events.len(), 2);
        assert_eq!(log.of(b).unwrap().events.len(), 1);
        assert!(log.of(GhostId::Valid(9)).is_none());
        assert_eq!(log.ghosts().count(), 2);
    }
}
