//! [`Network`]: the user-facing facade over the composed protocol.
//!
//! A `Network` owns a state-model [`Engine`] running [`SsmfpProtocol`]
//! (SSMFP + routing algorithm `A` with priority), plays the *higher layer*
//! of Algorithm 1 (enqueueing messages and raising `request_p`), and feeds
//! every observable event into a [`DeliveryLedger`] so callers can audit
//! Specification `SP` at any time.

use crate::choice::ChoiceStrategy;
use crate::faults::{Fault, FaultCursor, FaultInjector, FaultPlan, SeededBug};
use crate::ledger::{DeliveryLedger, SpViolation};
use crate::message::{GhostId, Payload};
use crate::protocol::{Event, SsmfpAction, SsmfpProtocol};
use crate::state::{NodeState, Outgoing};
use crate::trajectory::TrajectoryLog;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ssmfp_kernel::{
    AdversarialDaemon, CentralRandomDaemon, Daemon, DistributedRandomDaemon, Engine,
    LocallyCentralDaemon, RoundRobinDaemon, StepOutcome, SynchronousDaemon,
};
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{Graph, NodeId};

/// Which daemon schedules the execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonKind {
    /// Every enabled processor moves each step.
    Synchronous,
    /// Central weakly-fair rotation (the proofs' assumption).
    RoundRobin,
    /// Central uniform random.
    CentralRandom {
        /// RNG seed.
        seed: u64,
    },
    /// Central uniform random over processors *and* over each chosen
    /// processor's enabled actions (full scheduling nondeterminism; used
    /// with `routing_priority = false` to emulate a slow routing layer).
    CentralRandomAction {
        /// RNG seed.
        seed: u64,
    },
    /// Distributed: each enabled processor moves with probability `p_move`.
    DistributedRandom {
        /// RNG seed.
        seed: u64,
        /// Per-processor inclusion probability.
        p_move: f64,
    },
    /// Locally central: a random maximal set of enabled processors, no two
    /// adjacent.
    LocallyCentral {
        /// RNG seed.
        seed: u64,
    },
    /// Unfair: starves `victims` while anyone else is enabled.
    Adversarial {
        /// RNG seed.
        seed: u64,
        /// Starved processors.
        victims: Vec<NodeId>,
    },
    /// Unfair *and* action-nondeterministic: starves `victims` and runs a
    /// uniformly random enabled action at the chosen processor (the fully
    /// adversarial daemon of the model).
    AdversarialRandomAction {
        /// RNG seed.
        seed: u64,
        /// Starved processors.
        victims: Vec<NodeId>,
    },
}

impl DaemonKind {
    /// Instantiates the daemon. `LocallyCentral` needs the topology, so
    /// prefer [`DaemonKind::build_for`] where a graph is at hand.
    pub fn build(&self) -> Box<dyn Daemon> {
        assert!(
            !matches!(self, DaemonKind::LocallyCentral { .. }),
            "LocallyCentral needs the graph: use build_for"
        );
        self.build_inner(None)
    }

    /// Instantiates the daemon for a specific network graph.
    pub fn build_for(&self, graph: &Graph) -> Box<dyn Daemon> {
        self.build_inner(Some(graph))
    }

    fn build_inner(&self, graph: Option<&Graph>) -> Box<dyn Daemon> {
        match self {
            DaemonKind::Synchronous => Box::new(SynchronousDaemon),
            DaemonKind::RoundRobin => Box::new(RoundRobinDaemon::new()),
            DaemonKind::CentralRandom { seed } => Box::new(CentralRandomDaemon::new(*seed)),
            DaemonKind::CentralRandomAction { seed } => {
                Box::new(CentralRandomDaemon::with_random_action(*seed))
            }
            DaemonKind::DistributedRandom { seed, p_move } => {
                Box::new(DistributedRandomDaemon::new(*seed, *p_move))
            }
            DaemonKind::Adversarial { seed, victims } => {
                Box::new(AdversarialDaemon::new(*seed, victims.clone()))
            }
            DaemonKind::AdversarialRandomAction { seed, victims } => Box::new(
                AdversarialDaemon::with_random_action(*seed, victims.clone()),
            ),
            DaemonKind::LocallyCentral { seed } => Box::new(LocallyCentralDaemon::from_graph(
                *seed,
                graph.expect("LocallyCentral needs the graph: use build_for"),
            )),
        }
    }
}

/// How a [`Network`] is initialized.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Scheduling daemon.
    pub daemon: DaemonKind,
    /// Initial routing-table corruption.
    pub corruption: CorruptionKind,
    /// Probability that each buffer initially holds an invalid message.
    pub garbage_fill: f64,
    /// Master seed for garbage placement.
    pub seed: u64,
    /// Whether `A` has priority over SSMFP (the paper's assumption; turn
    /// off only for ablations).
    pub routing_priority: bool,
    /// The `choice_p(d)` selection strategy (E13 ablation; default: the
    /// paper's rotation queue).
    pub choice_strategy: ChoiceStrategy,
    /// A deterministic protocol bug to plant (soak-oracle self-test only;
    /// `None` is the real protocol).
    pub seeded_bug: Option<SeededBug>,
}

impl NetworkConfig {
    /// Clean start: correct tables, empty buffers, weakly-fair daemon —
    /// the Proposition 1 setting.
    pub fn clean() -> Self {
        NetworkConfig {
            daemon: DaemonKind::RoundRobin,
            corruption: CorruptionKind::None,
            garbage_fill: 0.0,
            seed: 0,
            routing_priority: true,
            choice_strategy: ChoiceStrategy::RotationQueue,
            seeded_bug: None,
        }
    }

    /// Adversarial start: random-garbage tables, every buffer filled with
    /// an invalid message with probability ½, central random daemon — the
    /// snap-stabilization gauntlet of Propositions 2/3.
    pub fn adversarial(seed: u64) -> Self {
        NetworkConfig {
            daemon: DaemonKind::CentralRandom { seed },
            corruption: CorruptionKind::RandomGarbage,
            garbage_fill: 0.5,
            seed,
            routing_priority: true,
            choice_strategy: ChoiceStrategy::RotationQueue,
            seeded_bug: None,
        }
    }

    /// Replaces the daemon.
    pub fn with_daemon(mut self, daemon: DaemonKind) -> Self {
        self.daemon = daemon;
        self
    }

    /// Replaces the corruption kind.
    pub fn with_corruption(mut self, corruption: CorruptionKind) -> Self {
        self.corruption = corruption;
        self
    }

    /// Replaces the garbage fill probability.
    pub fn with_garbage_fill(mut self, fill: f64) -> Self {
        self.garbage_fill = fill;
        self
    }

    /// Replaces the `choice_p(d)` strategy.
    pub fn with_choice_strategy(mut self, strategy: ChoiceStrategy) -> Self {
        self.choice_strategy = strategy;
        self
    }

    /// Plants a deterministic protocol bug (soak-oracle self-test only).
    pub fn with_seeded_bug(mut self, bug: SeededBug) -> Self {
        self.seeded_bug = Some(bug);
        self
    }
}

/// Why `run_until_delivered` stopped without a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryTimeout {
    /// Steps executed during the call.
    pub steps_run: u64,
}

/// Statistics of a bounded run of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRunStats {
    /// Steps executed.
    pub steps: u64,
    /// Rounds completed.
    pub rounds: u64,
    /// Whether the network reached quiescence (terminal configuration).
    pub quiescent: bool,
}

/// The executable network.
///
/// ```
/// use ssmfp_core::{Network, NetworkConfig};
/// use ssmfp_topology::gen;
///
/// // Snap-stabilization: corrupted tables + garbage buffers, and the
/// // message still arrives exactly once.
/// let mut net = Network::new(gen::ring(5), NetworkConfig::adversarial(7));
/// let msg = net.send(0, 2, 42);
/// net.run_until_delivered(msg, 1_000_000).expect("delivered");
/// assert_eq!(net.deliveries_of(msg), 1);
/// assert!(net.check_sp().is_empty());
/// ```
pub struct Network {
    engine: Engine<SsmfpProtocol>,
    ledger: DeliveryLedger,
    trajectories: Option<TrajectoryLog>,
    next_valid: u64,
    /// Reused event drain buffer (pump runs once per step; draining into a
    /// fresh Vec each time would allocate on the hot path).
    event_buf: Vec<ssmfp_kernel::engine::EventRecord<Event>>,
}

impl Network {
    /// Builds a network on `graph` according to `config`.
    pub fn new(graph: Graph, config: NetworkConfig) -> Self {
        let n = graph.n();
        let delta = graph.max_degree();
        let routing_states = corruption::corrupt(&graph, config.corruption, config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xD1B5_4A32_D192_ED03);
        let mut next_invalid = 0u64;
        let states: Vec<NodeState> = routing_states
            .into_iter()
            .enumerate()
            .map(|(p, r)| {
                let mut s = NodeState::clean(n, r);
                if config.garbage_fill > 0.0 {
                    s.scatter_garbage(&graph, p, config.garbage_fill, &mut rng, &mut next_invalid);
                }
                s
            })
            .collect();
        let mut proto = SsmfpProtocol::new(n, delta).with_choice_strategy(config.choice_strategy);
        if !config.routing_priority {
            proto = proto.without_routing_priority();
        }
        if let Some(bug) = config.seeded_bug {
            proto = proto.with_seeded_bug(bug);
        }
        let daemon = config.daemon.build_for(&graph);
        let engine = Engine::new(graph, proto, daemon, states);
        Network {
            engine,
            ledger: DeliveryLedger::new(),
            trajectories: None,
            next_valid: 0,
            event_buf: Vec::new(),
        }
    }

    /// Enables per-message trajectory recording (the Lemma 1 life-cycle
    /// monitor; see [`crate::trajectory`]).
    pub fn enable_trajectories(&mut self) {
        if self.trajectories.is_none() {
            self.trajectories = Some(TrajectoryLog::new());
        }
    }

    /// The trajectory log, if enabled.
    pub fn trajectories(&self) -> Option<&TrajectoryLog> {
        self.trajectories.as_ref()
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        self.engine.graph()
    }

    /// The underlying engine (read access for diagnostics).
    pub fn engine(&self) -> &Engine<SsmfpProtocol> {
        &self.engine
    }

    /// Mutable access to the engine (trace enabling, fault injection).
    pub fn engine_mut(&mut self) -> &mut Engine<SsmfpProtocol> {
        &mut self.engine
    }

    /// The ground-truth delivery ledger.
    pub fn ledger(&self) -> &DeliveryLedger {
        &self.ledger
    }

    /// Current configuration.
    pub fn states(&self) -> &[NodeState] {
        self.engine.states()
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.engine.steps()
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.engine.rounds()
    }

    /// Hands a message to the higher layer of `src` for destination `dst`
    /// and raises `request_src` if it is down. Returns the ghost identity
    /// used to track the message through the ledger.
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: Payload) -> GhostId {
        assert!(src < self.graph().n(), "source out of range");
        assert!(dst < self.graph().n(), "destination out of range");
        let ghost = GhostId::Valid(self.next_valid);
        self.next_valid += 1;
        self.engine.mutate_state(src, |s| {
            s.outbox.push_back(Outgoing {
                dest: dst,
                payload,
                ghost,
            });
            if !s.request {
                s.request = true;
            }
        });
        ghost
    }

    /// Executes one protocol step, absorbs events, and plays the higher
    /// layer (re-raising `request_p` wherever messages still wait).
    pub fn pump(&mut self) -> StepOutcome {
        let outcome = self.engine.step();
        self.event_buf.clear();
        self.engine.drain_events_into(&mut self.event_buf);
        self.ledger.absorb(&self.event_buf);
        if let Some(log) = &mut self.trajectories {
            log.absorb(&self.event_buf);
        }
        // Higher layer: re-arm requests (the paper's blocking wait ends as
        // soon as the protocol lowers the bit and a message still waits).
        let n = self.graph().n();
        for p in 0..n {
            let s = self.engine.state(p);
            if !s.request && !s.outbox.is_empty() {
                self.engine.mutate_state(p, |s| s.request = true);
            }
        }
        outcome
    }

    /// Runs for at most `max_steps`, stopping early at quiescence.
    pub fn run(&mut self, max_steps: u64) -> NetRunStats {
        let s0 = self.engine.steps();
        let r0 = self.engine.rounds();
        let mut quiescent = false;
        while self.engine.steps() - s0 < max_steps {
            if let StepOutcome::Terminal = self.pump() {
                quiescent = true;
                break;
            }
        }
        NetRunStats {
            steps: self.engine.steps() - s0,
            rounds: self.engine.rounds() - r0,
            quiescent,
        }
    }

    /// Runs until `ghost` is delivered (returns the rounds elapsed during
    /// the call up to the delivery) or `max_steps` elapse.
    pub fn run_until_delivered(
        &mut self,
        ghost: GhostId,
        max_steps: u64,
    ) -> Result<u64, DeliveryTimeout> {
        let s0 = self.engine.steps();
        let r0 = self.engine.rounds();
        if self.deliveries_of(ghost) > 0 {
            return Ok(0);
        }
        while self.engine.steps() - s0 < max_steps {
            match self.pump() {
                StepOutcome::Terminal => break,
                StepOutcome::Progress { .. } => {
                    if self.deliveries_of(ghost) > 0 {
                        return Ok(self.engine.rounds() - r0);
                    }
                }
            }
        }
        Err(DeliveryTimeout {
            steps_run: self.engine.steps() - s0,
        })
    }

    /// Runs until terminal (quiescent) or `max_steps`.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> bool {
        self.run(max_steps).quiescent
    }

    /// Number of times `ghost` has been delivered.
    pub fn deliveries_of(&self, ghost: GhostId) -> u64 {
        self.ledger.deliveries_of(ghost)
    }

    /// Messages currently occupying buffers anywhere in the network.
    pub fn messages_in_flight(&self) -> usize {
        self.states().iter().map(NodeState::occupied_buffers).sum()
    }

    /// Audits Specification `SP` against the current configuration.
    pub fn check_sp(&self) -> Vec<SpViolation> {
        self.ledger.check_sp(self.states(), self.graph().n())
    }

    /// Audits `SP` for the post-fault epoch: only messages generated at
    /// step `>= since_step` are held to exactly-once (see
    /// [`DeliveryLedger::check_sp_since`]).
    pub fn check_sp_since(&self, since_step: u64) -> Vec<SpViolation> {
        self.ledger
            .check_sp_since(self.states(), self.graph().n(), since_step)
    }

    /// Installs a [`FaultPlan`] as the engine's step hook and returns the
    /// shared cursor tracking its progress (fired count, epoch step, warp
    /// floor). Replaces any previously installed plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> std::sync::Arc<FaultCursor> {
        let injector = FaultInjector::new(plan);
        let cursor = injector.cursor();
        self.engine.set_step_hook(Box::new(injector));
        cursor
    }

    /// Applies one fault immediately (outside any installed plan), with
    /// guard refresh. Used by replayed scenarios and tests.
    pub fn force_fault(&mut self, fault: &Fault) {
        self.engine.mutate_with_graph(|graph, states, touched| {
            touched.push(fault.apply(graph, states));
        });
    }

    /// Events drained so far live in the ledger; this exposes raw access to
    /// the protocol for advanced scenarios.
    pub fn protocol(&self) -> &SsmfpProtocol {
        self.engine.protocol()
    }

    /// Captures the current configuration as a packed snapshot (flat
    /// words + interned messages — see [`crate::codec`]), cheap to store
    /// by the thousand for later [`Network::restore_snapshot`].
    pub fn snapshot(&self) -> crate::codec::PackedSnapshot {
        crate::codec::PackedSnapshot::capture(self.engine.states())
    }

    /// Restores a configuration captured with [`Network::snapshot`]
    /// (resets ledger and counters, like any configuration injection).
    pub fn restore_snapshot(&mut self, snap: &crate::codec::PackedSnapshot) {
        self.reset_configuration(snap.restore());
    }

    /// Injects an arbitrary configuration (snap-stabilization starts from
    /// *any* configuration). Resets ledger and counters.
    pub fn reset_configuration(&mut self, states: Vec<NodeState>) {
        self.engine.reset_configuration(states);
        self.ledger = DeliveryLedger::new();
        if self.trajectories.is_some() {
            self.trajectories = Some(TrajectoryLog::new());
        }
    }

    /// Replays recorded actions is not supported; provided to document the
    /// deterministic alternative: rebuild with the same config and seed.
    pub fn describe_action(&self, a: SsmfpAction) -> String {
        use ssmfp_kernel::Protocol as _;
        self.engine.protocol().describe(a)
    }

    /// Drains any events still buffered in the engine into the ledger
    /// (useful after direct `engine_mut` stepping).
    pub fn sync_ledger(&mut self) {
        self.event_buf.clear();
        self.engine.drain_events_into(&mut self.event_buf);
        self.ledger.absorb(&self.event_buf);
        if let Some(log) = &mut self.trajectories {
            log.absorb(&self.event_buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_topology::gen;

    #[test]
    fn clean_network_delivers_exactly_once() {
        let mut net = Network::new(gen::line(5), NetworkConfig::clean());
        let ghost = net.send(0, 4, 42);
        let rounds = net.run_until_delivered(ghost, 100_000).expect("delivered");
        assert!(rounds > 0);
        assert_eq!(net.deliveries_of(ghost), 1);
        assert!(net.check_sp().is_empty());
    }

    #[test]
    fn clean_network_reaches_quiescence_after_delivery() {
        let mut net = Network::new(gen::ring(6), NetworkConfig::clean());
        let g1 = net.send(0, 3, 1);
        let g2 = net.send(2, 5, 2);
        assert!(net.run_to_quiescence(1_000_000));
        assert_eq!(net.deliveries_of(g1), 1);
        assert_eq!(net.deliveries_of(g2), 1);
        assert_eq!(net.messages_in_flight(), 0);
        assert!(net.check_sp().is_empty());
    }

    #[test]
    fn self_send_is_delivered() {
        let mut net = Network::new(gen::line(3), NetworkConfig::clean());
        let ghost = net.send(1, 1, 9);
        net.run_until_delivered(ghost, 10_000).expect("delivered");
        assert_eq!(net.deliveries_of(ghost), 1);
    }

    #[test]
    fn adversarial_network_still_delivers_exactly_once() {
        let mut net = Network::new(gen::ring(5), NetworkConfig::adversarial(7));
        let ghost = net.send(0, 2, 77);
        net.run_until_delivered(ghost, 2_000_000)
            .expect("snap-stabilization: delivered despite corruption");
        assert_eq!(net.deliveries_of(ghost), 1);
        // Exactly-once for ALL valid messages, bounded invalid deliveries.
        assert!(net.check_sp().is_empty(), "{:?}", net.check_sp());
    }

    #[test]
    fn many_messages_all_destinations() {
        let mut net = Network::new(gen::grid(3, 3), NetworkConfig::clean());
        let mut ghosts = Vec::new();
        for s in 0..9 {
            for d in 0..9 {
                if s != d {
                    ghosts.push(net.send(s, d, (s * 9 + d) as u64));
                }
            }
        }
        assert!(net.run_to_quiescence(5_000_000), "must drain");
        for g in ghosts {
            assert_eq!(net.deliveries_of(g), 1);
        }
        assert!(net.check_sp().is_empty());
    }

    #[test]
    fn send_out_of_range_panics() {
        let mut net = Network::new(gen::line(3), NetworkConfig::clean());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.send(0, 7, 1);
        }));
        assert!(r.is_err());
    }
}
