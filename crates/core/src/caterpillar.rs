//! Caterpillars — Definition 3 and Figure 4, executable.
//!
//! A *caterpillar* associated with a message `m` of destination `d` on a
//! processor `p` is the longest buffer sequence satisfying one of:
//!
//! 1. **Type 1**: `bufR_p(d) = (m,q,c)` and the source copy is gone
//!    (`bufE_q(d) ≠ (m,·,c)`) or the message was generated here (`q = p`).
//! 2. **Type 2**: `bufE_p(d) = (m,q,c)` with no copy yet at the next hop
//!    (`bufR_{nextHop_p(d)}(d) ≠ (m,p,c)`).
//! 3. **Type 3**: `bufE_p(d) = (m,q',c)` together with at least one copy
//!    `bufR_q(d) = (m,p,c)` in a neighbour's reception buffer (an emission
//!    buffer can belong to several type-3 caterpillars when routing churn
//!    duplicated the message).
//!
//! The life of a message (Lemma 1) is the cycle *type 1 → type 2 → type 3 →
//! type 1 at the next hop* (or delivery). The classifier below is used by
//! the tests to check the structural invariant — **every occupied buffer
//! belongs to a caterpillar** — and by the E4 experiment to census the
//! types along executions.

use crate::state::NodeState;
use ssmfp_topology::{Graph, NodeId};
use std::borrow::Borrow;

/// The three caterpillar types of Definition 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaterpillarType {
    /// Lone copy in a reception buffer.
    Type1,
    /// Lone copy in an emission buffer, next hop not yet served.
    Type2,
    /// Emission-buffer copy plus at least one reception-buffer copy at a
    /// neighbour.
    Type3,
}

/// Census of caterpillars (and the structural invariant) over one
/// configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaterpillarCensus {
    /// Number of type-1 caterpillars.
    pub type1: usize,
    /// Number of type-2 caterpillars.
    pub type2: usize,
    /// Number of type-3 caterpillars (each may have several tail copies).
    pub type3: usize,
    /// Reception-buffer copies that are tails of some type-3 caterpillar.
    pub type3_tails: usize,
    /// Occupied buffers that belong to **no** caterpillar — must always be
    /// zero; counted to make the invariant checkable.
    pub orphans: usize,
}

impl CaterpillarCensus {
    /// Total caterpillars.
    pub fn total(&self) -> usize {
        self.type1 + self.type2 + self.type3
    }
}

/// Role of one occupied reception buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RBufferRole {
    /// Head of a type-1 caterpillar.
    Type1Head,
    /// Tail copy of the type-3 caterpillar anchored at the message's
    /// recorded last hop.
    Type3Tail,
}

/// Classifies the occupied `bufR_p(d)`, if any. Generic over anything
/// that borrows as a [`NodeState`] (plain states or the checker's
/// `Arc`-shared copy-on-write states).
pub fn classify_r_buffer<S: Borrow<NodeState>>(
    graph: &Graph,
    states: &[S],
    p: NodeId,
    d: NodeId,
) -> Option<RBufferRole> {
    let m = states[p].borrow().slots[d].buf_r.as_ref()?;
    let q = m.last_hop;
    let source_alive = q != p
        && states[q].borrow().slots[d]
            .buf_e
            .as_ref()
            .is_some_and(|e| e.same_payload_color(m));
    debug_assert!(
        q == p || graph.has_edge(p, q),
        "last hop within N_p ∪ {{p}}"
    );
    Some(if source_alive {
        RBufferRole::Type3Tail
    } else {
        RBufferRole::Type1Head
    })
}

/// Classifies the occupied `bufE_p(d)`, if any, as the anchor of a type-2
/// or type-3 caterpillar.
pub fn classify_e_buffer<S: Borrow<NodeState>>(
    graph: &Graph,
    states: &[S],
    p: NodeId,
    d: NodeId,
) -> Option<CaterpillarType> {
    let m = states[p].borrow().slots[d].buf_e.as_ref()?;
    let has_tail = graph.neighbors(p).iter().any(|&q| {
        states[q].borrow().slots[d]
            .buf_r
            .as_ref()
            .is_some_and(|r| r.matches_triplet(m.payload, p, m.color))
    });
    Some(if has_tail {
        CaterpillarType::Type3
    } else {
        CaterpillarType::Type2
    })
}

/// Censuses all caterpillars of a configuration and checks the structural
/// invariant (no orphaned occupied buffer).
pub fn classify_buffers<S: Borrow<NodeState>>(graph: &Graph, states: &[S]) -> CaterpillarCensus {
    let n = graph.n();
    let mut census = CaterpillarCensus::default();
    for p in 0..n {
        for d in 0..n {
            match classify_r_buffer(graph, states, p, d) {
                Some(RBufferRole::Type1Head) => census.type1 += 1,
                Some(RBufferRole::Type3Tail) => census.type3_tails += 1,
                None => {}
            }
            match classify_e_buffer(graph, states, p, d) {
                Some(CaterpillarType::Type2) => census.type2 += 1,
                Some(CaterpillarType::Type3) => census.type3 += 1,
                Some(CaterpillarType::Type1) => unreachable!("E buffers are type 2 or 3"),
                None => {}
            }
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Color, GhostId, Message};
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn clean(gname: &ssmfp_topology::Graph) -> Vec<NodeState> {
        corruption::corrupt(gname, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(gname.n(), r))
            .collect()
    }

    fn msg(payload: u64, last_hop: NodeId, color: u8) -> Message {
        Message {
            payload,
            last_hop,
            color: Color(color),
            ghost: GhostId::Invalid(0),
        }
    }

    #[test]
    fn generated_message_is_type1() {
        let g = gen::line(3);
        let mut states = clean(&g);
        states[0].slots[2].buf_r = Some(msg(7, 0, 0)); // q = p: generated here
        assert_eq!(
            classify_r_buffer(&g, &states, 0, 2),
            Some(RBufferRole::Type1Head)
        );
        let census = classify_buffers(&g, &states);
        assert_eq!(census.type1, 1);
        assert_eq!(census.total(), 1);
    }

    #[test]
    fn emission_without_forward_copy_is_type2() {
        let g = gen::line(3);
        let mut states = clean(&g);
        states[0].slots[2].buf_e = Some(msg(7, 0, 1));
        assert_eq!(
            classify_e_buffer(&g, &states, 0, 2),
            Some(CaterpillarType::Type2)
        );
    }

    #[test]
    fn emission_with_forward_copy_is_type3_and_tail() {
        let g = gen::line(3);
        let mut states = clean(&g);
        // Copy in 0's emission buffer and its forwarded copy in 1's
        // reception buffer (last hop recorded as 0, same color).
        states[0].slots[2].buf_e = Some(msg(7, 0, 1));
        states[1].slots[2].buf_r = Some(msg(7, 0, 1));
        assert_eq!(
            classify_e_buffer(&g, &states, 0, 2),
            Some(CaterpillarType::Type3)
        );
        assert_eq!(
            classify_r_buffer(&g, &states, 1, 2),
            Some(RBufferRole::Type3Tail)
        );
        let census = classify_buffers(&g, &states);
        assert_eq!(census.type3, 1);
        assert_eq!(census.type3_tails, 1);
        assert_eq!(census.orphans, 0);
    }

    #[test]
    fn reception_copy_with_dead_source_is_type1() {
        let g = gen::line(3);
        let mut states = clean(&g);
        // Forwarded copy whose source emission buffer was already erased.
        states[1].slots[2].buf_r = Some(msg(7, 0, 1));
        assert_eq!(
            classify_r_buffer(&g, &states, 1, 2),
            Some(RBufferRole::Type1Head)
        );
    }

    #[test]
    fn color_mismatch_breaks_the_caterpillar_link() {
        let g = gen::line(3);
        let mut states = clean(&g);
        states[0].slots[2].buf_e = Some(msg(7, 0, 1));
        states[1].slots[2].buf_r = Some(msg(7, 0, 2)); // different color
                                                       // The emission copy has no tail; the reception copy has no source.
        assert_eq!(
            classify_e_buffer(&g, &states, 0, 2),
            Some(CaterpillarType::Type2)
        );
        assert_eq!(
            classify_r_buffer(&g, &states, 1, 2),
            Some(RBufferRole::Type1Head)
        );
    }

    #[test]
    fn one_emission_buffer_can_anchor_many_tails() {
        // Star: hub 0's emission copy duplicated into several leaves'
        // reception buffers (routing churn) — one type-3 caterpillar with
        // several tails, as the paper's remark after Definition 3 allows.
        let g = gen::star(4);
        let mut states = clean(&g);
        states[0].slots[3].buf_e = Some(msg(9, 0, 2));
        states[1].slots[3].buf_r = Some(msg(9, 0, 2));
        states[2].slots[3].buf_r = Some(msg(9, 0, 2));
        let census = classify_buffers(&g, &states);
        assert_eq!(census.type3, 1);
        assert_eq!(census.type3_tails, 2);
    }

    #[test]
    fn empty_configuration_has_no_caterpillars() {
        let g = gen::ring(4);
        let states = clean(&g);
        assert_eq!(classify_buffers(&g, &states), CaterpillarCensus::default());
    }
}
