//! The color assignment `color_p(d)`.
//!
//! Algorithm 1: *"gives a natural integer `c` between 0 and Δ such as
//! `∀q ∈ N_p`, `bufR_q(d)` does not contain a message with `c` as color."*
//!
//! The incoming message (moving from `bufR_p(d)` into `bufE_p(d)` by rule
//! R2) must be distinguishable from every message currently sitting in the
//! reception buffers of `p`'s neighbours — those are exactly the buffers the
//! emission buffer's copy will be compared against by rules R3/R4/R5. Since
//! `|N_p| ≤ Δ` and there are `Δ+1` colors, at least one color is always
//! free (pigeonhole); we take the smallest.

use crate::message::Color;
use crate::state::NodeState;
use ssmfp_kernel::View;
use ssmfp_topology::NodeId;

/// Evaluates `color_p(d)` at the viewing processor: the smallest color in
/// `{0..Δ}` not carried by any message in a neighbour's `bufR(d)`.
///
/// `delta` is the network's maximal degree Δ (public knowledge).
pub fn color(view: &View<'_, NodeState>, d: NodeId, delta: usize) -> Color {
    debug_assert!(view.neighbors().len() <= delta);
    // Bit set over the Δ+1 colors (Δ ≤ 63 is ample for simulations; fall
    // back would only be needed for graphs with degree > 63).
    assert!(delta < 64, "color bitset supports Δ < 64");
    let mut used: u64 = 0;
    for &q in view.neighbors() {
        if let Some(m) = &view.state(q).slots[d].buf_r {
            used |= 1 << m.color.0;
        }
    }
    for c in 0..=delta as u8 {
        if used & (1 << c) == 0 {
            return Color(c);
        }
    }
    unreachable!(
        "pigeonhole: {} neighbours cannot exclude {} colors",
        view.neighbors().len(),
        delta + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{GhostId, Message};
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn msg(color: u8) -> Message {
        Message {
            payload: 0,
            last_hop: 0,
            color: Color(color),
            ghost: GhostId::Invalid(0),
        }
    }

    #[test]
    fn empty_neighborhood_gives_zero() {
        let g = gen::star(4);
        let states: Vec<NodeState> = corruption::corrupt(&g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(4, r))
            .collect();
        let view = View::new(&g, &states, 0);
        assert_eq!(color(&view, 2, g.max_degree()), Color(0));
    }

    #[test]
    fn skips_colors_in_neighbor_reception_buffers() {
        let g = gen::star(4); // hub 0, leaves 1..3, Δ = 3
        let mut states: Vec<NodeState> = corruption::corrupt(&g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(4, r))
            .collect();
        states[1].slots[2].buf_r = Some(msg(0));
        states[2].slots[2].buf_r = Some(msg(1));
        let view = View::new(&g, &states, 0);
        assert_eq!(color(&view, 2, 3), Color(2));
    }

    #[test]
    fn pigeonhole_always_finds_a_color_at_full_degree() {
        let g = gen::star(5); // hub degree 4 = Δ, colors {0..4}
        let mut states: Vec<NodeState> = corruption::corrupt(&g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(5, r))
            .collect();
        // Every neighbour's reception buffer occupied with distinct colors.
        for (i, leaf) in [1usize, 2, 3, 4].iter().enumerate() {
            states[*leaf].slots[3].buf_r = Some(msg(i as u8));
        }
        let view = View::new(&g, &states, 0);
        assert_eq!(color(&view, 3, 4), Color(4));
    }

    #[test]
    fn only_reception_buffers_matter() {
        let g = gen::line(3);
        let mut states: Vec<NodeState> = corruption::corrupt(&g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(3, r))
            .collect();
        // A color in a neighbour's EMISSION buffer does not block it.
        states[0].slots[2].buf_e = Some(msg(0));
        let view = View::new(&g, &states, 1);
        assert_eq!(color(&view, 2, g.max_degree()), Color(0));
    }

    #[test]
    fn duplicate_neighbor_colors_counted_once() {
        let g = gen::star(4);
        let mut states: Vec<NodeState> = corruption::corrupt(&g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(4, r))
            .collect();
        states[1].slots[2].buf_r = Some(msg(0));
        states[2].slots[2].buf_r = Some(msg(0));
        states[3].slots[2].buf_r = Some(msg(0));
        let view = View::new(&g, &states, 0);
        assert_eq!(color(&view, 2, 3), Color(1));
    }
}
