//! Footprint declarations for rules **R1–R6** and the composed protocol.
//!
//! Each rule's declaration is derived by hand from the guard and statement
//! code in [`crate::rules`] (including the indirect reads through
//! `choice_p(d)` and `color_p(d)`), and is kept honest mechanically: debug
//! builds execute every action through a `TrackedView` and assert the
//! observed reads/writes stay inside the declaration (see
//! `ssmfp_kernel::footprint`), and the `prop_footprint` property test
//! exercises random configurations.
//!
//! Two structural facts the declarations make checkable:
//!
//! * **All writes are own-variables** (`Locus::Me`) — the
//!   locally-shared-memory model.
//! * **Every cross-processor read is per-destination** — rules of
//!   destination instance `d` read neighbours' `bufR(d)`, `bufE(d)`,
//!   `parent(d)`, `dist(d)` and nothing of other instances. The only
//!   `All`-scoped cross reads come from the composition: with `A`'s
//!   priority, a forwarding action is enabled only while *no* routing
//!   entry needs correction, which reads every `dist`/`parent` instance.
//!
//! The second fact is what makes partial-order reduction effective: rules
//! of different destination instances at adjacent processors commute.

use crate::protocol::{FwdAction, SsmfpAction};
use crate::rules::Rule;
use crate::state::NodeState;
use ssmfp_kernel::footprint::{Access, Footprint, Locus, VarClass};
use ssmfp_routing::footprint::{diff_routing, routing_footprint, DIST, PARENT};
use ssmfp_topology::NodeId;

/// The layer tag of the forwarding protocol.
pub const LAYER_SSMFP: &str = "SSMFP";

/// `bufR_p(d)`: the reception buffer.
pub const BUF_R: VarClass = VarClass {
    name: "bufR",
    owner: LAYER_SSMFP,
    per_dest: true,
};

/// `bufE_p(d)`: the emission buffer.
pub const BUF_E: VarClass = VarClass {
    name: "bufE",
    owner: LAYER_SSMFP,
    per_dest: true,
};

/// The rotation pointer behind `choice_p(d)`.
pub const CHOICE_PTR: VarClass = VarClass {
    name: "choicePtr",
    owner: LAYER_SSMFP,
    per_dest: true,
};

/// The per-candidate wait counters of the `LongestWaiting` choice ablation.
pub const WAITS: VarClass = VarClass {
    name: "waits",
    owner: LAYER_SSMFP,
    per_dest: true,
};

/// `request_p`: the higher-layer request bit (not per-destination).
pub const REQUEST: VarClass = VarClass {
    name: "request",
    owner: LAYER_SSMFP,
    per_dest: false,
};

/// The higher-layer outbox behind `nextMessage_p`/`nextDestination_p`.
pub const OUTBOX: VarClass = VarClass {
    name: "outbox",
    owner: LAYER_SSMFP,
    per_dest: false,
};

/// The destination fairness cursor ordering a processor's enabled actions.
pub const DEST_CURSOR: VarClass = VarClass {
    name: "destCursor",
    owner: LAYER_SSMFP,
    per_dest: false,
};

/// All SSMFP-owned variable classes (lint enumeration).
pub const SSMFP_CLASSES: [VarClass; 7] = [
    BUF_R,
    BUF_E,
    CHOICE_PTR,
    WAITS,
    REQUEST,
    OUTBOX,
    DEST_CURSOR,
];

/// Reads of `choice_p(d)`: the rotation pointer and wait counters, the
/// self-candidate's `request`/outbox head, and each neighbour candidate's
/// `bufE(d)` and `parent(d)`.
fn choice_reads(d: NodeId, reads: &mut Vec<Access>) {
    reads.extend([
        Access::me(CHOICE_PTR, d),
        Access::me(WAITS, d),
        Access::me_global(REQUEST),
        Access::me_global(OUTBOX),
        Access::neighbors(BUF_E, d),
        Access::neighbors(PARENT, d),
    ]);
}

/// The footprint of `rule`'s guard **and** statement for destination
/// instance `d`, *excluding* the composition wrapper (the destination
/// cursor bump and `A`'s priority guard — see [`composed_fwd_footprint`]).
pub fn rule_footprint(rule: Rule, d: NodeId) -> Footprint {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    match rule {
        Rule::R1 => {
            // Guard: request_p ∧ nextDestination_p = d ∧ bufR_p(d) = ∅ ∧
            // choice_p(d) = p. Statement: generate into bufR_p(d), pop the
            // outbox, lower request, advance the choice bookkeeping.
            reads.push(Access::me(BUF_R, d));
            choice_reads(d, &mut reads);
            writes.extend([
                Access::me(BUF_R, d),
                Access::me_global(REQUEST),
                Access::me_global(OUTBOX),
                Access::me(CHOICE_PTR, d),
                Access::me(WAITS, d),
            ]);
        }
        Rule::R2 => {
            // Guard: bufE_p(d) = ∅ ∧ bufR_p(d) = (m,q,c) ∧ the source copy
            // in bufE_q(d) is gone. Statement: move bufR → bufE with a
            // fresh color from color_p(d), which scans neighbours' bufR(d).
            reads.extend([
                Access::me(BUF_R, d),
                Access::me(BUF_E, d),
                Access::neighbors(BUF_E, d),
                Access::neighbors(BUF_R, d),
            ]);
            writes.extend([Access::me(BUF_R, d), Access::me(BUF_E, d)]);
        }
        Rule::R3 => {
            // Guard: bufR_p(d) = ∅ ∧ choice_p(d) = s ≠ p ∧ bufE_s(d) full.
            // Statement: copy from the chosen neighbour's bufE, advance the
            // choice bookkeeping.
            reads.push(Access::me(BUF_R, d));
            choice_reads(d, &mut reads);
            writes.extend([
                Access::me(BUF_R, d),
                Access::me(CHOICE_PTR, d),
                Access::me(WAITS, d),
            ]);
        }
        Rule::R4 => {
            // Guard: bufE_p(d) full ∧ p ≠ d ∧ the copy sits in the next
            // hop's bufR(d) and nowhere else in N_p. Statement: erase bufE.
            reads.extend([
                Access::me(BUF_E, d),
                Access::me(PARENT, d),
                Access::neighbors(BUF_R, d),
            ]);
            writes.push(Access::me(BUF_E, d));
        }
        Rule::R5 => {
            // Guard: bufR_p(d) = (m,q,c) ∧ q ∈ N_p ∧ bufE_q(d) = (m,·,c) ∧
            // nextHop_q(d) ≠ p. Statement: erase bufR.
            reads.extend([
                Access::me(BUF_R, d),
                Access::neighbors(BUF_E, d),
                Access::neighbors(PARENT, d),
            ]);
            writes.push(Access::me(BUF_R, d));
        }
        Rule::R6 => {
            // Guard: bufE_p(p) full (d = p). Statement: deliver and erase.
            reads.push(Access::me(BUF_E, d));
            writes.push(Access::me(BUF_E, d));
        }
    }
    Footprint::new(reads, writes)
}

/// The footprint of a forwarding action under the *composed* protocol:
/// [`rule_footprint`] plus
///
/// * the destination-cursor read (action ordering) and bump (statement),
/// * when `A` has priority, the priority guard's reads — a forwarding
///   action is enabled only while no routing entry needs correction,
///   which reads every `dist`/`parent` instance of `p` and every
///   neighbour's `dist`.
///
/// The priority reads are what couple `A` to SSMFP in the independence
/// relation: a routing correction at `q` can mask a neighbour's
/// forwarding actions, so the two never commute — exactly the paper's
/// composition semantics.
pub fn composed_fwd_footprint(rule: Rule, d: NodeId, routing_priority: bool) -> Footprint {
    let mut fp = rule_footprint(rule, d);
    fp.reads.push(Access::me_global(DEST_CURSOR));
    fp.writes.push(Access::me_global(DEST_CURSOR));
    if routing_priority {
        fp.reads.extend([
            Access::me_all(DIST),
            Access::me_all(PARENT),
            Access::neighbors_all(DIST),
        ]);
    }
    fp
}

/// The footprint of any composed action (what
/// `SsmfpProtocol::footprint` returns).
pub fn action_footprint(action: SsmfpAction, routing_priority: bool) -> Footprint {
    match action {
        SsmfpAction::Routing(a) => routing_footprint(a.dest),
        SsmfpAction::Fwd(FwdAction { rule, dest }) => {
            composed_fwd_footprint(rule, dest, routing_priority)
        }
    }
}

/// Diffs a pre/post [`NodeState`] pair into the write accesses that
/// distinguish them (the composed protocol's `observe_writes`).
pub fn diff_node_state(pre: &NodeState, post: &NodeState, out: &mut Vec<Access>) {
    diff_routing(&pre.routing, &post.routing, out);
    for d in 0..pre.slots.len().max(post.slots.len()) {
        let (a, b) = (pre.slots.get(d), post.slots.get(d));
        if a.map(|s| &s.buf_r) != b.map(|s| &s.buf_r) {
            out.push(Access::me(BUF_R, d));
        }
        if a.map(|s| &s.buf_e) != b.map(|s| &s.buf_e) {
            out.push(Access::me(BUF_E, d));
        }
        if a.map(|s| s.choice_ptr) != b.map(|s| s.choice_ptr) {
            out.push(Access::me(CHOICE_PTR, d));
        }
        if a.map(|s| &s.waits) != b.map(|s| &s.waits) {
            out.push(Access::me(WAITS, d));
        }
    }
    if pre.request != post.request {
        out.push(Access::me_global(REQUEST));
    }
    if pre.outbox != post.outbox {
        out.push(Access::me_global(OUTBOX));
    }
    if pre.dest_cursor != post.dest_cursor {
        out.push(Access::me_global(DEST_CURSOR));
    }
}

/// Tri-state occupancy requirement in a rule's [`GuardShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Req {
    /// The guard requires the buffer to be empty.
    Empty,
    /// The guard requires the buffer to hold a message.
    Full,
    /// The guard does not constrain the buffer.
    Any,
}

impl Req {
    fn compatible(self, other: Req) -> bool {
        !matches!(
            (self, other),
            (Req::Empty, Req::Full) | (Req::Full, Req::Empty)
        )
    }
}

/// Abstraction of a rule's guard over one `(p, d)` instance, precise
/// enough to decide which rule pairs can be simultaneously enabled (the
/// `ssmfp-lint` guard-overlap analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardShape {
    /// Requirement on `bufR_p(d)`.
    pub buf_r: Req,
    /// Requirement on `bufE_p(d)`.
    pub buf_e: Req,
    /// `Some(true)`: requires `d = p` (R6); `Some(false)`: requires
    /// `d ≠ p` (R4); `None`: unconstrained.
    pub self_dest: Option<bool>,
    /// `Some(true)`: requires `choice_p(d) = p` (R1); `Some(false)`:
    /// requires `choice_p(d)` to be a neighbour (R3). `choice_p(d)` is a
    /// function of the configuration, so the two are mutually exclusive.
    pub choice_self: Option<bool>,
    /// Requirement on "the source copy of `bufR_p(d)`'s message is still
    /// in `bufE_q(d)` (same payload and color, `q` the last hop ≠ `p`)":
    /// `Some(true)` = must be present (R5), `Some(false)` = must be gone
    /// (R2). One predicate of the configuration, so mutually exclusive.
    pub source_copy: Option<bool>,
}

/// The guard abstraction of each rule (derived from [`crate::rules`]).
pub fn guard_shape(rule: Rule) -> GuardShape {
    let shape = |buf_r, buf_e, self_dest, choice_self, source_copy| GuardShape {
        buf_r,
        buf_e,
        self_dest,
        choice_self,
        source_copy,
    };
    match rule {
        Rule::R1 => shape(Req::Empty, Req::Any, None, Some(true), None),
        Rule::R2 => shape(Req::Full, Req::Empty, None, None, Some(false)),
        Rule::R3 => shape(Req::Empty, Req::Any, None, Some(false), None),
        Rule::R4 => shape(Req::Any, Req::Full, Some(false), None, None),
        Rule::R5 => shape(Req::Full, Req::Any, None, None, Some(true)),
        Rule::R6 => shape(Req::Any, Req::Full, Some(true), None, None),
    }
}

/// Whether two rules can be simultaneously enabled at one processor for
/// the same destination instance: their guard shapes must agree on every
/// constrained dimension.
pub fn guards_can_overlap(a: Rule, b: Rule) -> bool {
    let (sa, sb) = (guard_shape(a), guard_shape(b));
    let opt = |x: Option<bool>, y: Option<bool>| match (x, y) {
        (Some(p), Some(q)) => p == q,
        _ => true,
    };
    sa.buf_r.compatible(sb.buf_r)
        && sa.buf_e.compatible(sb.buf_e)
        && opt(sa.self_dest, sb.self_dest)
        && opt(sa.choice_self, sb.choice_self)
        && opt(sa.source_copy, sb.source_copy)
}

/// Which guard *scopes* an action's writes can invalidate, from the
/// perspective of the engine's incremental re-evaluation: after a step,
/// only the scopes a write can reach need their cached enablement
/// recomputed (`Protocol::scope_affected_by`).
///
/// `same` means "the scope whose destination equals the action's own",
/// `any` means "every scope, regardless of destination" (the write hits
/// a destination-independent guard read such as `request_p` or the
/// outbox). `self_*` couples the writer's own scopes, `nbr_*` the scopes
/// of the writer's neighbours (all writes are local, so a write reaches
/// a neighbour's guard only through its `Neighbors`-locus reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeAffects {
    /// The writer's own scope of *any* destination is invalidated.
    pub self_any: bool,
    /// The writer's own scope of the action's destination is invalidated.
    pub self_same: bool,
    /// Neighbours' scopes of *any* destination are invalidated.
    pub nbr_any: bool,
    /// Neighbours' scopes of the action's destination are invalidated.
    pub nbr_same: bool,
}

/// Everything a destination-`d` guard scope reads: the routing guard of
/// instance `d` plus every forwarding rule's guard-and-statement reads.
/// (The composition wrapper's reads — destination cursor, `A`'s priority
/// over *all* instances — are excluded on purpose: the engine caches
/// per-scope enablement *before* composition and replays priority in
/// `compose_scopes`, so the wrapper never goes stale.)
fn scope_guard_reads(d: NodeId, out: &mut Vec<Access>) {
    out.extend(routing_footprint(d).reads);
    for rule in Rule::EVAL_ORDER {
        out.extend(rule_footprint(rule, d).reads);
    }
}

/// Derives the scope coupling of an action's declared writes, using two
/// representative destinations: `0` stands for "the same destination as
/// the writer's action", `1` for "any other destination" — hitting a
/// scope-`1` read means the coupling is destination-independent.
pub fn scope_affects_of(writes: &[Access]) -> ScopeAffects {
    let mut same = Vec::new();
    scope_guard_reads(0, &mut same);
    let mut other = Vec::new();
    scope_guard_reads(1, &mut other);
    let hit = |reads: &[Access], locus: Locus| {
        writes.iter().any(|w| {
            reads
                .iter()
                .any(|r| r.locus == locus && w.var == r.var && w.dest.overlaps(r.dest))
        })
    };
    ScopeAffects {
        self_same: hit(&same, Locus::Me),
        self_any: hit(&other, Locus::Me),
        nbr_same: hit(&same, Locus::Neighbors),
        nbr_any: hit(&other, Locus::Neighbors),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_kernel::footprint::{independent, Locus};

    #[test]
    fn all_rule_writes_are_local() {
        for rule in Rule::EVAL_ORDER {
            let fp = composed_fwd_footprint(rule, 1, true);
            assert!(
                fp.writes.iter().all(|w| w.locus == Locus::Me),
                "{rule:?} declares a non-local write"
            );
        }
    }

    #[test]
    fn ssmfp_never_writes_routing_variables() {
        for rule in Rule::EVAL_ORDER {
            let fp = composed_fwd_footprint(rule, 1, true);
            assert!(
                fp.writes.iter().all(|w| w.var.owner == LAYER_SSMFP),
                "{rule:?} writes a variable A owns"
            );
        }
    }

    #[test]
    fn different_destinations_commute_at_neighbors_without_priority() {
        // Per-destination isolation: any two rules of different instances
        // at adjacent processors are independent once A's priority guard
        // (the only All-scoped coupling) is out of the picture.
        for a in Rule::EVAL_ORDER {
            for b in Rule::EVAL_ORDER {
                let fa = composed_fwd_footprint(a, 0, false);
                let fb = composed_fwd_footprint(b, 1, false);
                assert!(
                    independent(&fa, 0, &[1], &fb, 1, &[0]),
                    "{a:?}(d=0) vs {b:?}(d=1) should commute"
                );
            }
        }
    }

    #[test]
    fn routing_masks_neighbor_forwarding_under_priority() {
        // A correction at q rewrites dist_q, which p's priority guard
        // reads: never independent, for any destination pair.
        let fa = routing_footprint(2);
        let fb = composed_fwd_footprint(Rule::R6, 1, true);
        assert!(!independent(&fa, 0, &[1], &fb, 1, &[0]));
        // Without adjacency the coupling disappears.
        assert!(independent(&fa, 0, &[1], &fb, 2, &[1]));
    }

    #[test]
    fn same_destination_handshake_is_dependent() {
        // R4 at p (erase bufE after copy) reads neighbours' bufR(d); R3 at
        // q writes bufR_q(d): the forwarding handshake never commutes.
        let fa = composed_fwd_footprint(Rule::R4, 2, true);
        let fb = composed_fwd_footprint(Rule::R3, 2, true);
        assert!(!independent(&fa, 0, &[1], &fb, 1, &[0]));
    }

    #[test]
    fn guard_overlap_matches_hand_analysis() {
        // The satisfiable same-(p,d) co-enabledness pairs, by hand from
        // the guards (EVAL_ORDER priority resolves them at runtime).
        let expected = [
            (Rule::R1, Rule::R4),
            (Rule::R1, Rule::R6),
            (Rule::R3, Rule::R4),
            (Rule::R3, Rule::R6),
            (Rule::R4, Rule::R5),
            (Rule::R5, Rule::R6),
        ];
        for (i, &a) in Rule::EVAL_ORDER.iter().enumerate() {
            for &b in Rule::EVAL_ORDER.iter().skip(i + 1) {
                let overlap = guards_can_overlap(a, b);
                let expect = expected.contains(&(a, b)) || expected.contains(&(b, a));
                assert_eq!(overlap, expect, "overlap({a:?}, {b:?})");
            }
        }
    }

    #[test]
    fn diff_detects_each_class() {
        use crate::message::{Color, GhostId, Message};
        use ssmfp_routing::{corruption, CorruptionKind};
        use ssmfp_topology::gen;
        let g = gen::ring(4);
        let routing = corruption::corrupt(&g, CorruptionKind::None, 0).remove(0);
        let pre = NodeState::clean(4, routing);
        let mut post = pre.clone();
        post.slots[2].buf_r = Some(Message {
            payload: 1,
            last_hop: 0,
            color: Color(0),
            ghost: GhostId::Invalid(0),
        });
        post.slots[3].choice_ptr = 1;
        post.request = true;
        post.dest_cursor = 2;
        let mut obs = Vec::new();
        diff_node_state(&pre, &post, &mut obs);
        assert_eq!(
            obs,
            vec![
                Access::me(BUF_R, 2),
                Access::me(CHOICE_PTR, 3),
                Access::me_global(REQUEST),
                Access::me_global(DEST_CURSOR),
            ]
        );
    }
}
