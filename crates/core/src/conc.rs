//! Declared **concurrency footprints** for the runtime layers, plus the
//! debug-build instrumentation that keeps the declarations honest.
//!
//! PR 1 taught the protocol rules to declare their read/write footprints
//! and gated them with `ssmfp-lint`; this module extends the same pattern
//! from *state-model rules* to *runtime concurrency*. A component with
//! real threads (today: `crates/cluster`; `crates/mp` declares itself
//! thread-free) publishes a [`ConcModel`]:
//!
//! * its **thread roles** ([`ThreadDecl`]) — every kind of thread it may
//!   spawn, with multiplicity and spawner;
//! * its **locks** ([`LockDecl`]) — each mutex identity with a rank in the
//!   intended partial acquisition order (locks must be taken in strictly
//!   increasing rank);
//! * its **channels** ([`ChannelDecl`]) — each cross-thread queue with its
//!   bound and full-queue policy (block with counted backpressure, or shed
//!   the message as a wire drop the protocol already tolerates);
//! * its **blocking edges** ([`BlockingEdge`]) — every point where a
//!   thread role can block, on what, and which locks it holds there.
//!
//! `ssmfp-lint`'s `conc-*` passes analyze these declarations statically
//! (deadlock cycles over the blocking-wait graph, unbounded channels,
//! locks held across blocking waits, referential coverage). The runtime
//! side of the contract lives here too: [`TrackedMutex`] asserts the
//! declared acquisition order on every `lock()` in debug builds,
//! [`tracked_channel`] refuses to construct a channel whose declaration
//! has no bound and enforces the declared full-queue policy, and the
//! thread [`registry`](register_thread) records every role that actually
//! ran so tests can confront observed spawns with the declaration
//! ([`ConcModel::undeclared_observed`]).
//!
//! Everything assertion-shaped is `debug_assertions`-gated: release
//! builds pay one atomic or nothing, exactly like `TrackedView` on the
//! state-model side.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Spawner name for threads created by the embedding harness (test
/// runner, `main`), outside any declared role.
pub const EXTERN_ROLE: &str = "extern";

/// How many instances of a thread role can exist at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// Exactly one per component instance.
    One,
    /// One per node of the topology.
    PerNode,
    /// One per orchestrator shard (a supervised group of nodes).
    PerShard,
    /// One per neighbour of a node.
    PerNeighbor,
    /// One per accepted connection (readers on a listening socket).
    PerConnection,
}

/// One declared thread role.
#[derive(Debug, Clone)]
pub struct ThreadDecl {
    /// Role name, e.g. `"net.writer"`. Unique within a component.
    pub role: &'static str,
    /// Instance count discipline.
    pub multiplicity: Multiplicity,
    /// Role that spawns it ([`EXTERN_ROLE`] for harness-created threads).
    pub spawned_by: &'static str,
    /// One-line description for reports.
    pub doc: &'static str,
}

/// One declared lock (mutex) identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockDecl {
    /// Lock name, unique within a component.
    pub name: &'static str,
    /// Position in the intended acquisition order: a thread may only
    /// acquire locks of strictly increasing rank. [`TrackedMutex`]
    /// asserts this at runtime; the `conc-deadlock` lint checks the
    /// declared blocking edges against it statically.
    pub rank: u32,
    /// One-line description for reports.
    pub doc: &'static str,
}

/// What a sender does when a bounded channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FullPolicy {
    /// Block until space frees up (counted as a backpressure stall).
    /// Blocking sends are real blocking edges and must be declared.
    Block,
    /// Drop the message and count it. For data-plane traffic this is a
    /// wire drop, which the protocol's retransmission already tolerates —
    /// and it is what keeps a full queue from wedging a reader thread.
    Shed,
}

/// One declared cross-thread channel.
#[derive(Debug, Clone)]
pub struct ChannelDecl {
    /// Channel name, unique within a component.
    pub name: &'static str,
    /// Roles that may send on it.
    pub senders: Vec<&'static str>,
    /// The single role that receives from it.
    pub receiver: &'static str,
    /// Queue bound. `None` means unbounded — the `conc-unbounded` lint
    /// rejects it and [`tracked_channel`] refuses to construct it.
    pub bound: Option<usize>,
    /// Full-queue policy. `None` is likewise a lint violation.
    pub policy: Option<FullPolicy>,
    /// One-line description for reports.
    pub doc: &'static str,
}

/// What a blocking edge waits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPoint {
    /// Blocked sending on the named full channel (policy
    /// [`FullPolicy::Block`]; a [`FullPolicy::Shed`] send never blocks
    /// and therefore is not an edge).
    ChanSend(&'static str),
    /// Blocked receiving on the named empty channel.
    ChanRecv(&'static str),
    /// Blocked acquiring the named lock.
    LockAcquire(&'static str),
    /// Blocked reading a socket; the operand names the *peer* role whose
    /// writes unblock it.
    SockRead(&'static str),
    /// Blocked writing a socket (kernel buffer full); the operand names
    /// the peer role whose reads unblock it.
    SockWrite(&'static str),
    /// Blocked in `accept()`; the operand names the dialing peer role.
    Accept(&'static str),
}

impl WaitPoint {
    /// Short label for findings.
    pub fn describe(&self) -> String {
        match self {
            WaitPoint::ChanSend(c) => format!("send on full channel `{c}`"),
            WaitPoint::ChanRecv(c) => format!("recv on empty channel `{c}`"),
            WaitPoint::LockAcquire(l) => format!("acquire of lock `{l}`"),
            WaitPoint::SockRead(p) => format!("socket read (fed by `{p}`)"),
            WaitPoint::SockWrite(p) => format!("socket write (drained by `{p}`)"),
            WaitPoint::Accept(p) => format!("accept (dialed by `{p}`)"),
        }
    }
}

/// One declared blocking edge: *thread X can block on Y while holding Z*.
#[derive(Debug, Clone)]
pub struct BlockingEdge {
    /// The blocking thread role.
    pub thread: &'static str,
    /// What it waits on.
    pub waits: WaitPoint,
    /// Lock names held while blocked (must be empty for every non-lock
    /// wait — the `conc-hold-across-block` lint enforces it).
    pub holding: Vec<&'static str>,
    /// Whether the wait has a deadline (`recv_timeout`, polling sleeps).
    /// Timed waits cannot wedge and are excluded from deadlock cycles.
    pub timed: bool,
}

/// The full declared concurrency model of one component.
#[derive(Debug, Clone, Default)]
pub struct ConcModel {
    /// Component name (`"cluster"`, `"mp"`).
    pub component: &'static str,
    /// Declared thread roles.
    pub threads: Vec<ThreadDecl>,
    /// Declared locks.
    pub locks: Vec<LockDecl>,
    /// Declared channels.
    pub channels: Vec<ChannelDecl>,
    /// Declared blocking edges.
    pub edges: Vec<BlockingEdge>,
}

impl ConcModel {
    /// The declaration of a thread role, if present.
    pub fn thread(&self, role: &str) -> Option<&ThreadDecl> {
        self.threads.iter().find(|t| t.role == role)
    }

    /// The declaration of a lock, if present.
    pub fn lock(&self, name: &str) -> Option<&LockDecl> {
        self.locks.iter().find(|l| l.name == name)
    }

    /// The declaration of a channel, if present.
    pub fn channel(&self, name: &str) -> Option<&ChannelDecl> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// The declaration of a channel, or a panic: runtime construction
    /// must go through a declaration, so a missing one is a model bug.
    pub fn channel_decl(&self, name: &str) -> &ChannelDecl {
        self.channel(name)
            .unwrap_or_else(|| panic!("channel `{name}` is not declared in `{}`", self.component))
    }

    /// The declaration of a lock, or a panic (same contract as
    /// [`ConcModel::channel_decl`]).
    pub fn lock_decl(&self, name: &str) -> &LockDecl {
        self.lock(name)
            .unwrap_or_else(|| panic!("lock `{name}` is not declared in `{}`", self.component))
    }

    /// Confronts the runtime thread registry with the declaration:
    /// returns every observed role of this component that the model does
    /// not declare (empty in a correct build). Debug-build tests call
    /// this after exercising the component.
    pub fn undeclared_observed(&self, observed: &[String]) -> Vec<String> {
        observed
            .iter()
            .filter(|r| self.thread(r).is_none())
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Runtime thread registry (debug builds).
// ---------------------------------------------------------------------------

fn registry() -> &'static Mutex<BTreeMap<(String, String), u64>> {
    static REG: OnceLock<Mutex<BTreeMap<(String, String), u64>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// The declared role of the current thread, for channel sender-role
    /// assertions. `None` for harness threads outside any model.
    static CURRENT_ROLE: RefCell<Option<(String, String)>> = const { RefCell::new(None) };
    /// Stack of `(rank, name)` of locks held by this thread.
    static HELD_LOCKS: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Declares the current thread to be an instance of `role` within
/// `component`. Debug builds record it in the global registry (for
/// [`ConcModel::undeclared_observed`]) and remember it thread-locally so
/// tracked channels can assert sender roles. A release no-op.
///
/// Each registration that actually *changes* the calling thread's role
/// bumps the component's registration counter (see
/// [`registered_thread_count`]); re-registering the same role on the same
/// thread is idempotent, so a long-lived supervisor thread re-entering
/// the same role across runs does not inflate the count.
pub fn register_thread(component: &str, role: &str) {
    if cfg!(debug_assertions) {
        let pair = (component.to_string(), role.to_string());
        let already = CURRENT_ROLE.with(|r| r.borrow().as_ref() == Some(&pair));
        if !already {
            *registry()
                .lock()
                .expect("conc registry")
                .entry(pair.clone())
                .or_insert(0) += 1;
            CURRENT_ROLE.with(|r| *r.borrow_mut() = Some(pair));
        }
    }
}

/// Every role observed so far for `component`, sorted. Empty in release
/// builds (nothing is recorded there).
pub fn observed_threads(component: &str) -> Vec<String> {
    registry()
        .lock()
        .expect("conc registry")
        .keys()
        .filter(|(c, _)| c == component)
        .map(|(_, r)| r.clone())
        .collect()
}

/// Total number of thread-role registrations recorded for `component` so
/// far (cumulative across the process lifetime; zero in release builds).
/// Tests bound a run's thread footprint by measuring the delta across the
/// run: an inproc cluster run must register at most
/// `nodes + shards + O(1)` new roles.
pub fn registered_thread_count(component: &str) -> u64 {
    registry()
        .lock()
        .expect("conc registry")
        .iter()
        .filter(|((c, _), _)| c == component)
        .map(|(_, n)| *n)
        .sum()
}

/// Spawns a thread pre-registered as `role` of `component`. The one
/// blessed way for a modeled component to create a thread — a bare
/// `thread::spawn` in `cluster`/`mp` is a review smell, and a role that
/// drifts from the declaration fails the debug-build coverage check.
pub fn spawn_registered<F, T>(
    component: &'static str,
    role: &'static str,
    f: F,
) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::spawn(move || {
        register_thread(component, role);
        f()
    })
}

// ---------------------------------------------------------------------------
// TrackedMutex: declared identity + runtime acquisition-order assertion.
// ---------------------------------------------------------------------------

/// A mutex with a declared identity and rank. Debug builds assert on
/// every `lock()` that this thread's held locks all have strictly
/// smaller rank — the runtime mirror of the declared partial acquisition
/// order the `conc-deadlock` lint checks statically.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    name: &'static str,
    rank: u32,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// A mutex carrying the identity of `decl`.
    pub fn new(decl: &LockDecl, value: T) -> Self {
        TrackedMutex {
            name: decl.name,
            rank: decl.rank,
            inner: Mutex::new(value),
        }
    }

    /// The declared name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock. Debug builds panic on an acquisition-order
    /// inversion (taking a lock whose rank is not strictly above every
    /// lock already held by this thread).
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        if cfg!(debug_assertions) {
            HELD_LOCKS.with(|h| {
                if let Some(&(top_rank, top_name)) = h.borrow().last() {
                    assert!(
                        self.rank > top_rank,
                        "lock-order inversion: acquiring `{}` (rank {}) while holding `{}` \
                         (rank {}) — the declared acquisition order is strictly increasing rank",
                        self.name,
                        self.rank,
                        top_name,
                        top_rank
                    );
                }
            });
        }
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if cfg!(debug_assertions) {
            HELD_LOCKS.with(|h| h.borrow_mut().push((self.rank, self.name)));
        }
        TrackedGuard { guard }
    }
}

/// Guard returned by [`TrackedMutex::lock`]; pops the held-lock stack on
/// drop (debug builds).
pub struct TrackedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if cfg!(debug_assertions) {
            HELD_LOCKS.with(|h| {
                h.borrow_mut().pop();
            });
        }
    }
}

// ---------------------------------------------------------------------------
// TrackedChannel: declared bound + policy enforced at the send site.
// ---------------------------------------------------------------------------

/// Shared counters of one tracked channel (cheap enough for release).
#[derive(Debug, Default)]
pub struct ChannelStats {
    /// Messages dropped by the [`FullPolicy::Shed`] policy.
    pub shed: AtomicU64,
    /// Blocking sends forced by the [`FullPolicy::Block`] policy.
    pub stalls: AtomicU64,
}

impl ChannelStats {
    /// Messages shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Backpressure stalls so far.
    pub fn stall_count(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

/// What happened to one tracked send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Queued (possibly after a counted blocking stall).
    Sent,
    /// Dropped by the shed policy (queue full).
    Shed,
    /// The receiver is gone.
    Disconnected,
}

/// Sending half of a tracked channel: enforces the declared full-queue
/// policy and (debug builds) that the calling thread's registered role is
/// among the declared senders.
pub struct TrackedSender<M> {
    tx: SyncSender<M>,
    name: &'static str,
    component: &'static str,
    policy: FullPolicy,
    senders: Arc<Vec<&'static str>>,
    stats: Arc<ChannelStats>,
}

impl<M> Clone for TrackedSender<M> {
    fn clone(&self) -> Self {
        TrackedSender {
            tx: self.tx.clone(),
            name: self.name,
            component: self.component,
            policy: self.policy,
            senders: self.senders.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<M> TrackedSender<M> {
    /// Sends under the declared policy. `Block` falls back to a blocking
    /// `send` when the queue is full (counted as a stall — backpressure
    /// deliberately propagates to the caller); `Shed` drops the message
    /// and counts it instead, so the sender can never block here.
    pub fn send(&self, msg: M) -> SendOutcome {
        self.assert_sender_role();
        match self.tx.try_send(msg) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Disconnected(_)) => SendOutcome::Disconnected,
            Err(TrySendError::Full(msg)) => match self.policy {
                FullPolicy::Shed => {
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    SendOutcome::Shed
                }
                FullPolicy::Block => {
                    self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                    match self.tx.send(msg) {
                        Ok(()) => SendOutcome::Sent,
                        Err(_) => SendOutcome::Disconnected,
                    }
                }
            },
        }
    }

    fn assert_sender_role(&self) {
        if cfg!(debug_assertions) {
            CURRENT_ROLE.with(|r| {
                if let Some((component, role)) = r.borrow().as_ref() {
                    // Threads registered under another component (or not
                    // registered at all) are outside this model's
                    // jurisdiction — unit tests drive channels directly.
                    if component == self.component && !self.senders.iter().any(|s| s == role) {
                        panic!(
                            "undeclared sender: thread role `{role}` sent on channel `{}`, \
                             whose declared senders are {:?}",
                            self.name, self.senders
                        );
                    }
                }
            });
        }
    }
}

/// Constructs the channel a [`ChannelDecl`] describes: a bounded
/// `sync_channel` of exactly the declared capacity, with a
/// [`TrackedSender`] enforcing the declared policy. Panics if the
/// declaration is unbounded or policy-free — the same condition the
/// `conc-unbounded` lint rejects statically, so an undeclared unbounded
/// channel cannot be constructed at runtime either.
pub fn tracked_channel<M>(
    component: &'static str,
    decl: &ChannelDecl,
) -> (TrackedSender<M>, Receiver<M>, Arc<ChannelStats>) {
    let bound = decl.bound.unwrap_or_else(|| {
        panic!(
            "channel `{}` is declared unbounded — every cross-thread channel must declare \
             a bound (conc-unbounded)",
            decl.name
        )
    });
    let policy = decl.policy.unwrap_or_else(|| {
        panic!(
            "channel `{}` declares no full-queue policy — every bounded channel must say \
             whether it blocks or sheds (conc-unbounded)",
            decl.name
        )
    });
    let (tx, rx) = sync_channel(bound);
    let stats = Arc::new(ChannelStats::default());
    (
        TrackedSender {
            tx,
            name: decl.name,
            component,
            policy,
            senders: Arc::new(decl.senders.clone()),
            stats: stats.clone(),
        },
        rx,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_decl(name: &'static str, rank: u32) -> LockDecl {
        LockDecl {
            name,
            rank,
            doc: "",
        }
    }

    fn chan_decl(
        name: &'static str,
        bound: Option<usize>,
        policy: Option<FullPolicy>,
    ) -> ChannelDecl {
        ChannelDecl {
            name,
            senders: vec!["t.sender"],
            receiver: "t.receiver",
            bound,
            policy,
            doc: "",
        }
    }

    #[test]
    fn ordered_acquisition_is_fine() {
        let a = TrackedMutex::new(&lock_decl("a", 1), 0u32);
        let b = TrackedMutex::new(&lock_decl("b", 2), 0u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        // Re-acquisition after release is fine too.
        let gb = b.lock();
        drop(gb);
        let ga = a.lock();
        drop(ga);
    }

    /// Extracts the human-readable message from a `join()` panic payload
    /// (its `Debug` impl only prints `Any { .. }`).
    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = err.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            "non-string panic payload".to_string()
        }
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "order assertion is debug-only")]
    fn order_inversion_panics() {
        // Runtime red test: the planted inversion must be caught.
        let caught = std::thread::spawn(|| {
            let a = TrackedMutex::new(&lock_decl("a", 1), 0u32);
            let b = TrackedMutex::new(&lock_decl("b", 2), 0u32);
            let _gb = b.lock();
            let _ga = a.lock(); // rank 1 under rank 2: inversion
        })
        .join();
        let msg = panic_message(caught.expect_err("inversion must panic"));
        assert!(msg.contains("lock-order inversion"), "{msg}");
    }

    #[test]
    fn undeclared_unbounded_channel_is_refused() {
        // Runtime red test: a declaration without a bound cannot be built.
        let caught = std::thread::spawn(|| {
            let _ = tracked_channel::<u64>("t", &chan_decl("c", None, Some(FullPolicy::Block)));
        })
        .join();
        let msg = panic_message(caught.expect_err("unbounded must panic"));
        assert!(msg.contains("conc-unbounded"), "{msg}");
        let caught = std::thread::spawn(|| {
            let _ = tracked_channel::<u64>("t", &chan_decl("c", Some(4), None));
        })
        .join();
        assert!(caught.is_err(), "policy-free must panic too");
    }

    #[test]
    fn shed_policy_drops_and_counts_instead_of_blocking() {
        let decl = chan_decl("shed", Some(2), Some(FullPolicy::Shed));
        let (tx, rx, stats) = tracked_channel::<u64>("t", &decl);
        assert_eq!(tx.send(1), SendOutcome::Sent);
        assert_eq!(tx.send(2), SendOutcome::Sent);
        assert_eq!(tx.send(3), SendOutcome::Shed);
        assert_eq!(tx.send(4), SendOutcome::Shed);
        assert_eq!(stats.shed_count(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(tx.send(5), SendOutcome::Sent);
        drop(rx);
        assert_eq!(tx.send(6), SendOutcome::Disconnected);
    }

    #[test]
    fn block_policy_counts_stalls() {
        let decl = chan_decl("block", Some(1), Some(FullPolicy::Block));
        let (tx, rx, stats) = tracked_channel::<u64>("t", &decl);
        assert_eq!(tx.send(1), SendOutcome::Sent);
        let drainer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        assert_eq!(tx.send(2), SendOutcome::Sent); // may stall until drained
        drop(tx.clone());
        let stalls = stats.stall_count();
        drop(tx);
        assert_eq!(drainer.join().unwrap(), vec![1, 2]);
        // 0 or more stalls depending on scheduling; just exercise the path.
        let _ = stalls;
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "registry is debug-only")]
    fn registry_records_roles_and_model_confronts_them() {
        spawn_registered("conc-test", "t.writer", || {})
            .join()
            .unwrap();
        spawn_registered("conc-test", "t.rogue", || {})
            .join()
            .unwrap();
        let observed = observed_threads("conc-test");
        assert!(observed.contains(&"t.writer".to_string()));
        let model = ConcModel {
            component: "conc-test",
            threads: vec![ThreadDecl {
                role: "t.writer",
                multiplicity: Multiplicity::One,
                spawned_by: EXTERN_ROLE,
                doc: "",
            }],
            ..Default::default()
        };
        assert_eq!(model.undeclared_observed(&observed), vec!["t.rogue"]);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sender-role assertion is debug-only")]
    fn undeclared_sender_role_panics() {
        let decl = chan_decl("roles", Some(4), Some(FullPolicy::Block));
        let (tx, _rx, _stats) = tracked_channel::<u64>("conc-test2", &decl);
        let good = tx.clone();
        std::thread::spawn(move || {
            register_thread("conc-test2", "t.sender");
            assert_eq!(good.send(1), SendOutcome::Sent);
        })
        .join()
        .unwrap();
        let bad = tx.clone();
        let caught = std::thread::spawn(move || {
            register_thread("conc-test2", "t.other");
            let _ = bad.send(2);
        })
        .join();
        let msg = panic_message(caught.expect_err("undeclared sender must panic"));
        assert!(msg.contains("undeclared sender"), "{msg}");
    }
}
