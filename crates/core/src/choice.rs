//! The fair selection procedure `choice_p(d)`.
//!
//! Algorithm 1: *"fairly chooses one of the processors which can forward or
//! generate a message in `bufR_p(d)`"*, i.e. a processor satisfying
//!
//! ```text
//! (choice ∈ N_p ∧ bufE_choice(d) = (m,q,c) ∧ nextHop_choice(d) = p)
//!   ∨ (choice = p ∧ request_p)
//! ```
//!
//! *"We can manage this fairness with a queue of length Δ+1 of processors
//! which satisfies the predicate."* We implement the queue as a rotation
//! pointer over the fixed candidate space `N_p ∪ {p}` (size `deg(p)+1 ≤
//! Δ+1`): `choice_p(d)` is the first satisfying candidate at or after the
//! pointer, cyclically, and the pointer advances past a candidate whenever
//! it is served (rules R1/R3). A candidate that satisfies the predicate
//! continuously is therefore served after at most `deg(p)` other services —
//! the bounded-overtaking property Proposition 5's `Δ^D` bound consumes.
//!
//! `choice_p(d)` is a *function of the state*: guards may evaluate it freely
//! and two processors evaluating each other's predicates see consistent
//! values within a step (all reads are against the pre-step configuration).

use crate::state::NodeState;
use ssmfp_kernel::View;
use ssmfp_topology::NodeId;

/// A resolved choice: who may fill `bufR_p(d)` and from which position of
/// the candidate space it was drawn (used to advance the pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// The chosen processor (`p` itself for generation, a neighbour for
    /// forwarding).
    pub who: NodeId,
    /// Position in `N_p ∪ {p}` (`deg(p)` = the self position).
    pub position: usize,
}

/// How `choice_p(d)` selects among satisfying candidates.
///
/// The paper (§4) singles out the selection scheme as the lever for
/// improving the worst case: *"we believe that we can keep our protocol
/// and modify the fair scheme of selection of messages `choice_p(d)`"*.
/// This enum makes the scheme pluggable:
///
/// * [`ChoiceStrategy::RotationQueue`] — the paper's queue of length
///   `Δ+1`, realized as a rotation pointer (default; bounded overtaking
///   ≤ Δ).
/// * [`ChoiceStrategy::LongestWaiting`] — serve the candidate that has
///   satisfied the predicate through the most services (LRU-like; also
///   fair, different constants).
/// * [`ChoiceStrategy::GreedyFirst`] — always the first satisfying
///   position. **Unfair**: a continuously supplied earlier candidate
///   starves later ones — the E13 ablation shows SP's liveness breaking,
///   demonstrating that the fairness of `choice_p(d)` is load-bearing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChoiceStrategy {
    /// The paper's fair rotation queue (default).
    #[default]
    RotationQueue,
    /// Longest-waiting-first (fair alternative).
    LongestWaiting,
    /// First satisfying position (unfair — ablation only).
    GreedyFirst,
}

/// Whether the candidate at `position` currently satisfies the predicate.
pub(crate) fn satisfies(view: &View<'_, NodeState>, d: NodeId, position: usize) -> bool {
    let neighbors = view.neighbors();
    let me = view.me();
    if position == neighbors.len() {
        // Generation candidate: p itself, with a waiting message for d.
        me.request && me.outbox.front().map(|o| o.dest) == Some(d)
    } else {
        // Forwarding candidate: neighbour with a message for d in its
        // emission buffer whose routing table points here.
        let q = neighbors[position];
        let qs = view.state(q);
        qs.slots[d].buf_e.is_some() && qs.routing.parent[d] == view.me_id()
    }
}

fn who_at(view: &View<'_, NodeState>, position: usize) -> NodeId {
    if position == view.neighbors().len() {
        view.me_id()
    } else {
        view.neighbors()[position]
    }
}

/// Evaluates `choice_p(d)` at the viewing processor under the paper's
/// rotation-queue strategy (see [`choice_with`] for the pluggable form).
pub fn choice(view: &View<'_, NodeState>, d: NodeId) -> Option<Choice> {
    choice_with(view, d, ChoiceStrategy::RotationQueue)
}

/// Evaluates `choice_p(d)` under a selection strategy. Pure function of
/// the configuration: guards may call it freely.
pub fn choice_with(
    view: &View<'_, NodeState>,
    d: NodeId,
    strategy: ChoiceStrategy,
) -> Option<Choice> {
    let len = view.neighbors().len() + 1;
    match strategy {
        ChoiceStrategy::RotationQueue => {
            let start = view.me().slots[d].choice_ptr % len;
            (0..len)
                .map(|offset| (start + offset) % len)
                .find(|&position| satisfies(view, d, position))
                .map(|position| Choice {
                    who: who_at(view, position),
                    position,
                })
        }
        ChoiceStrategy::LongestWaiting => {
            let slot = &view.me().slots[d];
            (0..len)
                .filter(|&position| satisfies(view, d, position))
                // Max wait; ties broken toward the smallest position. The
                // negated-wait/position key makes `min_by_key` do both.
                .min_by_key(|&position| {
                    let wait = slot
                        .waits
                        .as_deref()
                        .and_then(|w| w.get(position))
                        .copied()
                        .unwrap_or(0);
                    (std::cmp::Reverse(wait), position)
                })
                .map(|position| Choice {
                    who: who_at(view, position),
                    position,
                })
        }
        ChoiceStrategy::GreedyFirst => {
            (0..len)
                .find(|&position| satisfies(view, d, position))
                .map(|position| Choice {
                    who: who_at(view, position),
                    position,
                })
        }
    }
}

/// The pointer value after serving the candidate at `position` (it moves
/// just past the served candidate).
pub fn advance_ptr(position: usize, degree: usize) -> usize {
    (position + 1) % (degree + 1)
}

/// Applies the post-service bookkeeping of `strategy` to the slot of the
/// served destination: advances the rotation pointer, or resets/increments
/// the wait counters. `satisfying` lists the positions that satisfied the
/// predicate at service time.
pub fn after_serve(
    slot: &mut crate::state::FwdSlot,
    served_position: usize,
    degree: usize,
    strategy: ChoiceStrategy,
    satisfying: &[usize],
) {
    match strategy {
        ChoiceStrategy::RotationQueue => {
            slot.choice_ptr = advance_ptr(served_position, degree);
        }
        ChoiceStrategy::LongestWaiting => {
            let len = degree + 1;
            let needs_grow = slot.waits.as_deref().map(|w| w.len() < len).unwrap_or(true);
            if needs_grow {
                let mut grown = vec![0u32; len];
                if let Some(old) = slot.waits.as_deref() {
                    grown[..old.len()].copy_from_slice(old);
                }
                slot.waits = Some(grown.into_boxed_slice());
            }
            let waits = slot.waits.as_deref_mut().expect("just materialized");
            for &pos in satisfying {
                if pos < waits.len() {
                    waits[pos] = waits[pos].saturating_add(1);
                }
            }
            waits[served_position] = 0;
        }
        ChoiceStrategy::GreedyFirst => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Color, GhostId, Message};
    use crate::state::{NodeState, Outgoing};
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::{gen, Graph};

    /// Star with hub 0: every leaf is a neighbour of the hub.
    fn setup(n: usize) -> (Graph, Vec<NodeState>) {
        let g = gen::star(n);
        let routing = corruption::corrupt(&g, CorruptionKind::None, 0);
        let states = routing
            .into_iter()
            .map(|r| NodeState::clean(n, r))
            .collect();
        (g, states)
    }

    fn msg(payload: u64, last_hop: NodeId, color: u8) -> Message {
        Message {
            payload,
            last_hop,
            color: Color(color),
            ghost: GhostId::Invalid(0),
        }
    }

    #[test]
    fn no_candidates_means_none() {
        let (g, states) = setup(4);
        let view = View::new(&g, &states, 0);
        assert_eq!(choice(&view, 2), None);
    }

    #[test]
    fn neighbor_with_emission_toward_us_is_chosen() {
        let (g, mut states) = setup(4);
        // Leaf 2 has a message for destination 3 in its emission buffer;
        // its route to 3 goes through hub 0.
        states[2].slots[3].buf_e = Some(msg(9, 2, 1));
        assert_eq!(states[2].routing.parent[3], 0);
        let view = View::new(&g, &states, 0);
        let c = choice(&view, 3).expect("leaf 2 is a candidate");
        assert_eq!(c.who, 2);
    }

    #[test]
    fn neighbor_pointing_elsewhere_is_not_a_candidate() {
        let (g, mut states) = setup(4);
        states[2].slots[3].buf_e = Some(msg(9, 2, 1));
        states[2].routing.parent[3] = 2; // corrupted: points at itself
        let view = View::new(&g, &states, 0);
        assert_eq!(choice(&view, 3), None);
    }

    #[test]
    fn self_candidate_requires_request_and_matching_destination() {
        let (g, mut states) = setup(4);
        states[0].outbox.push_back(Outgoing {
            dest: 2,
            payload: 5,
            ghost: GhostId::Valid(0),
        });
        // Not yet requested.
        let view = View::new(&g, &states, 0);
        assert_eq!(choice(&view, 2), None);
        states[0].request = true;
        let view = View::new(&g, &states, 0);
        let c = choice(&view, 2).expect("self-candidate");
        assert_eq!(c.who, 0);
        assert_eq!(c.position, g.degree(0));
        // Wrong destination: not a candidate there.
        assert_eq!(choice(&view, 1), None);
    }

    #[test]
    fn rotation_serves_candidates_fairly() {
        let (g, mut states) = setup(5);
        // Leaves 1, 2, 3 all compete for destination 4's reception buffer
        // at the hub.
        for leaf in [1, 2, 3] {
            states[leaf].slots[4].buf_e = Some(msg(leaf as u64, leaf, 0));
        }
        // Hub neighbours are [1, 2, 3, 4]; candidate positions 0, 1, 2.
        let mut served = Vec::new();
        for _ in 0..3 {
            let view = View::new(&g, &states, 0);
            let c = choice(&view, 4).expect("candidates exist");
            served.push(c.who);
            let pos = c.position;
            states[0].slots[4].choice_ptr = advance_ptr(pos, g.degree(0));
            states[c.who].slots[4].buf_e = None; // message consumed upstream
        }
        served.sort_unstable();
        assert_eq!(served, vec![1, 2, 3], "each competitor served once");
    }

    #[test]
    fn bounded_overtaking_with_persistent_competitor() {
        // Competitor 1 always refills its emission buffer; competitor 3 must
        // still be served within deg(p) services.
        let (g, mut states) = setup(5);
        states[1].slots[4].buf_e = Some(msg(1, 1, 0));
        states[3].slots[4].buf_e = Some(msg(3, 3, 0));
        let mut services_until_3 = 0;
        loop {
            let view = View::new(&g, &states, 0);
            let c = choice(&view, 4).expect("candidates exist");
            let (who, pos) = (c.who, c.position);
            states[0].slots[4].choice_ptr = advance_ptr(pos, g.degree(0));
            services_until_3 += 1;
            if who == 3 {
                break;
            }
            // Competitor 1 refills immediately (buffer already full).
            assert!(services_until_3 <= g.degree(0) + 1, "starved");
        }
        assert!(services_until_3 <= g.degree(0));
    }

    #[test]
    fn advance_ptr_wraps() {
        assert_eq!(advance_ptr(0, 3), 1);
        assert_eq!(advance_ptr(3, 3), 0);
    }
}
