//! Packed state codec: message interning and a flat fixed-width encoding
//! of [`NodeState`].
//!
//! The checker's exploration and the snapshot/replay paths all store many
//! configurations at once; the natural representation (a
//! `Vec<Arc<NodeState>>` of pointer-heavy nodes) makes every stored state
//! cost hundreds of bytes of scattered heap. This module provides the
//! compact alternative, the standard explicit-state model-checking trick:
//!
//! * [`MessageTable`] interns [`Message`] values to dense `u32` ids for
//!   the duration of a run. Messages are immutable triplets plus a ghost;
//!   the number of *distinct* messages in a run is tiny compared to the
//!   number of buffer occupancies, so a 4-byte id replaces a 32-byte
//!   struct wherever a buffer is occupied.
//! * [`StateCodec`] encodes one processor's full state — the routing
//!   variables (`dist`/`parent` per destination), the per-destination
//!   forwarding slots (`bufR`/`bufE` as interned ids, the `choice`
//!   rotation pointer, the `LongestWaiting` wait counters when present),
//!   the `request` bit, the higher-layer outbox, and the destination
//!   cursor — into flat `u32` words with a lossless
//!   [`StateCodec::pack_node`]/[`StateCodec::unpack_node`] roundtrip.
//!
//! # Word layout (per node)
//!
//! ```text
//! w0              dest_cursor:16 | outbox_len:15 | request:1
//! outbox entries  [ valid:1|dest:16 , payload_lo, payload_hi, ghost_lo, ghost_hi ] × outbox_len
//! routing         [ dist:16 | parent:16 ] × n           (one word per destination)
//! slots           [ bufR_id , bufE_id ,                  (u32::MAX = empty)
//!                   waits_tag:16 | choice_ptr:16 ,       (waits_tag = 0: no counters;
//!                   waits × (waits_tag − 1) ]            (k+1: k counters follow) × n
//! ```
//!
//! All domains are bounded by the model itself (`dist ≤ n`, `parent < n`,
//! `choice_ptr ≤ deg(p)`, `dest < n`), so the 16-bit fields are exact for
//! every instance with `n < 2^16`; [`StateCodec::new`] asserts the bound.
//! Ghost identities and payloads keep their full 64 bits.
//!
//! The codec **reads every shared variable and writes none** — it is an
//! observer in the footprint model's sense. [`codec_footprint`] declares
//! that surface so `ssmfp-lint` can check it stays an observer and that
//! its reads cover every declared variable class (a newly added variable
//! class that the codec does not encode fails the lint instead of rotting
//! silently).
//!
//! Determinism note: interned ids depend on first-encounter order, so the
//! packed words are **not canonical** across runs — equality of packed
//! states must go through [`StateCodec::fingerprint`] (or unpacking),
//! never through word comparison.

use crate::footprint::{
    BUF_E, BUF_R, CHOICE_PTR, DEST_CURSOR, LAYER_SSMFP, OUTBOX, REQUEST, WAITS,
};
use crate::message::{GhostId, Message};
use crate::state::{FwdSlot, NodeState, Outgoing};
use fxhash::FxHashMap;
use ssmfp_kernel::footprint::{Access, Footprint};
use ssmfp_routing::footprint::{DIST, PARENT};
use ssmfp_routing::RoutingState;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Sentinel id for an empty buffer.
pub const NO_MESSAGE: u32 = u32::MAX;

/// Interns [`Message`] values to dense `u32` ids for one run.
///
/// Ids are assigned in first-intern order and never recycled; resolving
/// is an array index. The table is append-only, so a reader holding ids
/// obtained earlier can always resolve them — the checker exploits this
/// by letting parallel workers resolve through `&self` while all
/// interning happens in the sequential merge phase through `&mut self`.
#[derive(Debug, Default, Clone)]
pub struct MessageTable {
    ids: FxHashMap<Message, u32>,
    messages: Vec<Message>,
}

impl MessageTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `m`, returning its dense id (stable for the table's
    /// lifetime).
    pub fn intern(&mut self, m: Message) -> u32 {
        if let Some(&id) = self.ids.get(&m) {
            return id;
        }
        let id = u32::try_from(self.messages.len()).expect("message table overflow");
        assert!(id != NO_MESSAGE, "message table exhausted the id space");
        self.messages.push(m);
        self.ids.insert(m, id);
        id
    }

    /// Resolves an id previously returned by [`MessageTable::intern`].
    #[inline]
    pub fn resolve(&self, id: u32) -> Message {
        self.messages[id as usize]
    }

    /// Number of distinct interned messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Approximate heap footprint of the table (both the dense array and
    /// the hash index).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.messages.capacity() * size_of::<Message>()
            + self.ids.capacity() * (size_of::<Message>() + size_of::<u32>() + size_of::<u64>())
    }
}

/// Flat fixed-width encoder/decoder for [`NodeState`] (see the module
/// docs for the exact word layout).
#[derive(Debug, Clone, Copy)]
pub struct StateCodec {
    n: usize,
}

impl StateCodec {
    /// A codec for instances with `n` processors (= destinations).
    pub fn new(n: usize) -> Self {
        assert!(n < (1 << 16), "codec fields are 16-bit: n must be < 65536");
        StateCodec { n }
    }

    /// The instance size this codec was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    fn pack_message(m: Option<&Message>, table: &mut MessageTable) -> u32 {
        match m {
            None => NO_MESSAGE,
            Some(&m) => table.intern(m),
        }
    }

    fn unpack_message(id: u32, table: &MessageTable) -> Option<Message> {
        if id == NO_MESSAGE {
            None
        } else {
            Some(table.resolve(id))
        }
    }

    fn pack_ghost(g: GhostId, out: &mut Vec<u32>) -> u32 {
        let (tag, lo, hi) = encode_ghost(g);
        out.push(lo);
        out.push(hi);
        tag
    }

    fn unpack_ghost(tag: u32, lo: u32, hi: u32) -> GhostId {
        decode_ghost(tag, lo, hi)
    }

    /// Appends the packed encoding of `node` to `out`, interning any
    /// messages it holds. Lossless: [`StateCodec::unpack_node`] on the
    /// appended words reconstructs `node` exactly.
    pub fn pack_node(&self, node: &NodeState, table: &mut MessageTable, out: &mut Vec<u32>) {
        debug_assert_eq!(node.slots.len(), self.n, "slot count must match codec n");
        debug_assert_eq!(node.routing.dist.len(), self.n);
        let outbox_len = node.outbox.len();
        assert!(outbox_len < (1 << 15), "outbox too long for the codec");
        out.push(
            ((node.dest_cursor as u32) << 16)
                | ((outbox_len as u32) << 1)
                | u32::from(node.request),
        );
        for o in &node.outbox {
            let at = out.len();
            out.push(0); // patched below: valid:1 | dest:16
            out.push(o.payload as u32);
            out.push((o.payload >> 32) as u32);
            let tag = Self::pack_ghost(o.ghost, out);
            out[at] = (tag << 16) | o.dest as u32;
        }
        for d in 0..self.n {
            let dist = node.routing.dist[d];
            let parent = node.routing.parent[d];
            debug_assert!(dist < (1 << 16) && parent < (1 << 16));
            out.push((dist << 16) | parent as u32);
        }
        for slot in &node.slots {
            out.push(Self::pack_message(slot.buf_r.as_ref(), table));
            out.push(Self::pack_message(slot.buf_e.as_ref(), table));
            let waits_tag = match &slot.waits {
                None => 0u32,
                Some(w) => {
                    assert!(w.len() < (1 << 16) - 1, "wait counters too long");
                    w.len() as u32 + 1
                }
            };
            debug_assert!(slot.choice_ptr < (1 << 16));
            out.push((waits_tag << 16) | slot.choice_ptr as u32);
            if let Some(w) = &slot.waits {
                out.extend_from_slice(w);
            }
        }
    }

    /// Decodes one node from the front of `words`, returning the state and
    /// the number of words consumed.
    pub fn unpack_node(&self, words: &[u32], table: &MessageTable) -> (NodeState, usize) {
        let mut at = 0;
        macro_rules! next {
            () => {{
                let w = words[at];
                at += 1;
                w
            }};
        }
        let w0 = next!();
        let request = w0 & 1 != 0;
        let outbox_len = ((w0 >> 1) & 0x7FFF) as usize;
        let dest_cursor = (w0 >> 16) as usize;
        let mut outbox = VecDeque::with_capacity(outbox_len);
        for _ in 0..outbox_len {
            let head = next!();
            let payload = next!() as u64 | ((next!() as u64) << 32);
            let (lo, hi) = (next!(), next!());
            outbox.push_back(Outgoing {
                dest: (head & 0xFFFF) as usize,
                payload,
                ghost: Self::unpack_ghost(head >> 16, lo, hi),
            });
        }
        let mut dist = Vec::with_capacity(self.n);
        let mut parent = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let w = next!();
            dist.push(w >> 16);
            parent.push((w & 0xFFFF) as usize);
        }
        let mut slots = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let buf_r = Self::unpack_message(next!(), table);
            let buf_e = Self::unpack_message(next!(), table);
            let w = next!();
            let choice_ptr = (w & 0xFFFF) as usize;
            let waits_tag = (w >> 16) as usize;
            let waits = if waits_tag == 0 {
                None
            } else {
                let k = waits_tag - 1;
                let w: Box<[u32]> = words[at..at + k].into();
                at += k;
                Some(w)
            };
            slots.push(FwdSlot {
                buf_r,
                buf_e,
                choice_ptr,
                waits,
            });
        }
        (
            NodeState {
                routing: RoutingState { dist, parent },
                slots,
                request,
                outbox,
                dest_cursor,
            },
            at,
        )
    }

    /// Packs a whole configuration (every node, in processor order).
    pub fn pack_config(&self, nodes: &[NodeState], table: &mut MessageTable, out: &mut Vec<u32>) {
        for node in nodes {
            self.pack_node(node, table, out);
        }
    }

    /// Unpacks a whole configuration packed by [`StateCodec::pack_config`].
    pub fn unpack_config(&self, words: &[u32], table: &MessageTable) -> Vec<NodeState> {
        let mut nodes = Vec::with_capacity(self.n);
        let mut at = 0;
        for _ in 0..self.n {
            let (node, used) = self.unpack_node(&words[at..], table);
            at += used;
            nodes.push(node);
        }
        debug_assert_eq!(at, words.len(), "trailing words after unpack");
        nodes
    }

    /// Semantic fingerprint of a packed node: the Fx hash of the decoded
    /// state (position-mixed with `p`), i.e. exactly the value hashing the
    /// original [`NodeState`] produces. Two packed nodes — even interned
    /// through different tables, with different id assignments — have
    /// equal fingerprints iff they decode to equal states (modulo 64-bit
    /// collisions). This is the equality surface for packed states; raw
    /// word comparison is meaningless across tables.
    pub fn fingerprint(&self, p: usize, words: &[u32], table: &MessageTable) -> u64 {
        let (node, _) = self.unpack_node(words, table);
        node_fingerprint(p, &node)
    }
}

/// Encodes a ghost identity as `(tag, lo, hi)` words (`tag` = 1 for
/// valid, 0 for invalid); inverse of [`decode_ghost`]. Exposed so callers
/// framing their own word streams (the checker's delivered records) reuse
/// the codec's convention.
pub fn encode_ghost(g: GhostId) -> (u32, u32, u32) {
    let (tag, seq) = match g {
        GhostId::Valid(k) => (1u32, k),
        GhostId::Invalid(k) => (0u32, k),
    };
    (tag, seq as u32, (seq >> 32) as u32)
}

/// Inverse of [`encode_ghost`].
pub fn decode_ghost(tag: u32, lo: u32, hi: u32) -> GhostId {
    let seq = lo as u64 | ((hi as u64) << 32);
    if tag != 0 {
        GhostId::Valid(seq)
    } else {
        GhostId::Invalid(seq)
    }
}

/// Position-mixed Fx hash of a node state — the per-node fingerprint the
/// checker caches and combines (shared here so the codec's fingerprint and
/// the checker's incremental hashing are the same function).
pub fn node_fingerprint(p: usize, node: &NodeState) -> u64 {
    let mut h = fxhash::FxHasher::default();
    h.write_usize(p);
    node.hash(&mut h);
    h.finish()
}

/// Estimated resident bytes of one [`NodeState`] in the pointer-heavy
/// representation (struct + heap blocks), used to report the packed
/// codec's savings honestly. Counts `Vec`/`Box`/`VecDeque` payloads at
/// their lengths plus the container headers; allocator slack is not
/// modelled.
pub fn deep_node_bytes(node: &NodeState) -> usize {
    use std::mem::size_of;
    let mut bytes = size_of::<NodeState>();
    bytes += node.routing.dist.len() * size_of::<u32>();
    bytes += node.routing.parent.len() * size_of::<usize>();
    bytes += node.slots.len() * size_of::<FwdSlot>();
    for slot in &node.slots {
        if let Some(w) = &slot.waits {
            bytes += w.len() * size_of::<u32>();
        }
    }
    bytes += node.outbox.len() * size_of::<Outgoing>();
    bytes
}

/// The codec's declared access surface: a **read of every variable class**
/// of both layers (it serializes the full processor state) and **no
/// writes** (it is a pure observer). `ssmfp-lint` checks both properties
/// and that the read set covers every declared class — adding a new shared
/// variable without teaching the codec about it fails the lint.
pub fn codec_footprint() -> Footprint {
    Footprint::new(
        vec![
            Access::me_all(BUF_R),
            Access::me_all(BUF_E),
            Access::me_all(CHOICE_PTR),
            Access::me_all(WAITS),
            Access::me_global(REQUEST),
            Access::me_global(OUTBOX),
            Access::me_global(DEST_CURSOR),
            Access::me_all(DIST),
            Access::me_all(PARENT),
        ],
        Vec::new(),
    )
}

/// The layer tag reported for the codec observer in lint output.
pub const CODEC_OBSERVER: &str = LAYER_SSMFP;

/// A packed snapshot of a full configuration, self-contained: carries its
/// own message table, so it can be stored, shipped, and restored later
/// (the `Network` snapshot path).
#[derive(Debug, Clone)]
pub struct PackedSnapshot {
    codec: StateCodec,
    table: MessageTable,
    words: Box<[u32]>,
}

impl PackedSnapshot {
    /// Packs `nodes` into a self-contained snapshot.
    pub fn capture(nodes: &[NodeState]) -> Self {
        let codec = StateCodec::new(nodes.len());
        let mut table = MessageTable::new();
        let mut words = Vec::new();
        codec.pack_config(nodes, &mut table, &mut words);
        PackedSnapshot {
            codec,
            table,
            words: words.into_boxed_slice(),
        }
    }

    /// Restores the configuration the snapshot was captured from.
    pub fn restore(&self) -> Vec<NodeState> {
        self.codec.unpack_config(&self.words, &self.table)
    }

    /// Packed payload size in bytes (words + interned messages).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>() + self.table.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn garbage_config(seed: u64) -> Vec<NodeState> {
        let g = gen::random_connected(7, 4, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut inv = 0;
        corruption::corrupt(&g, CorruptionKind::RandomGarbage, seed)
            .into_iter()
            .enumerate()
            .map(|(p, r)| {
                let mut s = NodeState::clean(g.n(), r);
                s.scatter_garbage(&g, p, 0.5, &mut rng, &mut inv);
                s
            })
            .collect()
    }

    #[test]
    fn roundtrip_clean_config() {
        let g = gen::line(4);
        let nodes: Vec<NodeState> = corruption::corrupt(&g, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(4, r))
            .collect();
        let codec = StateCodec::new(4);
        let mut table = MessageTable::new();
        let mut words = Vec::new();
        codec.pack_config(&nodes, &mut table, &mut words);
        assert_eq!(codec.unpack_config(&words, &table), nodes);
        assert!(table.is_empty(), "clean config has no messages to intern");
    }

    #[test]
    fn roundtrip_garbage_with_outbox_and_waits() {
        let mut nodes = garbage_config(3);
        nodes[0].outbox.push_back(Outgoing {
            dest: 5,
            payload: u64::MAX - 7,
            ghost: GhostId::Valid(u64::MAX),
        });
        nodes[0].request = true;
        nodes[2].slots[1].waits = Some(vec![3, 0, 9].into_boxed_slice());
        nodes[3].dest_cursor = 6;
        let codec = StateCodec::new(nodes.len());
        let mut table = MessageTable::new();
        let mut words = Vec::new();
        codec.pack_config(&nodes, &mut table, &mut words);
        assert_eq!(codec.unpack_config(&words, &table), nodes);
        assert!(!table.is_empty());
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut table = MessageTable::new();
        let m1 = Message::generated(1, 0, GhostId::Valid(0));
        let m2 = Message::generated(2, 0, GhostId::Valid(1));
        assert_eq!(table.intern(m1), 0);
        assert_eq!(table.intern(m2), 1);
        assert_eq!(table.intern(m1), 0, "re-interning returns the same id");
        assert_eq!(table.resolve(1), m2);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn fingerprint_is_table_independent() {
        let nodes = garbage_config(9);
        let codec = StateCodec::new(nodes.len());
        // Pack node 2 through two tables with different pre-seeded id
        // assignments; fingerprints must agree with the deep hash either way.
        let mut t1 = MessageTable::new();
        let mut t2 = MessageTable::new();
        t2.intern(Message::generated(99, 0, GhostId::Valid(4242)));
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        codec.pack_node(&nodes[2], &mut t1, &mut w1);
        codec.pack_node(&nodes[2], &mut t2, &mut w2);
        let deep = node_fingerprint(2, &nodes[2]);
        assert_eq!(codec.fingerprint(2, &w1, &t1), deep);
        assert_eq!(codec.fingerprint(2, &w2, &t2), deep);
    }

    #[test]
    fn snapshot_roundtrip() {
        let nodes = garbage_config(5);
        let snap = PackedSnapshot::capture(&nodes);
        assert_eq!(snap.restore(), nodes);
        assert!(snap.packed_bytes() > 0);
    }

    #[test]
    fn codec_footprint_is_pure() {
        let fp = codec_footprint();
        assert!(fp.writes.is_empty());
        assert!(!fp.reads.is_empty());
    }
}
