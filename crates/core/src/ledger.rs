//! The specification monitors: executable versions of `SP` and `SP'`.
//!
//! [`DeliveryLedger`] consumes the engine's event stream and maintains the
//! ground truth the proofs reason about: which valid messages were
//! generated, how often each physical message (ghost identity) was
//! delivered, and how many *invalid* messages reached each destination.
//! [`DeliveryLedger::check_sp`] then audits Specification `SP` —
//!
//! * no valid message delivered more than once (Lemma 5: no duplication),
//! * no valid message lost: every generated message is delivered or still
//!   in flight (Lemma 4: no deletion without delivery),
//! * at most `2n` invalid messages delivered per destination
//!   (Proposition 4).

use crate::message::{GhostId, Payload};
use crate::protocol::Event;
use crate::state::NodeState;
use crate::wire::ClientStamp;
use ssmfp_kernel::engine::EventRecord;
use ssmfp_topology::NodeId;
use std::collections::HashMap;

/// A violation of Specification `SP` (or of Proposition 4's bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpViolation {
    /// A valid message was delivered more than once.
    DuplicateDelivery {
        /// The offending message.
        ghost: GhostId,
        /// How many times it was delivered.
        count: u64,
    },
    /// A valid message was generated, never delivered, and no copy of it
    /// remains in any buffer: it was lost.
    Lost {
        /// The lost message.
        ghost: GhostId,
    },
    /// A valid message was delivered to a processor other than its
    /// destination.
    Misdelivered {
        /// The message.
        ghost: GhostId,
        /// Where it should have gone.
        expected: NodeId,
        /// Where it arrived.
        actual: NodeId,
    },
    /// More than `2n` invalid messages were delivered to one destination.
    InvalidOverBound {
        /// The destination.
        dest: NodeId,
        /// Invalid deliveries observed there.
        count: u64,
        /// The Proposition 4 bound `2n`.
        bound: u64,
    },
}

/// Record of one generated (valid) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratedRecord {
    /// The generating processor.
    pub source: NodeId,
    /// The destination.
    pub dest: NodeId,
    /// The payload.
    pub payload: Payload,
    /// Step stamp of the generation.
    pub step: u64,
    /// Round stamp of the generation.
    pub round: u64,
}

/// Record of one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The delivering (destination) processor.
    pub node: NodeId,
    /// Step stamp.
    pub step: u64,
    /// Round stamp.
    pub round: u64,
}

/// Ground-truth accounting of generations and deliveries.
#[derive(Debug, Clone, Default)]
pub struct DeliveryLedger {
    generated: HashMap<GhostId, GeneratedRecord>,
    deliveries: HashMap<GhostId, Vec<DeliveryRecord>>,
    invalid_per_dest: HashMap<NodeId, u64>,
    /// Counters of rule firings, for the move/overhead metrics.
    pub forwards: u64,
    /// R2 firings.
    pub internal_moves: u64,
    /// R4 firings.
    pub erases_after_copy: u64,
    /// R5 firings.
    pub duplicate_erases: u64,
}

impl DeliveryLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one stamped event.
    pub fn record(&mut self, rec: &EventRecord<Event>) {
        match rec.event {
            Event::Generated {
                ghost,
                dest,
                payload,
            } => {
                let prev = self.generated.insert(
                    ghost,
                    GeneratedRecord {
                        source: rec.node,
                        dest,
                        payload,
                        step: rec.step,
                        round: rec.round,
                    },
                );
                debug_assert!(prev.is_none(), "ghost {ghost:?} generated twice");
            }
            Event::Delivered { ghost, .. } => {
                self.deliveries
                    .entry(ghost)
                    .or_default()
                    .push(DeliveryRecord {
                        node: rec.node,
                        step: rec.step,
                        round: rec.round,
                    });
                if !ghost.is_valid() {
                    *self.invalid_per_dest.entry(rec.node).or_insert(0) += 1;
                }
            }
            Event::Forwarded { .. } => self.forwards += 1,
            Event::InternalMove { .. } => self.internal_moves += 1,
            Event::ErasedAfterCopy { .. } => self.erases_after_copy += 1,
            Event::ErasedDuplicate { .. } => self.duplicate_erases += 1,
        }
    }

    /// Absorbs a batch of stamped events.
    pub fn absorb(&mut self, recs: &[EventRecord<Event>]) {
        for r in recs {
            self.record(r);
        }
    }

    /// Number of deliveries of one physical message.
    pub fn deliveries_of(&self, ghost: GhostId) -> u64 {
        self.deliveries.get(&ghost).map_or(0, |v| v.len() as u64)
    }

    /// The delivery records of one message.
    pub fn delivery_records(&self, ghost: GhostId) -> &[DeliveryRecord] {
        self.deliveries.get(&ghost).map_or(&[], Vec::as_slice)
    }

    /// The generation record of a valid message, if it was generated.
    pub fn generation_of(&self, ghost: GhostId) -> Option<&GeneratedRecord> {
        self.generated.get(&ghost)
    }

    /// Total valid messages generated.
    pub fn generated_count(&self) -> u64 {
        self.generated.len() as u64
    }

    /// Total deliveries of valid messages.
    pub fn valid_delivered_count(&self) -> u64 {
        self.deliveries
            .iter()
            .filter(|(g, _)| g.is_valid())
            .map(|(_, v)| v.len() as u64)
            .sum()
    }

    /// Total deliveries of invalid messages.
    pub fn invalid_delivered_count(&self) -> u64 {
        self.invalid_per_dest.values().sum()
    }

    /// Invalid deliveries at one destination (Proposition 4's quantity).
    pub fn invalid_delivered_at(&self, dest: NodeId) -> u64 {
        self.invalid_per_dest.get(&dest).copied().unwrap_or(0)
    }

    /// Valid messages generated but not yet delivered.
    pub fn outstanding(&self) -> Vec<GhostId> {
        self.generated
            .keys()
            .filter(|g| self.deliveries_of(**g) == 0)
            .copied()
            .collect()
    }

    /// Audits Specification `SP` against the final configuration `states`
    /// (needed to distinguish "still in flight" from "lost"). `n` is the
    /// network size (for the `2n` bound).
    pub fn check_sp(&self, states: &[NodeState], n: usize) -> Vec<SpViolation> {
        self.check_sp_since(states, n, 0)
    }

    /// Audits `SP` for the **post-fault epoch**: only messages generated at
    /// step `>= since_step` are held to the exactly-once guarantee. This is
    /// the quantifier the paper actually proves — a transient fault may
    /// legitimately destroy or duplicate a copy of a message generated
    /// *before* it struck, but everything generated after the last fault
    /// must be delivered once and only once. Proposition 4's `2n` bound on
    /// invalid deliveries likewise only applies to the initial epoch
    /// (`since_step == 0`): mid-run faults mint fresh invalid messages
    /// outside its counting argument.
    pub fn check_sp_since(
        &self,
        states: &[NodeState],
        n: usize,
        since_step: u64,
    ) -> Vec<SpViolation> {
        let mut violations = Vec::new();
        // Which ghosts still exist in some buffer?
        let mut in_flight: std::collections::HashSet<GhostId> = std::collections::HashSet::new();
        for s in states {
            for slot in &s.slots {
                for m in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                    in_flight.insert(m.ghost);
                }
            }
            for o in &s.outbox {
                in_flight.insert(o.ghost);
            }
        }
        for (&ghost, gen_rec) in &self.generated {
            if gen_rec.step < since_step {
                continue;
            }
            let recs = self.delivery_records(ghost);
            match recs.len() {
                0 => {
                    if !in_flight.contains(&ghost) {
                        violations.push(SpViolation::Lost { ghost });
                    }
                }
                1 => {
                    if recs[0].node != gen_rec.dest {
                        violations.push(SpViolation::Misdelivered {
                            ghost,
                            expected: gen_rec.dest,
                            actual: recs[0].node,
                        });
                    }
                }
                k => violations.push(SpViolation::DuplicateDelivery {
                    ghost,
                    count: k as u64,
                }),
            }
        }
        if since_step == 0 {
            for (&dest, &count) in &self.invalid_per_dest {
                let bound = 2 * n as u64;
                if count > bound {
                    violations.push(SpViolation::InvalidOverBound { dest, count, bound });
                }
            }
        }
        violations
    }

    /// Valid messages generated at step `>= since_step` and not yet
    /// delivered — the post-fault outstanding set a quiesced network must
    /// have emptied.
    pub fn outstanding_since(&self, since_step: u64) -> Vec<GhostId> {
        let mut out: Vec<GhostId> = self
            .generated
            .iter()
            .filter(|(g, r)| r.step >= since_step && self.deliveries_of(**g) == 0)
            .map(|(g, _)| *g)
            .collect();
        out.sort();
        out
    }
}

/// One cluster node's ledger slice, exported at shutdown. Each node only
/// knows what it generated, what it delivered, and what it still holds —
/// the cluster-wide `SP` verdict exists only after
/// [`reconcile_ledgers`] joins the slices.
#[derive(Debug, Clone, Default)]
pub struct NodeLedger {
    /// The exporting node.
    pub node: NodeId,
    /// Valid messages this node generated: `(ghost, destination)`.
    pub generated: Vec<(GhostId, NodeId)>,
    /// Ghosts delivered *at this node* (it believed itself the
    /// destination), valid or not, one entry per physical delivery.
    pub delivered: Vec<GhostId>,
    /// Ghosts still held in this node's buffers at export time.
    pub held: Vec<GhostId>,
}

/// The cluster-wide `SP` verdict produced by [`reconcile_ledgers`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterVerdict {
    /// Valid messages generated across the cluster.
    pub generated: u64,
    /// Valid messages delivered exactly once at their destination.
    pub exactly_once: u64,
    /// Valid messages undelivered but still held somewhere (legal at a
    /// non-quiescent shutdown; a quiesced cluster must report 0).
    pub in_flight: u64,
    /// Invalid (never-generated) messages delivered anywhere.
    pub invalid_delivered: u64,
    /// Every `SP` violation the join exposes.
    pub violations: Vec<SpViolation>,
}

impl ClusterVerdict {
    /// True iff the reconciliation found no violation.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Work meter for [`reconcile_ledgers_counted`]: how many ledger
/// entries each phase of the join touched. The reconcile must stay
/// `O(merged)` — one bounded-cost visit per entry, no global rescans —
/// and this meter is what the regression test pins that against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileWork {
    /// Generated-list entries scanned (phase 1).
    pub generated_scanned: u64,
    /// Delivered-list entries scanned (phase 2).
    pub delivered_scanned: u64,
    /// Held-list entries scanned (phase 3).
    pub held_scanned: u64,
    /// Distinct generated ghosts resolved to a verdict (phase 4).
    pub ghosts_resolved: u64,
}

/// Joins per-node ledger slices into the cluster-wide `SP` verdict:
/// every generated valid message must be delivered exactly once, at its
/// destination; undelivered messages still held somewhere count as
/// in-flight, held nowhere as [`SpViolation::Lost`]. A ghost delivered
/// at several nodes is both duplicated and (at the wrong nodes)
/// misdelivered; the duplication is reported once and each wrong-node
/// delivery separately.
///
/// The join is **total on adversarial input**: a ghost listed as
/// generated by several entries (a duplicate-stamp bug upstream, or the
/// seeded mutation check exercising the audit) is not an error here —
/// the last destination wins for the `SP` join, and the per-client
/// audit ([`reconcile_clients`]) reports the duplicate generation.
pub fn reconcile_ledgers(ledgers: &[NodeLedger]) -> ClusterVerdict {
    reconcile_ledgers_counted(ledgers).0
}

/// [`reconcile_ledgers`] with its [`ReconcileWork`] meter exposed.
pub fn reconcile_ledgers_counted(ledgers: &[NodeLedger]) -> (ClusterVerdict, ReconcileWork) {
    let mut work = ReconcileWork::default();
    let mut verdict = ClusterVerdict::default();
    let mut expected: HashMap<GhostId, NodeId> = HashMap::new();
    for l in ledgers {
        for &(ghost, dest) in &l.generated {
            work.generated_scanned += 1;
            expected.insert(ghost, dest);
        }
    }
    let mut deliveries: HashMap<GhostId, Vec<NodeId>> = HashMap::new();
    for l in ledgers {
        for &ghost in &l.delivered {
            work.delivered_scanned += 1;
            if ghost.is_valid() && expected.contains_key(&ghost) {
                deliveries.entry(ghost).or_default().push(l.node);
            } else {
                verdict.invalid_delivered += 1;
            }
        }
    }
    let mut held: std::collections::HashSet<GhostId> = std::collections::HashSet::new();
    for l in ledgers {
        work.held_scanned += l.held.len() as u64;
        held.extend(l.held.iter().copied());
    }
    verdict.generated = expected.len() as u64;
    let mut ghosts: Vec<(&GhostId, &NodeId)> = expected.iter().collect();
    ghosts.sort(); // deterministic violation order across runs
    for (&ghost, &dest) in ghosts {
        work.ghosts_resolved += 1;
        let at = deliveries.get(&ghost).map_or(&[][..], Vec::as_slice);
        match at.len() {
            0 => {
                if held.contains(&ghost) {
                    verdict.in_flight += 1;
                } else {
                    verdict.violations.push(SpViolation::Lost { ghost });
                }
            }
            1 if at[0] == dest => verdict.exactly_once += 1,
            k => {
                if k > 1 {
                    verdict.violations.push(SpViolation::DuplicateDelivery {
                        ghost,
                        count: k as u64,
                    });
                }
                for &node in at {
                    if node != dest {
                        verdict.violations.push(SpViolation::Misdelivered {
                            ghost,
                            expected: dest,
                            actual: node,
                        });
                    }
                }
            }
        }
    }
    (verdict, work)
}

/// A violation of the per-client exactly-once/FIFO specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientViolation {
    /// A stamped message was generated, never delivered, held nowhere.
    Lost {
        /// The issuing client.
        client: u64,
        /// The client's sequence number.
        seq: u32,
    },
    /// A stamped message was delivered more than once.
    Duplicate {
        /// The issuing client.
        client: u64,
        /// The client's sequence number.
        seq: u32,
        /// Deliveries observed.
        count: u64,
    },
    /// The same `(client, seq)` stamp was generated more than once — a
    /// client-layer bug (two logical messages sharing one identity).
    DuplicateStamp {
        /// The issuing client.
        client: u64,
        /// The reused sequence number.
        seq: u32,
        /// Generations observed.
        count: u64,
    },
    /// A client's messages arrived out of order at a delivering node:
    /// `seq` was delivered after `prev_seq >= seq` had already landed.
    OutOfOrder {
        /// The delivering node.
        node: NodeId,
        /// The issuing client.
        client: u64,
        /// Highest sequence delivered there before this one.
        prev_seq: u32,
        /// The late sequence.
        seq: u32,
    },
}

/// The cluster-wide per-client verdict produced by
/// [`reconcile_clients`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientVerdict {
    /// Distinct logical clients that generated at least one message.
    pub clients: u64,
    /// Stamped generations scanned (duplicates included).
    pub stamped: u64,
    /// Distinct stamps delivered exactly once.
    pub exactly_once: u64,
    /// Distinct stamps undelivered but still held somewhere.
    pub in_flight: u64,
    /// Every per-client violation the join exposes.
    pub violations: Vec<ClientViolation>,
}

impl ClientVerdict {
    /// True iff every client saw exactly-once, in-order service.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Joins per-node ledger slices into the **per-client** verdict: for
/// every logical client, no stamp lost, no stamp delivered twice, no
/// stamp generated twice, and deliveries in increasing sequence order
/// at the delivering node (each node's `delivered` list is in delivery
/// order, so per-node order is observable directly).
///
/// `decode` maps a ghost to its client stamp — `None` for ghosts that
/// carry no client identity (acks, node-level traffic, garbage), which
/// the per-client audit skips (the plain `SP` join still covers them).
/// Keeping the stamp convention in a closure keeps this join agnostic
/// of how upper layers pack identities into ghosts.
///
/// Cost is `O(merged)`: `decode` is called exactly once per ledger
/// entry (generated + delivered + held) and every other step is a
/// bounded-cost hash/compare per entry. The regression test pins the
/// call count.
pub fn reconcile_clients<F>(ledgers: &[NodeLedger], mut decode: F) -> ClientVerdict
where
    F: FnMut(GhostId) -> Option<ClientStamp>,
{
    let mut verdict = ClientVerdict::default();
    // Phase 1: generations. Count per stamp so duplicate stamps (two
    // logical messages sharing one identity) are caught even if the
    // protocol collapses them into one delivery.
    let mut gen_count: HashMap<(u64, u32), u64> = HashMap::new();
    let mut clients: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for l in ledgers {
        for &(ghost, _dest) in &l.generated {
            if let Some(s) = decode(ghost) {
                verdict.stamped += 1;
                *gen_count.entry((s.client, s.seq)).or_insert(0) += 1;
                clients.insert(s.client);
            }
        }
    }
    verdict.clients = clients.len() as u64;
    // Phase 2: deliveries, in each node's delivery order. FIFO is
    // checked per (delivering node, client): sequences must be strictly
    // increasing. Stamps nobody generated are skipped — the plain SP
    // join already counts those deliveries as invalid.
    let mut del_count: HashMap<(u64, u32), u64> = HashMap::new();
    let mut last_seq: HashMap<(NodeId, u64), u32> = HashMap::new();
    let mut order_violations: Vec<ClientViolation> = Vec::new();
    for l in ledgers {
        for &ghost in &l.delivered {
            let Some(s) = decode(ghost) else { continue };
            if !gen_count.contains_key(&(s.client, s.seq)) {
                continue;
            }
            *del_count.entry((s.client, s.seq)).or_insert(0) += 1;
            match last_seq.entry((l.node, s.client)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s.seq);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let prev = *e.get();
                    if s.seq <= prev {
                        order_violations.push(ClientViolation::OutOfOrder {
                            node: l.node,
                            client: s.client,
                            prev_seq: prev,
                            seq: s.seq,
                        });
                    } else {
                        e.insert(s.seq);
                    }
                }
            }
        }
    }
    // Phase 3: held stamps (legal in-flight at a non-quiescent stop).
    let mut held: std::collections::HashSet<(u64, u32)> = std::collections::HashSet::new();
    for l in ledgers {
        for &ghost in &l.held {
            if let Some(s) = decode(ghost) {
                held.insert((s.client, s.seq));
            }
        }
    }
    // Phase 4: one verdict per distinct stamp, deterministic order.
    let mut stamps: Vec<(&(u64, u32), &u64)> = gen_count.iter().collect();
    stamps.sort();
    for (&(client, seq), &gcount) in stamps {
        if gcount > 1 {
            verdict.violations.push(ClientViolation::DuplicateStamp {
                client,
                seq,
                count: gcount,
            });
        }
        match del_count.get(&(client, seq)).copied().unwrap_or(0) {
            0 => {
                if held.contains(&(client, seq)) {
                    verdict.in_flight += 1;
                } else {
                    verdict
                        .violations
                        .push(ClientViolation::Lost { client, seq });
                }
            }
            1 => verdict.exactly_once += 1,
            k => verdict.violations.push(ClientViolation::Duplicate {
                client,
                seq,
                count: k,
            }),
        }
    }
    verdict.violations.extend(order_violations);
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u64, node: NodeId, event: Event) -> EventRecord<Event> {
        EventRecord {
            step,
            round: step,
            node,
            event,
        }
    }

    #[test]
    fn exactly_once_is_clean() {
        let mut ledger = DeliveryLedger::new();
        let g = GhostId::Valid(0);
        ledger.record(&rec(
            0,
            1,
            Event::Generated {
                ghost: g,
                dest: 3,
                payload: 7,
            },
        ));
        ledger.record(&rec(
            5,
            3,
            Event::Delivered {
                ghost: g,
                payload: 7,
            },
        ));
        assert_eq!(ledger.deliveries_of(g), 1);
        assert!(ledger.check_sp(&[], 4).is_empty());
    }

    #[test]
    fn duplicate_delivery_detected() {
        let mut ledger = DeliveryLedger::new();
        let g = GhostId::Valid(0);
        ledger.record(&rec(
            0,
            1,
            Event::Generated {
                ghost: g,
                dest: 3,
                payload: 7,
            },
        ));
        ledger.record(&rec(
            5,
            3,
            Event::Delivered {
                ghost: g,
                payload: 7,
            },
        ));
        ledger.record(&rec(
            9,
            3,
            Event::Delivered {
                ghost: g,
                payload: 7,
            },
        ));
        assert_eq!(
            ledger.check_sp(&[], 4),
            vec![SpViolation::DuplicateDelivery { ghost: g, count: 2 }]
        );
    }

    #[test]
    fn misdelivery_detected() {
        let mut ledger = DeliveryLedger::new();
        let g = GhostId::Valid(0);
        ledger.record(&rec(
            0,
            1,
            Event::Generated {
                ghost: g,
                dest: 3,
                payload: 7,
            },
        ));
        ledger.record(&rec(
            5,
            2,
            Event::Delivered {
                ghost: g,
                payload: 7,
            },
        ));
        assert_eq!(
            ledger.check_sp(&[], 4),
            vec![SpViolation::Misdelivered {
                ghost: g,
                expected: 3,
                actual: 2
            }]
        );
    }

    #[test]
    fn undelivered_but_in_flight_is_not_lost() {
        use crate::message::{Color, Message};
        use ssmfp_routing::{corruption, CorruptionKind};
        use ssmfp_topology::gen;
        let graph = gen::line(3);
        let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
            .into_iter()
            .map(|r| NodeState::clean(3, r))
            .collect();
        let g = GhostId::Valid(0);
        let mut ledger = DeliveryLedger::new();
        ledger.record(&rec(
            0,
            0,
            Event::Generated {
                ghost: g,
                dest: 2,
                payload: 7,
            },
        ));
        // Not delivered, not in any buffer: lost.
        assert_eq!(
            ledger.check_sp(&states, 3),
            vec![SpViolation::Lost { ghost: g }]
        );
        // Put a copy in flight: no violation.
        states[1].slots[2].buf_r = Some(Message {
            payload: 7,
            last_hop: 0,
            color: Color(1),
            ghost: g,
        });
        assert!(ledger.check_sp(&states, 3).is_empty());
    }

    #[test]
    fn invalid_deliveries_counted_per_destination() {
        let mut ledger = DeliveryLedger::new();
        for k in 0..5 {
            ledger.record(&rec(
                k,
                2,
                Event::Delivered {
                    ghost: GhostId::Invalid(k),
                    payload: 0,
                },
            ));
        }
        assert_eq!(ledger.invalid_delivered_at(2), 5);
        assert_eq!(ledger.invalid_delivered_at(1), 0);
        // Bound 2n with n = 2 → bound 4 → violated.
        assert_eq!(
            ledger.check_sp(&[], 2),
            vec![SpViolation::InvalidOverBound {
                dest: 2,
                count: 5,
                bound: 4
            }]
        );
        // With n = 3 → bound 6 → fine.
        assert!(ledger.check_sp(&[], 3).is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut ledger = DeliveryLedger::new();
        let g = GhostId::Valid(0);
        ledger.record(&rec(0, 0, Event::Forwarded { ghost: g }));
        ledger.record(&rec(1, 0, Event::InternalMove { ghost: g }));
        ledger.record(&rec(2, 0, Event::ErasedAfterCopy { ghost: g }));
        ledger.record(&rec(3, 0, Event::ErasedDuplicate { ghost: g }));
        assert_eq!(
            (
                ledger.forwards,
                ledger.internal_moves,
                ledger.erases_after_copy,
                ledger.duplicate_erases
            ),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn outstanding_lists_pending_messages() {
        let mut ledger = DeliveryLedger::new();
        let a = GhostId::Valid(0);
        let b = GhostId::Valid(1);
        ledger.record(&rec(
            0,
            0,
            Event::Generated {
                ghost: a,
                dest: 1,
                payload: 0,
            },
        ));
        ledger.record(&rec(
            0,
            0,
            Event::Generated {
                ghost: b,
                dest: 1,
                payload: 0,
            },
        ));
        ledger.record(&rec(
            3,
            1,
            Event::Delivered {
                ghost: a,
                payload: 0,
            },
        ));
        assert_eq!(ledger.outstanding(), vec![b]);
    }

    #[test]
    fn epoch_scoped_audit_forgives_pre_fault_messages() {
        let mut ledger = DeliveryLedger::new();
        let old = GhostId::Valid(0);
        let new = GhostId::Valid(1);
        // `old` generated at step 2 and lost; `new` generated at step 10
        // and duplicated.
        ledger.record(&rec(
            2,
            0,
            Event::Generated {
                ghost: old,
                dest: 1,
                payload: 0,
            },
        ));
        ledger.record(&rec(
            10,
            0,
            Event::Generated {
                ghost: new,
                dest: 1,
                payload: 0,
            },
        ));
        for step in [12, 14] {
            ledger.record(&rec(
                step,
                1,
                Event::Delivered {
                    ghost: new,
                    payload: 0,
                },
            ));
        }
        // Epoch at step 5: the pre-fault loss is forgiven, the post-fault
        // duplication is not.
        assert_eq!(
            ledger.check_sp_since(&[], 2, 5),
            vec![SpViolation::DuplicateDelivery {
                ghost: new,
                count: 2
            }]
        );
        // Full-history audit sees both.
        assert_eq!(ledger.check_sp(&[], 2).len(), 2);
        assert_eq!(ledger.outstanding_since(5), vec![]);
        assert_eq!(ledger.outstanding_since(0), vec![old]);
    }

    #[test]
    fn invalid_bound_applies_only_to_initial_epoch() {
        let mut ledger = DeliveryLedger::new();
        for k in 0..5 {
            ledger.record(&rec(
                k,
                1,
                Event::Delivered {
                    ghost: GhostId::Invalid(k),
                    payload: 0,
                },
            ));
        }
        // n = 2 → bound 4 → violated from step 0, forgiven post-fault.
        assert_eq!(ledger.check_sp_since(&[], 2, 0).len(), 1);
        assert!(ledger.check_sp_since(&[], 2, 1).is_empty());
    }

    #[test]
    fn reconcile_clean_cluster() {
        let a = GhostId::Valid(0);
        let b = GhostId::Valid(1);
        let ledgers = vec![
            NodeLedger {
                node: 0,
                generated: vec![(a, 2)],
                delivered: vec![],
                held: vec![],
            },
            NodeLedger {
                node: 1,
                generated: vec![(b, 0)],
                delivered: vec![],
                held: vec![],
            },
            NodeLedger {
                node: 2,
                generated: vec![],
                delivered: vec![a],
                held: vec![],
            },
            NodeLedger {
                node: 0,
                generated: vec![],
                delivered: vec![b],
                held: vec![],
            },
        ];
        let v = reconcile_ledgers(&ledgers);
        assert!(v.clean());
        assert_eq!((v.generated, v.exactly_once, v.in_flight), (2, 2, 0));
    }

    #[test]
    fn reconcile_exposes_every_violation_kind() {
        let lost = GhostId::Valid(0);
        let dup = GhostId::Valid(1);
        let stray = GhostId::Valid(2);
        let flight = GhostId::Valid(3);
        let ledgers = vec![
            NodeLedger {
                node: 0,
                generated: vec![(lost, 2), (dup, 2), (stray, 2), (flight, 2)],
                delivered: vec![],
                held: vec![],
            },
            NodeLedger {
                node: 1,
                generated: vec![],
                // `stray` lands at node 1 ≠ dest 2; `dup` lands here too.
                delivered: vec![stray, dup, GhostId::Invalid(7)],
                held: vec![flight],
            },
            NodeLedger {
                node: 2,
                generated: vec![],
                delivered: vec![dup],
                held: vec![],
            },
        ];
        let v = reconcile_ledgers(&ledgers);
        assert_eq!(v.generated, 4);
        assert_eq!(v.in_flight, 1);
        assert_eq!(v.invalid_delivered, 1);
        assert!(v.violations.contains(&SpViolation::Lost { ghost: lost }));
        assert!(v.violations.contains(&SpViolation::DuplicateDelivery {
            ghost: dup,
            count: 2
        }));
        assert!(v.violations.contains(&SpViolation::Misdelivered {
            ghost: stray,
            expected: 2,
            actual: 1
        }));
        // `dup`'s wrong-node copy is also a misdelivery.
        assert!(v.violations.contains(&SpViolation::Misdelivered {
            ghost: dup,
            expected: 2,
            actual: 1
        }));
        assert!(!v.clean());
    }

    #[test]
    fn reconcile_is_total_on_duplicate_generations() {
        // The same ghost generated twice (a client-layer duplicate-stamp
        // bug) must not panic the SP join — it reports what it sees.
        let g = GhostId::Valid(7);
        let ledgers = vec![NodeLedger {
            node: 0,
            generated: vec![(g, 1), (g, 1)],
            delivered: vec![],
            held: vec![],
        }];
        let v = reconcile_ledgers(&ledgers);
        assert_eq!(v.generated, 1);
        assert_eq!(v.violations, vec![SpViolation::Lost { ghost: g }]);
    }

    #[test]
    fn reconcile_work_is_one_visit_per_merged_entry() {
        let mk = |node: NodeId, k: u64| NodeLedger {
            node,
            generated: (0..k)
                .map(|i| (GhostId::Valid(node as u64 * 1000 + i), 0))
                .collect(),
            delivered: (0..2 * k).map(GhostId::Valid).collect(),
            held: (0..3 * k).map(GhostId::Invalid).collect(),
        };
        let small = vec![mk(0, 4), mk(1, 4)];
        let (_, w) = reconcile_ledgers_counted(&small);
        // Exactly one visit per entry of each list — no rescans.
        assert_eq!(w.generated_scanned, 8);
        assert_eq!(w.delivered_scanned, 16);
        assert_eq!(w.held_scanned, 24);
        assert_eq!(w.ghosts_resolved, 8);
        // Doubling the merged input exactly doubles the work: linear,
        // not O(global scan per node).
        let big = vec![mk(0, 4), mk(1, 4), mk(2, 4), mk(3, 4)];
        let (_, w2) = reconcile_ledgers_counted(&big);
        assert_eq!(w2.generated_scanned, 2 * w.generated_scanned);
        assert_eq!(w2.delivered_scanned, 2 * w.delivered_scanned);
        assert_eq!(w2.held_scanned, 2 * w.held_scanned);
    }

    // Test stamp convention: Valid(client << 8 | seq), acks = Invalid.
    fn test_decode(g: GhostId) -> Option<ClientStamp> {
        match g {
            GhostId::Valid(k) => Some(ClientStamp {
                client: k >> 8,
                seq: (k & 0xFF) as u32,
            }),
            GhostId::Invalid(_) => None,
        }
    }

    fn stamp_ghost(client: u64, seq: u32) -> GhostId {
        GhostId::Valid(client << 8 | seq as u64)
    }

    #[test]
    fn reconcile_clients_clean_fifo_run() {
        // Two clients, two messages each, delivered in order at node 2.
        let ledgers = vec![
            NodeLedger {
                node: 0,
                generated: (0..2)
                    .flat_map(|c| (0..2).map(move |s| (stamp_ghost(c, s), 2)))
                    .collect(),
                delivered: vec![],
                held: vec![],
            },
            NodeLedger {
                node: 2,
                generated: vec![],
                delivered: vec![
                    stamp_ghost(0, 0),
                    stamp_ghost(1, 0),
                    stamp_ghost(0, 1),
                    stamp_ghost(1, 1),
                ],
                // An ack (no stamp) rides along, ignored by this audit.
                held: vec![GhostId::Invalid(9)],
            },
        ];
        let v = reconcile_clients(&ledgers, test_decode);
        assert!(v.clean(), "{:?}", v.violations);
        assert_eq!(
            (v.clients, v.stamped, v.exactly_once, v.in_flight),
            (2, 4, 4, 0)
        );
    }

    #[test]
    fn reconcile_clients_exposes_every_violation_kind() {
        let lost = stamp_ghost(1, 0);
        let dup = stamp_ghost(1, 1);
        let flight = stamp_ghost(2, 0);
        let ledgers = vec![
            NodeLedger {
                node: 0,
                // Client 3 reuses seq 5: duplicate stamp.
                generated: vec![
                    (lost, 2),
                    (dup, 2),
                    (flight, 2),
                    (stamp_ghost(3, 5), 2),
                    (stamp_ghost(3, 5), 2),
                ],
                delivered: vec![],
                held: vec![],
            },
            NodeLedger {
                node: 2,
                generated: vec![(stamp_ghost(4, 0), 1), (stamp_ghost(4, 1), 1)],
                delivered: vec![dup, dup, stamp_ghost(3, 5)],
                held: vec![flight],
            },
            NodeLedger {
                node: 1,
                generated: vec![],
                // Client 4's seq 1 lands before seq 0: out of order.
                delivered: vec![stamp_ghost(4, 1), stamp_ghost(4, 0)],
                held: vec![],
            },
        ];
        let v = reconcile_clients(&ledgers, test_decode);
        assert!(!v.clean());
        assert_eq!(v.clients, 4, "clients 1-4 each generated");
        assert!(v
            .violations
            .contains(&ClientViolation::Lost { client: 1, seq: 0 }));
        assert!(v.violations.contains(&ClientViolation::Duplicate {
            client: 1,
            seq: 1,
            count: 2
        }));
        assert!(v.violations.contains(&ClientViolation::DuplicateStamp {
            client: 3,
            seq: 5,
            count: 2
        }));
        assert!(v.violations.contains(&ClientViolation::OutOfOrder {
            node: 1,
            client: 4,
            prev_seq: 1,
            seq: 0
        }));
        assert_eq!(v.in_flight, 1);
    }

    #[test]
    fn reconcile_clients_decodes_each_merged_entry_exactly_once() {
        // The O(merged) pin: the stamp decoder runs once per ledger
        // entry — generated + delivered + held — and never again.
        let ledgers = vec![
            NodeLedger {
                node: 0,
                generated: (0..10).map(|s| (stamp_ghost(0, s), 1)).collect(),
                delivered: vec![],
                held: vec![],
            },
            NodeLedger {
                node: 1,
                generated: vec![],
                delivered: (0..7).map(|s| stamp_ghost(0, s)).collect(),
                held: (7..10).map(|s| stamp_ghost(0, s)).collect(),
            },
        ];
        let mut calls = 0u64;
        let v = reconcile_clients(&ledgers, |g| {
            calls += 1;
            test_decode(g)
        });
        assert_eq!(calls, 10 + 7 + 3);
        assert!(v.clean());
        assert_eq!((v.exactly_once, v.in_flight), (7, 3));
    }

    #[test]
    fn reconcile_counts_undeclared_valid_ghosts_as_invalid() {
        // A delivered ghost no node claims to have generated cannot be
        // audited against `SP` — it is garbage from the cluster's point
        // of view, counted with the invalid deliveries.
        let ledgers = vec![NodeLedger {
            node: 0,
            generated: vec![],
            delivered: vec![GhostId::Valid(99)],
            held: vec![],
        }];
        let v = reconcile_ledgers(&ledgers);
        assert_eq!(v.invalid_delivered, 1);
        assert!(v.clean());
    }
}
