//! Per-processor shared variables of Algorithm 1, embedded together with the
//! routing variables of `A` (the composed protocol's state).

use crate::message::{GhostId, Message, Payload};
use rand::Rng;
use ssmfp_routing::{HasRouting, RoutingState};
use ssmfp_topology::{Graph, NodeId};
use std::collections::VecDeque;

/// The forwarding variables of one processor for one destination `d`:
/// the two buffers of Figure 2 plus the `choice_p(d)` fairness pointer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FwdSlot {
    /// The reception buffer `bufR_p(d)`.
    pub buf_r: Option<Message>,
    /// The emission buffer `bufE_p(d)`.
    pub buf_e: Option<Message>,
    /// Rotation pointer implementing the fair queue behind `choice_p(d)`:
    /// a position in `0..=deg(p)` over the candidate space `N_p ∪ {p}`
    /// (position `i < deg` is neighbour `N_p[i]`, position `deg` is `p`).
    pub choice_ptr: usize,
    /// Per-candidate wait counters, used only by the
    /// [`crate::choice::ChoiceStrategy::LongestWaiting`] ablation strategy
    /// (lazily boxed to `deg(p)+1` counters on first service; `None` under
    /// the default strategy, so the hot state-copy/hash path pays one
    /// pointer-sized discriminant instead of cloning and hashing a `Vec`).
    pub waits: Option<Box<[u32]>>,
}

impl FwdSlot {
    /// An empty slot.
    pub fn empty() -> Self {
        FwdSlot {
            buf_r: None,
            buf_e: None,
            choice_ptr: 0,
            waits: None,
        }
    }
}

/// A message waiting in the higher layer (`nextMessage_p` /
/// `nextDestination_p` feed off the front of the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Outgoing {
    /// Destination processor.
    pub dest: NodeId,
    /// Useful information.
    pub payload: Payload,
    /// Verification identity assigned at enqueue time; becomes the
    /// generated message's ghost.
    pub ghost: GhostId,
}

/// Full local state of one processor: routing variables of `A` plus the
/// Algorithm 1 forwarding variables for every destination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeState {
    /// Routing table (distance + parent per destination) maintained by `A`.
    pub routing: RoutingState,
    /// Forwarding slots, indexed by destination.
    pub slots: Vec<FwdSlot>,
    /// The `request_p` input/output bit: the higher layer raises it when a
    /// message waits; rule R1 lowers it when the message is generated.
    pub request: bool,
    /// Higher-layer queue of waiting messages. `outbox.front()` is
    /// `nextMessage_p` / `nextDestination_p`.
    pub outbox: VecDeque<Outgoing>,
    /// Round-robin cursor over destinations used to order this processor's
    /// enabled actions fairly (which destination instance gets priority when
    /// a deterministic daemon always runs the first enabled action).
    pub dest_cursor: NodeId,
}

impl NodeState {
    /// A clean state: empty buffers, no requests, the given routing table.
    pub fn clean(n: usize, routing: RoutingState) -> Self {
        NodeState {
            routing,
            slots: (0..n).map(|_| FwdSlot::empty()).collect(),
            request: false,
            outbox: VecDeque::new(),
            dest_cursor: 0,
        }
    }

    /// Fills each buffer of processor `p` independently with probability
    /// `fill` with an *invalid* message whose fields are uniformly random
    /// **within their domains**: payload arbitrary, last hop in
    /// `N_p ∪ {p}`, color in `{0..Δ}`. `next_invalid` supplies fresh ghost
    /// sequence numbers.
    pub fn scatter_garbage(
        &mut self,
        graph: &Graph,
        p: NodeId,
        fill: f64,
        rng: &mut impl Rng,
        next_invalid: &mut u64,
    ) {
        let delta = graph.max_degree() as u8;
        let neighbors = graph.neighbors(p);
        let n_slots = self.slots.len();
        for slot in self.slots.iter_mut().take(n_slots) {
            for buf in [&mut slot.buf_r, &mut slot.buf_e] {
                if rng.gen_bool(fill) {
                    let last_hop = if neighbors.is_empty()
                        || rng.gen_bool(1.0 / (neighbors.len() + 1) as f64)
                    {
                        p
                    } else {
                        neighbors[rng.gen_range(0..neighbors.len())]
                    };
                    // Payloads are drawn from a deliberately tiny space so
                    // that invalid messages collide with valid ones' useful
                    // information — the exact hazard the colors exist for.
                    *buf = Some(Message {
                        payload: rng.gen_range(0..8),
                        last_hop,
                        color: crate::message::Color(rng.gen_range(0..=delta)),
                        ghost: GhostId::Invalid(*next_invalid),
                    });
                    *next_invalid += 1;
                }
            }
            slot.choice_ptr = rng.gen_range(0..=neighbors.len());
        }
    }

    /// Number of occupied buffers (both kinds) at this processor.
    pub fn occupied_buffers(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.buf_r.is_some() as usize + s.buf_e.is_some() as usize)
            .sum()
    }

    /// Whether any buffer holds a message.
    pub fn has_messages(&self) -> bool {
        self.slots
            .iter()
            .any(|s| s.buf_r.is_some() || s.buf_e.is_some())
    }
}

impl HasRouting for NodeState {
    fn routing(&self) -> &RoutingState {
        &self.routing
    }
    fn routing_mut(&mut self) -> &mut RoutingState {
        &mut self.routing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ssmfp_routing::{corruption, CorruptionKind};
    use ssmfp_topology::gen;

    fn mk_state(n: usize) -> NodeState {
        let g = gen::ring(n.max(3));
        let routing = corruption::corrupt(&g, CorruptionKind::None, 0).remove(0);
        NodeState::clean(n, routing)
    }

    #[test]
    fn clean_state_is_empty() {
        let s = mk_state(5);
        assert_eq!(s.slots.len(), 5);
        assert!(!s.has_messages());
        assert_eq!(s.occupied_buffers(), 0);
        assert!(!s.request);
        assert!(s.outbox.is_empty());
    }

    #[test]
    fn garbage_respects_domains() {
        let g = gen::random_connected(8, 5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut inv = 0;
        let delta = g.max_degree() as u8;
        for p in 0..g.n() {
            let routing = corruption::corrupt(&g, CorruptionKind::None, 0).remove(p);
            let mut s = NodeState::clean(g.n(), routing);
            s.scatter_garbage(&g, p, 1.0, &mut rng, &mut inv);
            assert_eq!(s.occupied_buffers(), 2 * g.n());
            for slot in &s.slots {
                for m in [slot.buf_r.as_ref().unwrap(), slot.buf_e.as_ref().unwrap()] {
                    assert!(m.last_hop == p || g.has_edge(p, m.last_hop));
                    assert!(m.color.0 <= delta);
                    assert!(!m.ghost.is_valid());
                }
                assert!(slot.choice_ptr <= g.degree(p));
            }
        }
        assert_eq!(inv as usize, 2 * g.n() * g.n());
    }

    #[test]
    fn garbage_zero_probability_stays_clean() {
        let g = gen::line(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut inv = 0;
        let mut s = mk_state(4);
        s.scatter_garbage(&g, 1, 0.0, &mut rng, &mut inv);
        assert!(!s.has_messages());
        assert_eq!(inv, 0);
    }
}
