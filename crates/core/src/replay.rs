//! The **Figure 3** scenario: the paper's worked execution, reconstructed.
//!
//! Figure 3 runs SSMFP on a 4-node network (`a, b, c, d` with `Δ = 3`, so
//! colors `{0,1,2,3}`) from a configuration where
//!
//! * the routing tables contain a **cycle between `a` and `c`** for
//!   destination `b`,
//! * an **invalid message** `m'` (color 0) sits in `bufR_b(b)`,
//! * processor `c` then emits `m`, and later a second message whose
//!   *useful information equals the invalid `m'`* — the exact situation the
//!   colors exist to disambiguate.
//!
//! The paper walks 12 configurations; the daemon is abstract, so rather
//! than pin one interleaving we reconstruct the initial configuration
//! exactly and assert the *phenomena* the figure demonstrates:
//!
//! 1. forwarding proceeds while the routing cycle is alive (`m` travels
//!    `c → a` under the corrupted tables),
//! 2. the two distinct messages sharing `m'`'s payload coexist in flight
//!    and are **not merged** (both delivered, exactly once each),
//! 3. the invalid message is delivered at most once,
//! 4. afterwards the network drains and `SP` holds.
//!
//! The routing corruption is crafted to be *locally consistent at `a`*
//! (only `b` and `c` hold enabled corrections initially), so even with the
//! paper's `A`-over-SSMFP priority the cycle genuinely persists for several
//! rounds — our min+1 `A` counts distances up to the cap before the cycle
//! breaks, mirroring the figure's delayed repair.

use crate::api::{DaemonKind, Network, NetworkConfig};
use crate::message::{Color, GhostId, Message};
use crate::state::NodeState;
use ssmfp_kernel::StepOutcome;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, NodeId};

/// Node names of the figure.
pub const A: NodeId = 0;
/// Destination of every message in the figure.
pub const B: NodeId = 1;
/// The emitting processor.
pub const C: NodeId = 2;
/// The fourth processor.
pub const D: NodeId = 3;

/// Payload of the invalid message `m'` (and of the later valid message
/// with identical useful information).
pub const M_PRIME_PAYLOAD: u64 = 100;
/// Payload of the first valid message `m`.
pub const M_PAYLOAD: u64 = 200;

/// Outcome of a Figure 3 replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure3Report {
    /// Deliveries of the valid message `m`.
    pub m_deliveries: u64,
    /// Deliveries of the valid message sharing `m'`'s payload.
    pub m_prime_valid_deliveries: u64,
    /// Deliveries of the *invalid* `m'` at `b`.
    pub invalid_deliveries_at_b: u64,
    /// Whether two distinct physical messages with `m'`'s payload were
    /// observed in flight simultaneously (the merge hazard).
    pub same_payload_coexisted: bool,
    /// Whether `m` was observed in a buffer of `a` while `a`'s table still
    /// pointed back at `c` (forwarding under the live routing cycle).
    pub forwarded_under_cycle: bool,
    /// Steps until quiescence.
    pub steps: u64,
    /// Rounds until quiescence.
    pub rounds: u64,
    /// `SP` violations at the end (must be empty).
    pub violations: usize,
}

/// Builds the Figure 3 initial configuration and returns the network plus
/// the ghost identities of the two valid messages (in emission order:
/// `m` first, then the `m'`-payload message).
///
/// `routing_priority` selects whether `A` preempts SSMFP at each processor
/// (the paper's composition). The figure's interleavings — forwarding while
/// the tables are still wrong — presume `A` is *slow*; since our `A` repairs
/// a node in one action, pass `false` to let the daemon emulate a slow `A`
/// by delaying corrections, exactly as the abstract model allows.
pub fn figure3_network_setup(
    daemon: DaemonKind,
    routing_priority: bool,
) -> (Network, GhostId, GhostId) {
    let graph = gen::figure3_network();
    let n = graph.n();
    let mut config = NetworkConfig::clean().with_daemon(daemon);
    config.routing_priority = routing_priority;
    let mut net = Network::new(graph.clone(), config);

    // Start from correct tables, then corrupt destination B's entries to
    // create the a ↔ c cycle with a count-to-infinity delay:
    //   b: dist 4 (cap), parent b   — enabled correction (→ 0)
    //   a: dist 2, parent c         — locally consistent, no correction yet
    //   c: dist 1, parent a         — enabled correction (counts up first)
    //   d: dist 3, parent a         — consistent
    let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(n, r))
        .collect();
    states[B].routing.dist[B] = 4;
    states[B].routing.parent[B] = B;
    states[A].routing.dist[B] = 2;
    states[A].routing.parent[B] = C;
    states[C].routing.dist[B] = 1;
    states[C].routing.parent[B] = A;
    states[D].routing.dist[B] = 3;
    states[D].routing.parent[B] = A;

    // The invalid message m' (color 0) in bufR_b(b).
    states[B].slots[B].buf_r = Some(Message {
        payload: M_PRIME_PAYLOAD,
        last_hop: D,
        color: Color(0),
        ghost: GhostId::Invalid(0),
    });

    net.reset_configuration(states);

    // c emits m, then a second message with m''s useful information.
    let m = net.send(C, B, M_PAYLOAD);
    let m2 = net.send(C, B, M_PRIME_PAYLOAD);
    (net, m, m2)
}

/// Runs the scenario to quiescence, monitoring the figure's phenomena.
pub fn run_figure3(daemon: DaemonKind, routing_priority: bool, max_steps: u64) -> Figure3Report {
    let (mut net, m, m2) = figure3_network_setup(daemon, routing_priority);
    let mut same_payload_coexisted = false;
    let mut forwarded_under_cycle = false;
    let mut steps = 0;
    while steps < max_steps {
        match net.pump() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => {}
        }
        steps += 1;
        let states = net.states();
        // Merge hazard: two distinct ghosts with m''s payload in flight.
        let mut ghosts = std::collections::HashSet::new();
        for s in states {
            for slot in &s.slots {
                for msg in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                    if msg.payload == M_PRIME_PAYLOAD {
                        ghosts.insert(msg.ghost);
                    }
                }
            }
        }
        if ghosts.len() >= 2 {
            same_payload_coexisted = true;
        }
        // Forwarding under the live cycle: m in a buffer of `a` while `a`
        // still routes destination B back through `c`.
        let a_state = &states[A];
        let a_points_c = a_state.routing.parent[B] == C;
        let m_at_a = a_state.slots[B]
            .buf_r
            .as_ref()
            .map(|x| x.ghost == m)
            .unwrap_or(false)
            || a_state.slots[B]
                .buf_e
                .as_ref()
                .map(|x| x.ghost == m)
                .unwrap_or(false);
        if a_points_c && m_at_a {
            forwarded_under_cycle = true;
        }
    }
    Figure3Report {
        m_deliveries: net.deliveries_of(m),
        m_prime_valid_deliveries: net.deliveries_of(m2),
        invalid_deliveries_at_b: net.ledger().invalid_delivered_at(B),
        same_payload_coexisted,
        forwarded_under_cycle,
        steps: net.steps(),
        rounds: net.rounds(),
        violations: net.check_sp().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_phenomena_hold_round_robin() {
        // Under the weakly fair daemon the repair of the tables is fast, so
        // we assert the safety/liveness outcomes (the hazard flags need an
        // unfair schedule to surface — next test).
        let report = run_figure3(DaemonKind::RoundRobin, true, 200_000);
        assert_eq!(report.m_deliveries, 1, "{report:?}");
        assert_eq!(report.m_prime_valid_deliveries, 1, "{report:?}");
        assert!(report.invalid_deliveries_at_b <= 1, "{report:?}");
        assert_eq!(report.violations, 0, "{report:?}");
    }

    #[test]
    fn figure3_hazards_surface_under_unfair_daemon() {
        // Starve `b` and let the daemon delay routing corrections (slow-A
        // emulation): the a ↔ c routing cycle persists, `m` is forwarded
        // under the live cycle, and the valid message with `m'`'s payload
        // coexists with the invalid `m'` — the configuration the colors
        // disambiguate. An unfair daemon exempts the protocol from the
        // liveness guarantees, so only the hazard flags and safety are
        // asserted; the flags are probabilistic per seed, so we require
        // them across a small seed sweep.
        let mut cycle_seen = false;
        let mut coexist_seen = false;
        for seed in 0..10 {
            let report = run_figure3(
                DaemonKind::AdversarialRandomAction {
                    seed,
                    victims: vec![B],
                },
                false,
                4_000,
            );
            cycle_seen |= report.forwarded_under_cycle;
            coexist_seen |= report.same_payload_coexisted;
            assert!(report.invalid_deliveries_at_b <= 1, "{report:?}");
            // Safety half of SP holds whatever the schedule: nothing
            // delivered twice, nothing misdelivered, nothing lost.
            assert_eq!(report.violations, 0, "{report:?}");
        }
        assert!(cycle_seen, "no seed exhibited forwarding under the cycle");
        assert!(coexist_seen, "no seed exhibited payload coexistence");
    }

    #[test]
    fn figure3_phenomena_hold_random_daemons() {
        for seed in 0..5 {
            let report = run_figure3(DaemonKind::CentralRandom { seed }, true, 400_000);
            assert_eq!(report.m_deliveries, 1, "seed {seed}: {report:?}");
            assert_eq!(
                report.m_prime_valid_deliveries, 1,
                "seed {seed}: {report:?}"
            );
            assert!(
                report.invalid_deliveries_at_b <= 1,
                "seed {seed}: {report:?}"
            );
            assert_eq!(report.violations, 0, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn figure3_network_matches_paper_parameters() {
        let g = gen::figure3_network();
        assert_eq!(g.n(), 4);
        assert_eq!(g.max_degree(), 3, "Δ = 3 so colors {{0..3}}");
    }

    #[test]
    fn initial_cycle_is_present() {
        let (net, _, _) = figure3_network_setup(DaemonKind::RoundRobin, true);
        let states = net.states();
        assert_eq!(states[A].routing.parent[B], C);
        assert_eq!(states[C].routing.parent[B], A);
    }
}
