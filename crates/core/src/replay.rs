//! The **Figure 3** scenario: the paper's worked execution, reconstructed.
//!
//! Figure 3 runs SSMFP on a 4-node network (`a, b, c, d` with `Δ = 3`, so
//! colors `{0,1,2,3}`) from a configuration where
//!
//! * the routing tables contain a **cycle between `a` and `c`** for
//!   destination `b`,
//! * an **invalid message** `m'` (color 0) sits in `bufR_b(b)`,
//! * processor `c` then emits `m`, and later a second message whose
//!   *useful information equals the invalid `m'`* — the exact situation the
//!   colors exist to disambiguate.
//!
//! The paper walks 12 configurations; the daemon is abstract, so rather
//! than pin one interleaving we reconstruct the initial configuration
//! exactly and assert the *phenomena* the figure demonstrates:
//!
//! 1. forwarding proceeds while the routing cycle is alive (`m` travels
//!    `c → a` under the corrupted tables),
//! 2. the two distinct messages sharing `m'`'s payload coexist in flight
//!    and are **not merged** (both delivered, exactly once each),
//! 3. the invalid message is delivered at most once,
//! 4. afterwards the network drains and `SP` holds.
//!
//! The routing corruption is crafted to be *locally consistent at `a`*
//! (only `b` and `c` hold enabled corrections initially), so even with the
//! paper's `A`-over-SSMFP priority the cycle genuinely persists for several
//! rounds — our min+1 `A` counts distances up to the cap before the cycle
//! breaks, mirroring the figure's delayed repair.

use crate::api::{DaemonKind, Network, NetworkConfig};
use crate::faults::{fault_line, parse_fault_line, parse_field, FaultPlan, SeededBug};
use crate::ledger::SpViolation;
use crate::message::{Color, GhostId, Message};
use crate::state::NodeState;
use ssmfp_kernel::StepOutcome;
use ssmfp_routing::{corruption, CorruptionKind};
use ssmfp_topology::{gen, Graph, NodeId};

/// Node names of the figure.
pub const A: NodeId = 0;
/// Destination of every message in the figure.
pub const B: NodeId = 1;
/// The emitting processor.
pub const C: NodeId = 2;
/// The fourth processor.
pub const D: NodeId = 3;

/// Payload of the invalid message `m'` (and of the later valid message
/// with identical useful information).
pub const M_PRIME_PAYLOAD: u64 = 100;
/// Payload of the first valid message `m`.
pub const M_PAYLOAD: u64 = 200;

/// Outcome of a Figure 3 replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure3Report {
    /// Deliveries of the valid message `m`.
    pub m_deliveries: u64,
    /// Deliveries of the valid message sharing `m'`'s payload.
    pub m_prime_valid_deliveries: u64,
    /// Deliveries of the *invalid* `m'` at `b`.
    pub invalid_deliveries_at_b: u64,
    /// Whether two distinct physical messages with `m'`'s payload were
    /// observed in flight simultaneously (the merge hazard).
    pub same_payload_coexisted: bool,
    /// Whether `m` was observed in a buffer of `a` while `a`'s table still
    /// pointed back at `c` (forwarding under the live routing cycle).
    pub forwarded_under_cycle: bool,
    /// Steps until quiescence.
    pub steps: u64,
    /// Rounds until quiescence.
    pub rounds: u64,
    /// `SP` violations at the end (must be empty).
    pub violations: usize,
}

/// Builds the Figure 3 initial configuration and returns the network plus
/// the ghost identities of the two valid messages (in emission order:
/// `m` first, then the `m'`-payload message).
///
/// `routing_priority` selects whether `A` preempts SSMFP at each processor
/// (the paper's composition). The figure's interleavings — forwarding while
/// the tables are still wrong — presume `A` is *slow*; since our `A` repairs
/// a node in one action, pass `false` to let the daemon emulate a slow `A`
/// by delaying corrections, exactly as the abstract model allows.
pub fn figure3_network_setup(
    daemon: DaemonKind,
    routing_priority: bool,
) -> (Network, GhostId, GhostId) {
    let graph = gen::figure3_network();
    let n = graph.n();
    let mut config = NetworkConfig::clean().with_daemon(daemon);
    config.routing_priority = routing_priority;
    let mut net = Network::new(graph.clone(), config);

    // Start from correct tables, then corrupt destination B's entries to
    // create the a ↔ c cycle with a count-to-infinity delay:
    //   b: dist 4 (cap), parent b   — enabled correction (→ 0)
    //   a: dist 2, parent c         — locally consistent, no correction yet
    //   c: dist 1, parent a         — enabled correction (counts up first)
    //   d: dist 3, parent a         — consistent
    let mut states: Vec<NodeState> = corruption::corrupt(&graph, CorruptionKind::None, 0)
        .into_iter()
        .map(|r| NodeState::clean(n, r))
        .collect();
    states[B].routing.dist[B] = 4;
    states[B].routing.parent[B] = B;
    states[A].routing.dist[B] = 2;
    states[A].routing.parent[B] = C;
    states[C].routing.dist[B] = 1;
    states[C].routing.parent[B] = A;
    states[D].routing.dist[B] = 3;
    states[D].routing.parent[B] = A;

    // The invalid message m' (color 0) in bufR_b(b).
    states[B].slots[B].buf_r = Some(Message {
        payload: M_PRIME_PAYLOAD,
        last_hop: D,
        color: Color(0),
        ghost: GhostId::Invalid(0),
    });

    net.reset_configuration(states);

    // c emits m, then a second message with m''s useful information.
    let m = net.send(C, B, M_PAYLOAD);
    let m2 = net.send(C, B, M_PRIME_PAYLOAD);
    (net, m, m2)
}

/// Runs the scenario to quiescence, monitoring the figure's phenomena.
pub fn run_figure3(daemon: DaemonKind, routing_priority: bool, max_steps: u64) -> Figure3Report {
    let (mut net, m, m2) = figure3_network_setup(daemon, routing_priority);
    let mut same_payload_coexisted = false;
    let mut forwarded_under_cycle = false;
    let mut steps = 0;
    while steps < max_steps {
        match net.pump() {
            StepOutcome::Terminal => break,
            StepOutcome::Progress { .. } => {}
        }
        steps += 1;
        let states = net.states();
        // Merge hazard: two distinct ghosts with m''s payload in flight.
        let mut ghosts = std::collections::HashSet::new();
        for s in states {
            for slot in &s.slots {
                for msg in [&slot.buf_r, &slot.buf_e].into_iter().flatten() {
                    if msg.payload == M_PRIME_PAYLOAD {
                        ghosts.insert(msg.ghost);
                    }
                }
            }
        }
        if ghosts.len() >= 2 {
            same_payload_coexisted = true;
        }
        // Forwarding under the live cycle: m in a buffer of `a` while `a`
        // still routes destination B back through `c`.
        let a_state = &states[A];
        let a_points_c = a_state.routing.parent[B] == C;
        let m_at_a = a_state.slots[B]
            .buf_r
            .as_ref()
            .map(|x| x.ghost == m)
            .unwrap_or(false)
            || a_state.slots[B]
                .buf_e
                .as_ref()
                .map(|x| x.ghost == m)
                .unwrap_or(false);
        if a_points_c && m_at_a {
            forwarded_under_cycle = true;
        }
    }
    Figure3Report {
        m_deliveries: net.deliveries_of(m),
        m_prime_valid_deliveries: net.deliveries_of(m2),
        invalid_deliveries_at_b: net.ledger().invalid_delivered_at(B),
        same_payload_coexisted,
        forwarded_under_cycle,
        steps: net.steps(),
        rounds: net.rounds(),
        violations: net.check_sp().len(),
    }
}

// ---------------------------------------------------------------------------
// Fault scenarios: deterministic re-execution of soak-harness failures.
// ---------------------------------------------------------------------------

/// One higher-layer send, stamped with the step at which it is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSpec {
    /// Step at (or after) which the send is issued.
    pub at_step: u64,
    /// The sending processor.
    pub src: NodeId,
    /// The destination.
    pub dst: NodeId,
    /// The payload.
    pub payload: u64,
}

/// A self-contained, deterministic fault scenario: topology, initial
/// corruption, daemon, higher-layer sends, and a [`FaultPlan`]. This is
/// the replay artifact `ssmfp-soak` dumps for a failing campaign — feeding
/// it back to [`run_fault_scenario`] re-executes the failure bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Network size.
    pub n: usize,
    /// Undirected edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Scheduling daemon.
    pub daemon: DaemonKind,
    /// Initial routing corruption.
    pub corruption: CorruptionKind,
    /// Initial buffer-garbage fill probability.
    pub garbage_fill: f64,
    /// Master seed (garbage placement).
    pub seed: u64,
    /// Planted protocol bug (oracle self-test only).
    pub bug: Option<SeededBug>,
    /// Step budget before the run is abandoned as non-converged.
    pub budget: u64,
    /// Higher-layer sends, ascending by `at_step`.
    pub sends: Vec<SendSpec>,
    /// The mid-execution fault schedule.
    pub plan: FaultPlan,
}

/// What the spec oracle concluded about one scenario execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// `SP` violations among post-epoch messages (duplication, loss,
    /// misdelivery — safety, checked whether or not the run converged).
    pub violations: Vec<SpViolation>,
    /// Post-epoch valid messages still undelivered at quiescence
    /// (liveness: a quiesced network must have drained them).
    pub undelivered: Vec<GhostId>,
    /// Sends whose generation (rule R1) never happened by quiescence
    /// (liveness: generation must always eventually be possible).
    pub generation_blocked: Vec<GhostId>,
    /// Whether the network reached a terminal configuration in budget.
    pub quiescent: bool,
    /// The step of the last injected fault (`None` if the plan was empty).
    pub epoch_step: Option<u64>,
    /// Faults actually applied.
    pub faults_applied: usize,
    /// Total steps executed.
    pub steps: u64,
    /// Steps executed after the last fault (post-fault convergence time).
    pub post_fault_steps: u64,
    /// Rounds completed.
    pub rounds: u64,
}

impl ScenarioOutcome {
    /// Whether the oracle flags this execution. Safety violations always
    /// count; the liveness obligations (everything delivered, every send
    /// generated) only bind once the network has quiesced — a budget
    /// timeout is reported as `quiescent: false`, not as a violation.
    pub fn is_violation(&self) -> bool {
        !self.violations.is_empty()
            || (self.quiescent
                && (!self.undelivered.is_empty() || !self.generation_blocked.is_empty()))
    }

    /// One-line description for reports.
    pub fn summary(&self) -> String {
        format!(
            "violations={} undelivered={} gen_blocked={} quiescent={} steps={} post_fault_steps={}",
            self.violations.len(),
            self.undelivered.len(),
            self.generation_blocked.len(),
            self.quiescent,
            self.steps,
            self.post_fault_steps,
        )
    }
}

impl FaultScenario {
    /// Builds the network this scenario describes (without running it).
    pub fn build_network(&self) -> Network {
        let graph = Graph::from_edges(self.n, &self.edges).expect("scenario graph is well-formed");
        let mut config = NetworkConfig::clean()
            .with_daemon(self.daemon.clone())
            .with_corruption(self.corruption)
            .with_garbage_fill(self.garbage_fill);
        config.seed = self.seed;
        if let Some(bug) = self.bug {
            config = config.with_seeded_bug(bug);
        }
        Network::new(graph, config)
    }

    /// A copy of this scenario with a different fault plan (the shrinker's
    /// re-execution primitive).
    pub fn with_plan(&self, plan: FaultPlan) -> FaultScenario {
        FaultScenario {
            plan,
            ..self.clone()
        }
    }
}

/// Executes a [`FaultScenario`] to quiescence (or budget) and audits the
/// post-fault epoch against Specification `SP`.
///
/// The driver plays the higher layer: sends are issued at their stamped
/// steps, and when the network quiesces *early* — before a pending send's
/// stamp or a pending fault's stamp — virtual time warps forward so the
/// schedule still executes in full (a quiescent network has no step
/// counter of its own to reach the stamps with). Every fault is applied by
/// the engine's step hook with its own seed, so the execution is
/// deterministic in the scenario alone.
pub fn run_fault_scenario(scenario: &FaultScenario) -> ScenarioOutcome {
    let mut net = scenario.build_network();
    let cursor = net.install_fault_plan(scenario.plan.clone());
    let mut ghosts: Vec<GhostId> = Vec::with_capacity(scenario.sends.len());
    let mut next_send = 0usize;
    let mut quiescent = false;
    // Iteration guard: Terminal pumps don't advance the step counter, but
    // each one either issues a send, fires a fault, or exits the loop.
    let max_iters = scenario.budget + scenario.sends.len() as u64 + scenario.plan.len() as u64 + 8;
    let mut iters = 0u64;
    while net.steps() < scenario.budget && iters < max_iters {
        iters += 1;
        while next_send < scenario.sends.len() && scenario.sends[next_send].at_step <= net.steps() {
            let s = scenario.sends[next_send];
            ghosts.push(net.send(s.src, s.dst, s.payload));
            next_send += 1;
        }
        match net.pump() {
            StepOutcome::Progress { .. } => {}
            StepOutcome::Terminal => {
                if next_send < scenario.sends.len() {
                    // Quiesced before the next send's stamp: issue it now.
                    let s = scenario.sends[next_send];
                    ghosts.push(net.send(s.src, s.dst, s.payload));
                    next_send += 1;
                } else if !cursor.all_fired() {
                    // Quiesced before the next fault's stamp: warp virtual
                    // time so the step hook fires it on the next pump.
                    cursor.warp_to(scenario.plan.faults[cursor.fired()].at_step);
                } else if net.engine().is_terminal() {
                    // `pump` re-arms `request_p` after the step, so the
                    // Terminal outcome alone does not prove quiescence —
                    // re-check after the re-arm.
                    quiescent = true;
                    break;
                }
            }
        }
    }
    let epoch_step = cursor.epoch_step();
    let since = epoch_step.unwrap_or(0);
    let violations = net.check_sp_since(since);
    let (undelivered, generation_blocked) = if quiescent {
        let undelivered = net.ledger().outstanding_since(since);
        let blocked = ghosts
            .iter()
            .filter(|g| net.ledger().generation_of(**g).is_none())
            .copied()
            .collect();
        (undelivered, blocked)
    } else {
        (Vec::new(), Vec::new())
    };
    ScenarioOutcome {
        violations,
        undelivered,
        generation_blocked,
        quiescent,
        epoch_step,
        faults_applied: cursor.fired(),
        steps: net.steps(),
        post_fault_steps: net.steps().saturating_sub(since),
        rounds: net.rounds(),
    }
}

fn daemon_to_text(d: &DaemonKind) -> String {
    match d {
        DaemonKind::Synchronous => "sync".into(),
        DaemonKind::RoundRobin => "roundrobin".into(),
        DaemonKind::CentralRandom { seed } => format!("centralrandom:{seed}"),
        DaemonKind::CentralRandomAction { seed } => format!("centralrandomaction:{seed}"),
        DaemonKind::DistributedRandom { seed, p_move } => format!("distributed:{seed}:{p_move}"),
        DaemonKind::LocallyCentral { seed } => format!("locallycentral:{seed}"),
        DaemonKind::Adversarial { seed, victims } => {
            format!("adversarial:{seed}:{}", join_ids(victims))
        }
        DaemonKind::AdversarialRandomAction { seed, victims } => {
            format!("adversarialaction:{seed}:{}", join_ids(victims))
        }
    }
}

fn join_ids(ids: &[NodeId]) -> String {
    ids.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

fn split_ids(s: &str) -> Result<Vec<NodeId>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|t| t.parse().map_err(|_| format!("bad victim list '{s}'")))
        .collect()
}

fn daemon_from_text(s: &str) -> Result<DaemonKind, String> {
    let mut parts = s.split(':');
    let tag = parts.next().unwrap_or("");
    let mut arg = |what: &str| {
        parts
            .next()
            .ok_or_else(|| format!("daemon '{s}' is missing its {what}"))
    };
    match tag {
        "sync" => Ok(DaemonKind::Synchronous),
        "roundrobin" => Ok(DaemonKind::RoundRobin),
        "centralrandom" => Ok(DaemonKind::CentralRandom {
            seed: parse_num(arg("seed")?)?,
        }),
        "centralrandomaction" => Ok(DaemonKind::CentralRandomAction {
            seed: parse_num(arg("seed")?)?,
        }),
        "distributed" => Ok(DaemonKind::DistributedRandom {
            seed: parse_num(arg("seed")?)?,
            p_move: arg("p_move")?
                .parse()
                .map_err(|_| format!("bad p_move in '{s}'"))?,
        }),
        "locallycentral" => Ok(DaemonKind::LocallyCentral {
            seed: parse_num(arg("seed")?)?,
        }),
        "adversarial" => Ok(DaemonKind::Adversarial {
            seed: parse_num(arg("seed")?)?,
            victims: split_ids(arg("victims")?)?,
        }),
        "adversarialaction" => Ok(DaemonKind::AdversarialRandomAction {
            seed: parse_num(arg("seed")?)?,
            victims: split_ids(arg("victims")?)?,
        }),
        other => Err(format!("unknown daemon '{other}'")),
    }
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn corruption_from_text(s: &str) -> Result<CorruptionKind, String> {
    for k in [
        CorruptionKind::RandomGarbage,
        CorruptionKind::ParentCycles,
        CorruptionKind::AntiDistance,
        CorruptionKind::AllZero,
        CorruptionKind::None,
    ] {
        if k.label() == s {
            return Ok(k);
        }
    }
    Err(format!("unknown corruption kind '{s}'"))
}

impl FaultScenario {
    /// Serializes the scenario as the `ssmfp-fault-scenario v1` replay
    /// artifact (plain text; `f64` values roundtrip exactly via Rust's
    /// shortest-representation `Display`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("ssmfp-fault-scenario v1\n");
        out.push_str(&format!("n={}\n", self.n));
        for (a, b) in &self.edges {
            out.push_str(&format!("edge {a} {b}\n"));
        }
        out.push_str(&format!("daemon={}\n", daemon_to_text(&self.daemon)));
        out.push_str(&format!("corruption={}\n", self.corruption.label()));
        out.push_str(&format!("garbage={}\n", self.garbage_fill));
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!(
            "bug={}\n",
            self.bug.map_or("none", SeededBug::label)
        ));
        out.push_str(&format!("budget={}\n", self.budget));
        out.push_str(&format!("planseed={}\n", self.plan.seed));
        for s in &self.sends {
            out.push_str(&format!(
                "send at={} src={} dst={} payload={}\n",
                s.at_step, s.src, s.dst, s.payload
            ));
        }
        for f in &self.plan.faults {
            out.push_str(&fault_line(f));
            out.push('\n');
        }
        out
    }

    /// Parses the [`FaultScenario::to_text`] artifact.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty scenario")?;
        if header.trim() != "ssmfp-fault-scenario v1" {
            return Err(format!("bad scenario header '{header}'"));
        }
        let mut n = None;
        let mut edges = Vec::new();
        let mut daemon = None;
        let mut corruption_kind = None;
        let mut garbage_fill = 0.0f64;
        let mut seed = 0u64;
        let mut bug = None;
        let mut budget = None;
        let mut plan_seed = 0u64;
        let mut sends = Vec::new();
        let mut faults = Vec::new();
        for line in lines {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("edge ") {
                let mut it = rest.split_whitespace();
                let a = parse_num(it.next().ok_or("edge missing endpoint")?)? as NodeId;
                let b = parse_num(it.next().ok_or("edge missing endpoint")?)? as NodeId;
                edges.push((a, b));
            } else if line.starts_with("send ") {
                sends.push(SendSpec {
                    at_step: parse_field(line, "at")?,
                    src: parse_field(line, "src")?,
                    dst: parse_field(line, "dst")?,
                    payload: parse_field(line, "payload")?,
                });
            } else if line.starts_with("fault ") {
                faults.push(parse_fault_line(line)?);
            } else if let Some(v) = line.strip_prefix("n=") {
                n = Some(parse_num(v)? as usize);
            } else if let Some(v) = line.strip_prefix("daemon=") {
                daemon = Some(daemon_from_text(v)?);
            } else if let Some(v) = line.strip_prefix("corruption=") {
                corruption_kind = Some(corruption_from_text(v)?);
            } else if let Some(v) = line.strip_prefix("garbage=") {
                garbage_fill = v.parse().map_err(|_| format!("bad garbage '{v}'"))?;
            } else if let Some(v) = line.strip_prefix("seed=") {
                seed = parse_num(v)?;
            } else if let Some(v) = line.strip_prefix("bug=") {
                bug = match v {
                    "none" => None,
                    other => Some(SeededBug::parse(other)?),
                };
            } else if let Some(v) = line.strip_prefix("budget=") {
                budget = Some(parse_num(v)?);
            } else if let Some(v) = line.strip_prefix("planseed=") {
                plan_seed = parse_num(v)?;
            } else {
                return Err(format!("unrecognized scenario line '{line}'"));
            }
        }
        Ok(FaultScenario {
            n: n.ok_or("scenario missing n=")?,
            edges,
            daemon: daemon.ok_or("scenario missing daemon=")?,
            corruption: corruption_kind.ok_or("scenario missing corruption=")?,
            garbage_fill,
            seed,
            bug,
            budget: budget.ok_or("scenario missing budget=")?,
            sends,
            plan: FaultPlan {
                seed: plan_seed,
                faults,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_phenomena_hold_round_robin() {
        // Under the weakly fair daemon the repair of the tables is fast, so
        // we assert the safety/liveness outcomes (the hazard flags need an
        // unfair schedule to surface — next test).
        let report = run_figure3(DaemonKind::RoundRobin, true, 200_000);
        assert_eq!(report.m_deliveries, 1, "{report:?}");
        assert_eq!(report.m_prime_valid_deliveries, 1, "{report:?}");
        assert!(report.invalid_deliveries_at_b <= 1, "{report:?}");
        assert_eq!(report.violations, 0, "{report:?}");
    }

    #[test]
    fn figure3_hazards_surface_under_unfair_daemon() {
        // Starve `b` and let the daemon delay routing corrections (slow-A
        // emulation): the a ↔ c routing cycle persists, `m` is forwarded
        // under the live cycle, and the valid message with `m'`'s payload
        // coexists with the invalid `m'` — the configuration the colors
        // disambiguate. An unfair daemon exempts the protocol from the
        // liveness guarantees, so only the hazard flags and safety are
        // asserted; the flags are probabilistic per seed, so we require
        // them across a small seed sweep.
        let mut cycle_seen = false;
        let mut coexist_seen = false;
        for seed in 0..10 {
            let report = run_figure3(
                DaemonKind::AdversarialRandomAction {
                    seed,
                    victims: vec![B],
                },
                false,
                4_000,
            );
            cycle_seen |= report.forwarded_under_cycle;
            coexist_seen |= report.same_payload_coexisted;
            assert!(report.invalid_deliveries_at_b <= 1, "{report:?}");
            // Safety half of SP holds whatever the schedule: nothing
            // delivered twice, nothing misdelivered, nothing lost.
            assert_eq!(report.violations, 0, "{report:?}");
        }
        assert!(cycle_seen, "no seed exhibited forwarding under the cycle");
        assert!(coexist_seen, "no seed exhibited payload coexistence");
    }

    #[test]
    fn figure3_phenomena_hold_random_daemons() {
        for seed in 0..5 {
            let report = run_figure3(DaemonKind::CentralRandom { seed }, true, 400_000);
            assert_eq!(report.m_deliveries, 1, "seed {seed}: {report:?}");
            assert_eq!(
                report.m_prime_valid_deliveries, 1,
                "seed {seed}: {report:?}"
            );
            assert!(
                report.invalid_deliveries_at_b <= 1,
                "seed {seed}: {report:?}"
            );
            assert_eq!(report.violations, 0, "seed {seed}: {report:?}");
        }
    }

    #[test]
    fn figure3_network_matches_paper_parameters() {
        let g = gen::figure3_network();
        assert_eq!(g.n(), 4);
        assert_eq!(g.max_degree(), 3, "Δ = 3 so colors {{0..3}}");
    }

    #[test]
    fn initial_cycle_is_present() {
        let (net, _, _) = figure3_network_setup(DaemonKind::RoundRobin, true);
        let states = net.states();
        assert_eq!(states[A].routing.parent[B], C);
        assert_eq!(states[C].routing.parent[B], A);
    }

    fn sample_scenario(seed: u64) -> FaultScenario {
        let graph = gen::ring(5);
        let plan = FaultPlan::random(
            &graph,
            crate::faults::FaultPlanConfig {
                faults: 4,
                horizon: 400,
                seed,
            },
        );
        FaultScenario {
            n: 5,
            edges: graph.edges().to_vec(),
            daemon: DaemonKind::CentralRandom { seed },
            corruption: CorruptionKind::RandomGarbage,
            garbage_fill: 0.3,
            seed,
            bug: None,
            budget: 400_000,
            sends: vec![
                SendSpec {
                    at_step: 0,
                    src: 0,
                    dst: 3,
                    payload: 7,
                },
                SendSpec {
                    at_step: 500,
                    src: 2,
                    dst: 4,
                    payload: 9,
                },
            ],
            plan,
        }
    }

    #[test]
    fn scenario_artifact_roundtrips() {
        let scenario = sample_scenario(5);
        let text = scenario.to_text();
        let back = FaultScenario::from_text(&text).expect("roundtrip");
        assert_eq!(scenario, back);
        // Daemon variants with structured arguments roundtrip too.
        for daemon in [
            DaemonKind::Synchronous,
            DaemonKind::RoundRobin,
            DaemonKind::DistributedRandom {
                seed: 3,
                p_move: 0.35,
            },
            DaemonKind::LocallyCentral { seed: 9 },
            DaemonKind::Adversarial {
                seed: 1,
                victims: vec![0, 2],
            },
            DaemonKind::AdversarialRandomAction {
                seed: 1,
                victims: vec![],
            },
        ] {
            let mut s = scenario.clone();
            s.daemon = daemon;
            let back = FaultScenario::from_text(&s.to_text()).expect("roundtrip");
            assert_eq!(s, back);
        }
        assert!(FaultScenario::from_text("not a scenario").is_err());
    }

    #[test]
    fn scenario_execution_is_deterministic() {
        let scenario = sample_scenario(11);
        let a = run_fault_scenario(&scenario);
        let b = run_fault_scenario(&FaultScenario::from_text(&scenario.to_text()).unwrap());
        assert_eq!(a, b, "re-executing the artifact must reproduce the run");
    }

    #[test]
    fn real_protocol_survives_fault_scenarios() {
        for seed in 0..6 {
            let scenario = sample_scenario(seed);
            let outcome = run_fault_scenario(&scenario);
            assert_eq!(
                outcome.faults_applied,
                scenario.plan.len(),
                "warp must flush the whole plan: {outcome:?}"
            );
            assert!(
                !outcome.is_violation(),
                "seed {seed}: {}",
                outcome.summary()
            );
            assert!(outcome.quiescent, "seed {seed}: {}", outcome.summary());
        }
    }
}
