//! Client-layer end-to-end: the multiplexed client fan-in exercised on a
//! real grid, per-client verdict and all.
//!
//! * A 25-node grid over UDS with full chaos (per-link faults plus a
//!   partition/heal cycle) hosting thousands of logical clients
//!   converges with a clean SP verdict *and* a clean per-client verdict
//!   (every stamp exactly once, FIFO per client).
//! * The audit is load-bearing: the seeded `dup-stamp` mutation — two
//!   logical messages sharing one `(client, seq)` stamp — turns the
//!   verdict red and the run dirty.

use ssmfp_cluster::{
    pick_partition, run_cluster, ChaosSpec, ClientMutation, ClientSpec, ClusterSpec, ListenSpec,
    RunMode, WorkloadKind, WorkloadSpec,
};
use ssmfp_core::ClientViolation;
use ssmfp_topology::gen;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn uds_dir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ssmfp-clients-test-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create uds dir");
    dir
}

fn client_spec(
    clients: u64,
    messages: u64,
    seed: u64,
    mutation: Option<ClientMutation>,
    chaos: bool,
) -> ClusterSpec {
    let graph = gen::grid(5, 5);
    let chaos = if chaos {
        ChaosSpec {
            seed: seed ^ 0x5CA1E,
            faults_per_link: 1,
            partition: Some(pick_partition(&graph, seed, 4, 10)),
        }
    } else {
        ChaosSpec::none()
    };
    ClusterSpec {
        topology: "grid:5x5".into(),
        graph,
        // The node-level workload is inert in client mode; give it a
        // nonzero quota anyway to prove the mux really replaces it.
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 4 },
            messages: 50,
        },
        seed,
        chaos,
        listen: ListenSpec::Uds { dir: uds_dir() },
        clients: Some(ClientSpec {
            clients,
            load: WorkloadSpec {
                kind: WorkloadKind::Closed { outstanding: 1 },
                messages,
            },
            mutation,
        }),
        shards: 4,
        mode: RunMode::Inproc,
        timeout: Duration::from_secs(300),
    }
}

/// The tentpole e2e: thousands of logical clients fanning into a 25-node
/// grid under full chaos, audited per client end-to-end.
#[test]
fn grid_5x5_chaos_thousands_of_clients_clean_per_client_verdict() {
    let clients = 2_000u64;
    let messages = 2u64;
    let spec = client_spec(clients, messages, 11, None, true);
    let report = run_cluster(&spec).expect("run");

    assert!(report.converged, "client run did not converge");
    assert!(
        report.verdict.clean(),
        "SP violations: {:?}",
        report.verdict.violations
    );
    let cv = report.client_verdict.as_ref().expect("client mode verdict");
    assert!(cv.clean(), "per-client violations: {:?}", cv.violations);
    assert!(report.clean(), "report not clean");

    // Every stamp accounted for, exactly once, none stuck in flight.
    assert_eq!(cv.clients, clients, "distinct clients seen by the audit");
    assert_eq!(cv.stamped, clients * messages);
    assert_eq!(cv.exactly_once, clients * messages);
    assert_eq!(cv.in_flight, 0);

    // The SP totals include the acks: one audited ack per primary.
    assert_eq!(report.verdict.generated, 2 * clients * messages);

    // Per-client telemetry reached the root through the shard tree.
    assert_eq!(report.clients, clients);
    assert_eq!(report.clients_completed, clients * messages);
    assert_eq!(report.client_rtt.count(), clients * messages);
    assert_eq!(
        report.client_fair.count(),
        clients,
        "fairness is one sample per session"
    );
    // And the chaos was real.
    let c = &report.counters;
    assert!(
        c.chaos_dropped + c.chaos_duplicated + c.chaos_reordered + c.partition_dropped > 0,
        "chaos never fired: {c:?}"
    );
}

/// Red e2e: the seeded duplicate-stamp mutation must be caught — the
/// per-client verdict goes dirty with `DuplicateStamp` among the
/// violations, and the run reports unclean.
#[test]
fn dup_stamp_mutation_turns_the_client_verdict_red() {
    let spec = client_spec(200, 3, 11, Some(ClientMutation::DuplicateStamp), false);
    let report = run_cluster(&spec).expect("run");
    assert!(report.converged, "mutated run did not converge");
    let cv = report.client_verdict.as_ref().expect("client mode verdict");
    assert!(!cv.clean(), "mutation was not caught");
    assert!(
        cv.violations
            .iter()
            .any(|v| matches!(v, ClientViolation::DuplicateStamp { seq: 0, .. })),
        "expected DuplicateStamp(seq 0) among: {:?}",
        &cv.violations[..cv.violations.len().min(5)]
    );
    assert!(!report.clean(), "a red client verdict must dirty the run");
}
