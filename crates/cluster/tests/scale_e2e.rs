//! Scale end-to-end: the tentpole claim of the sharded orchestrator and
//! the one-thread-per-node data plane, exercised on real grids.
//!
//! * A 64-node grid over UDS with full chaos (per-link faults plus a
//!   partition/heal cycle) converges with a clean reconciled SP verdict
//!   under 4 shards.
//! * The run's thread footprint is `nodes + shards + O(1)` — measured by
//!   the debug-build registration counter, not inferred.
//! * Sharding is a pure supervision detail: the primary message set of a
//!   `shards: 1` run equals that of a `shards: 4` run at the same seed.
//!
//! The registration counter is process-global and cumulative, so the
//! tests serialize on a mutex and measure deltas.

use ssmfp_cluster::{
    pick_partition, run_cluster, shard_ranges, ChaosSpec, ClusterSpec, ListenSpec, RunMode,
    WorkloadKind, WorkloadSpec,
};
use ssmfp_topology::gen;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the tests in this file: thread-count deltas are only
/// meaningful when no other cluster run is registering threads.
static SCALE_LOCK: Mutex<()> = Mutex::new(());

fn uds_dir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ssmfp-scale-test-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create uds dir");
    dir
}

fn grid_spec(rows: usize, cols: usize, seed: u64, shards: usize, msgs: u64) -> ClusterSpec {
    let graph = gen::grid(rows, cols);
    let chaos = ChaosSpec {
        seed: seed ^ 0x5CA1E,
        // Modest budgets: this is a debug-build test with 64 unoptimized
        // nodes on shared CI cores — the point is scale, not fault volume.
        faults_per_link: 1,
        partition: Some(pick_partition(&graph, seed, 4, 10)),
    };
    ClusterSpec {
        topology: format!("grid:{rows}x{cols}"),
        graph,
        seed,
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 2 },
            messages: msgs,
        },
        chaos,
        listen: ListenSpec::Uds { dir: uds_dir() },
        clients: None,
        shards,
        mode: RunMode::Inproc,
        timeout: Duration::from_secs(300),
    }
}

fn primary_set(r: &ssmfp_cluster::RunReport) -> Vec<(ssmfp_mp::MpGhost, usize)> {
    let mut g: Vec<_> = r
        .nodes
        .iter()
        .flat_map(|n| n.generated.iter().copied())
        .filter(|&(g, _)| !ssmfp_cluster::is_ack_ghost(g))
        .collect();
    g.sort();
    g
}

/// The tentpole e2e: 64 nodes, full chaos, 4 shards, clean verdict, and
/// a thread footprint bounded by `nodes + shards + O(1)`.
#[test]
fn grid_8x8_uds_chaos_clean_with_bounded_threads() {
    let _guard = SCALE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let spec = grid_spec(8, 8, 64, 4, 6);
    let n = spec.graph.n();
    let shards = shard_ranges(n, spec.shards).len();

    let before = ssmfp_core::conc::registered_thread_count(ssmfp_cluster::conc::COMPONENT);
    let report = run_cluster(&spec).expect("run");
    let after = ssmfp_core::conc::registered_thread_count(ssmfp_cluster::conc::COMPONENT);

    assert!(report.converged, "64-node grid did not converge");
    assert!(
        report.verdict.clean(),
        "SP violations at 64 nodes: {:?}",
        report.verdict.violations
    );
    assert_eq!(report.n, 64);
    assert_eq!(report.shards, 4);
    assert_eq!(report.primaries_delivered, 64 * 6);
    assert_eq!(report.nodes.len(), 64);
    assert_eq!(report.shard_summaries.len(), 4);
    // The chaos shim and the partition window actually fired at scale.
    let c = &report.counters;
    assert!(
        c.chaos_dropped + c.chaos_duplicated + c.chaos_reordered + c.partition_dropped > 0,
        "chaos never fired: {c:?}"
    );

    // One thread per node, one per shard, plus the orchestrator (the
    // calling thread re-registers for free on repeat runs — hence ≤ 2
    // slack, not an exact count). Only meaningful in debug builds, where
    // the registry records anything at all.
    if cfg!(debug_assertions) {
        let delta = after - before;
        assert!(
            delta >= (n + shards) as u64,
            "thread registry missed workers: delta {delta} < n+K = {}",
            n + shards
        );
        assert!(
            delta <= (n + shards + 2) as u64,
            "thread footprint blew the per-run bound: delta {delta} > n+K+2 = {}",
            n + shards + 2
        );
    }
}

/// Sharding must not leak into protocol behaviour: at a fixed seed the
/// primary ghost↔destination set is identical whether one supervisor or
/// four drive the same 25-node grid.
#[test]
fn primary_set_identical_across_shard_counts() {
    let _guard = SCALE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let one = run_cluster(&grid_spec(5, 5, 17, 1, 6)).expect("shards=1 run");
    let four = run_cluster(&grid_spec(5, 5, 17, 4, 6)).expect("shards=4 run");
    for r in [&one, &four] {
        assert!(r.converged, "shards={} run did not converge", r.shards);
        assert!(
            r.verdict.clean(),
            "shards={}: SP violations: {:?}",
            r.shards,
            r.verdict.violations
        );
    }
    assert_eq!(one.shards, 1);
    assert_eq!(four.shards, 4);
    assert_eq!(
        primary_set(&one),
        primary_set(&four),
        "shard count changed the primary message set"
    );
    assert_eq!(one.verdict.generated, four.verdict.generated);
    assert_eq!(one.verdict.exactly_once, four.verdict.exactly_once);
}
