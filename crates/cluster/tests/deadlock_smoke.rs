//! Deadlock smoke: an aggressive schedule must never wedge the data
//! plane.
//!
//! The `conc-deadlock` lint proves the *declared* blocking graph has no
//! feasible circular wait; this test is the empirical counterpart for the
//! real thing. A 5-node UDS cluster runs a hostile schedule — chaos on
//! every link plus a partition/heal cycle, closed-loop workload keeping
//! every queue warm — inside a worker thread, while the test thread sits
//! on a watchdog channel. If the cluster wedges (a circular wait the
//! model missed, a writer stuck on a full queue, a reader stuck on a dead
//! socket), the watchdog expires and the test fails with a diagnosis
//! instead of hanging the whole suite until the harness timeout.

use ssmfp_cluster::{
    pick_partition, run_cluster, ChaosSpec, ClusterSpec, ListenSpec, RunMode, WorkloadKind,
    WorkloadSpec,
};
use ssmfp_topology::gen;
use std::sync::mpsc;
use std::time::Duration;

/// Generous wall-clock bound: the run itself converges in a few seconds;
/// anything near the bound means threads stopped making progress.
const WATCHDOG: Duration = Duration::from_secs(90);

#[test]
fn five_node_uds_chaos_never_wedges() {
    let dir = std::env::temp_dir().join(format!("ssmfp-deadlock-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create uds dir");
    let graph = gen::line(5);
    let chaos = ChaosSpec {
        seed: 0xDEAD,
        // Heavier than the e2e chaos runs: more per-link faults and a
        // longer blackout, to keep retransmission and backpressure hot.
        faults_per_link: 4,
        partition: Some(pick_partition(&graph, 0xDEAD, 8, 30)),
    };
    let spec = ClusterSpec {
        topology: "line:5".into(),
        graph,
        seed: 0xDEAD,
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 8 },
            messages: 30,
        },
        chaos,
        listen: ListenSpec::Uds { dir },
        clients: None,
        shards: 2,
        mode: RunMode::Inproc,
        timeout: Duration::from_secs(60),
    };

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = done_tx.send(run_cluster(&spec));
    });

    match done_rx.recv_timeout(WATCHDOG) {
        Ok(result) => {
            let report = result.expect("cluster run failed");
            assert!(report.converged, "cluster did not converge");
            assert!(
                report.verdict.clean(),
                "SP violations under the aggressive schedule: {:?}",
                report.verdict.violations
            );
        }
        Err(_) => panic!(
            "cluster wedged: no completion within {WATCHDOG:?} — a blocking cycle the declared \
             concurrency model (crates/cluster/src/conc.rs) does not admit; run \
             `ssmfp-lint --only conc-deadlock` against the updated model and check for \
             undeclared blocking edges"
        ),
    }
}
