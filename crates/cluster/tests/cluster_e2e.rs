//! End-to-end cluster runs: real sockets, real threads/processes, chaos
//! on the wire — and still exactly-once with a clean cluster-wide SP
//! verdict.

use ssmfp_cluster::{
    pick_partition, run_cluster, ChaosSpec, ClusterSpec, ListenSpec, RunMode, WorkloadKind,
    WorkloadSpec,
};
use ssmfp_topology::{gen, Graph};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn uds_dir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ssmfp-cluster-test-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create uds dir");
    dir
}

fn chaos_spec(graph: &Graph, seed: u64) -> ChaosSpec {
    ChaosSpec {
        seed: seed ^ 0xC4A0,
        faults_per_link: 2,
        // One partition/heal cycle on a seed-picked edge: drop 15
        // consecutive data-plane arrivals per direction, then heal.
        partition: Some(pick_partition(graph, seed, 5, 15)),
    }
}

/// The runtime half of `conc-coverage`: every thread the run actually
/// spawned (recorded by the debug-build registry) must be a declared role
/// in the cluster concurrency model.
fn assert_conc_coverage() {
    if cfg!(debug_assertions) {
        let observed = ssmfp_core::conc::observed_threads(ssmfp_cluster::conc::COMPONENT);
        let undeclared = ssmfp_cluster::conc::default_model().undeclared_observed(&observed);
        assert!(
            undeclared.is_empty(),
            "threads outside the declared cluster concurrency model: {undeclared:?}"
        );
        // The run actually exercised the tracked registration paths.
        // (`orch.main` registers in every mode; `node.main` only lives in
        // this process under `RunMode::Inproc`.)
        assert!(
            observed.iter().any(|r| r == "orch.main"),
            "no orch.main thread was registered — the registry is not wired"
        );
    }
}

fn assert_clean(report: &ssmfp_cluster::RunReport) {
    assert_conc_coverage();
    // Everything now runs on the event plane: the syscall counters must
    // be wired in every mode.
    assert!(report.counters.write_syscalls > 0, "no write was counted");
    // The shard tree preserves totals: the top-level primary count is the
    // sum of the per-shard pre-merges.
    assert_eq!(
        report.primaries_delivered,
        report
            .shard_summaries
            .iter()
            .map(|s| s.primaries_delivered)
            .sum::<u64>()
    );
    assert!(
        report.converged,
        "{}: cluster did not converge",
        report.topology
    );
    assert!(
        report.verdict.clean(),
        "{}: SP violations: {:?}",
        report.topology,
        report.verdict.violations
    );
    assert_eq!(
        report.verdict.generated, report.verdict.exactly_once,
        "{}: not everything was delivered exactly once",
        report.topology
    );
    assert!(report.primaries_delivered > 0);
    assert_eq!(report.latency.count(), report.primaries_delivered);
}

#[test]
fn five_node_line_uds_chaos_exactly_once() {
    let graph = gen::line(5);
    let chaos = chaos_spec(&graph, 1);
    let spec = ClusterSpec {
        topology: "line:5".into(),
        graph,
        seed: 1,
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 4 },
            messages: 20,
        },
        chaos,
        listen: ListenSpec::Uds { dir: uds_dir() },
        clients: None,
        shards: 2,
        mode: RunMode::Inproc,
        timeout: Duration::from_secs(120),
    };
    let report = run_cluster(&spec).expect("run");
    assert_clean(&report);
    // Every node generated 20 primaries plus the acks it owed.
    assert_eq!(report.primaries_delivered, 5 * 20);
    // The chaos shim actually did something.
    let c = &report.counters;
    assert!(
        c.chaos_dropped + c.chaos_duplicated + c.chaos_reordered + c.partition_dropped > 0,
        "chaos never fired: {c:?}"
    );
}

#[test]
fn caterpillar_uds_open_loop_chaos_exactly_once() {
    let graph = gen::caterpillar(3, 2);
    let chaos = chaos_spec(&graph, 7);
    let spec = ClusterSpec {
        topology: "caterpillar:3:2".into(),
        graph,
        seed: 7,
        workload: WorkloadSpec {
            kind: WorkloadKind::Open {
                rate_per_sec: 400.0,
            },
            messages: 20,
        },
        chaos,
        listen: ListenSpec::Uds { dir: uds_dir() },
        clients: None,
        shards: 3,
        mode: RunMode::Inproc,
        timeout: Duration::from_secs(120),
    };
    let report = run_cluster(&spec).expect("run");
    assert_clean(&report);
    assert_eq!(report.primaries_delivered, 9 * 20);
}

#[test]
fn tcp_transport_also_clean() {
    let graph = gen::ring(4);
    let spec = ClusterSpec {
        topology: "ring:4".into(),
        graph: graph.clone(),
        seed: 3,
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 2 },
            messages: 10,
        },
        chaos: ChaosSpec {
            seed: 3,
            faults_per_link: 1,
            partition: None,
        },
        listen: ListenSpec::Tcp,
        clients: None,
        shards: 1,
        mode: RunMode::Inproc,
        timeout: Duration::from_secs(120),
    };
    let report = run_cluster(&spec).expect("run");
    assert_clean(&report);
}

/// The primary ghost↔destination message set — what the SP verdict
/// quantifies over — is a pure function of the seed, independent of
/// scheduling. (Ack *identities* depend on delivery order; their count
/// and exactly-once delivery are still checked by the verdict.)
#[test]
fn message_set_deterministic_under_fixed_seed() {
    let run = || {
        let graph = gen::line(4);
        let spec = ClusterSpec {
            topology: "line:4".into(),
            graph: graph.clone(),
            seed: 11,
            workload: WorkloadSpec {
                kind: WorkloadKind::Closed { outstanding: 3 },
                messages: 10,
            },
            chaos: chaos_spec(&graph, 11),
            listen: ListenSpec::Uds { dir: uds_dir() },
            clients: None,
            shards: 2,
            mode: RunMode::Inproc,
            timeout: Duration::from_secs(120),
        };
        run_cluster(&spec).expect("run")
    };
    let a = run();
    let b = run();
    assert_clean(&a);
    assert_clean(&b);
    let key = |r: &ssmfp_cluster::RunReport| {
        let mut g: Vec<_> = r
            .nodes
            .iter()
            .flat_map(|n| n.generated.iter().copied())
            .filter(|&(g, _)| !ssmfp_cluster::is_ack_ghost(g))
            .collect();
        g.sort();
        g
    };
    assert_eq!(key(&a), key(&b), "message set differed across runs");
    assert_eq!(a.verdict.generated, b.verdict.generated);
    assert_eq!(a.verdict.exactly_once, b.verdict.exactly_once);
}

/// The real deployment shape: one OS process per node, controlled over
/// stdin/stdout, Unix-domain sockets between them.
#[test]
fn process_mode_five_node_line_clean() {
    let graph = gen::line(5);
    let chaos = chaos_spec(&graph, 5);
    let spec = ClusterSpec {
        topology: "line:5".into(),
        graph,
        seed: 5,
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 4 },
            messages: 10,
        },
        chaos,
        listen: ListenSpec::Uds { dir: uds_dir() },
        clients: None,
        shards: 2,
        mode: RunMode::Proc {
            exe: PathBuf::from(env!("CARGO_BIN_EXE_ssmfp-cluster")),
        },
        timeout: Duration::from_secs(120),
    };
    let report = run_cluster(&spec).expect("run");
    assert_clean(&report);
    assert_eq!(report.primaries_delivered, 5 * 10);
}
