//! Mapping between the simulator's [`WireMsg`] and the wire codec's
//! [`WireFrame`].
//!
//! `crates/mp` stays independent of `crates/core`, so the two sides have
//! their own message/ghost types; this module is the (total, lossless)
//! bridge. `Hello`/`Heartbeat` frames are supervision-only and have no
//! `WireMsg` counterpart — [`frame_to_msg`] returns `None` for them.

use ssmfp_core::wire::{WireFrame, WireMessage};
use ssmfp_core::GhostId;
use ssmfp_mp::{MpGhost, MpMessage, WireMsg};

/// `MpGhost` → `GhostId` (same 64-bit identity space).
pub fn ghost_to_wire(g: MpGhost) -> GhostId {
    match g {
        MpGhost::Valid(k) => GhostId::Valid(k),
        MpGhost::Invalid(k) => GhostId::Invalid(k),
    }
}

/// `GhostId` → `MpGhost`.
pub fn ghost_from_wire(g: GhostId) -> MpGhost {
    match g {
        GhostId::Valid(k) => MpGhost::Valid(k),
        GhostId::Invalid(k) => MpGhost::Invalid(k),
    }
}

fn msg_to_wire(m: &MpMessage) -> WireMessage {
    WireMessage {
        payload: m.payload,
        color: m.color,
        ghost: ghost_to_wire(m.ghost),
    }
}

fn msg_from_wire(m: &WireMessage) -> MpMessage {
    MpMessage {
        payload: m.payload,
        color: m.color,
        ghost: ghost_from_wire(m.ghost),
    }
}

/// Encodes a simulator message as a frame. Destinations are `usize` in
/// the simulator and `u16` on the wire; [`ssmfp_core::wire`]'s layout
/// bounds instances at `n < 2^16`, far above any deployable topology.
pub fn msg_to_frame(msg: &WireMsg) -> WireFrame {
    match msg {
        WireMsg::Offer { d, msg, nonce } => WireFrame::Offer {
            d: *d as u16,
            msg: msg_to_wire(msg),
            nonce: *nonce,
        },
        WireMsg::Accept { d, msg, nonce } => WireFrame::Accept {
            d: *d as u16,
            msg: msg_to_wire(msg),
            nonce: *nonce,
        },
        WireMsg::Confirm { d, msg, nonce } => WireFrame::Confirm {
            d: *d as u16,
            msg: msg_to_wire(msg),
            nonce: *nonce,
        },
        WireMsg::Deny { d, msg, nonce } => WireFrame::Deny {
            d: *d as u16,
            msg: msg_to_wire(msg),
            nonce: *nonce,
        },
        WireMsg::Dv { d, dist } => WireFrame::Dv {
            d: *d as u16,
            dist: *dist,
        },
    }
}

/// Decodes a frame back into a simulator message; `None` for the
/// supervision frames (`Hello`/`Heartbeat`), which never reach the
/// protocol.
pub fn frame_to_msg(frame: &WireFrame) -> Option<WireMsg> {
    Some(match frame {
        WireFrame::Offer { d, msg, nonce } => WireMsg::Offer {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Accept { d, msg, nonce } => WireMsg::Accept {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Confirm { d, msg, nonce } => WireMsg::Confirm {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Deny { d, msg, nonce } => WireMsg::Deny {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Dv { d, dist } => WireMsg::Dv {
            d: *d as usize,
            dist: *dist,
        },
        WireFrame::Hello { .. } | WireFrame::Heartbeat { .. } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_frame_roundtrip() {
        let msgs = vec![
            WireMsg::Offer {
                d: 3,
                msg: MpMessage {
                    payload: 99,
                    color: 2,
                    ghost: MpGhost::Valid(7),
                },
                nonce: 0xABCD,
            },
            WireMsg::Deny {
                d: 0,
                msg: MpMessage {
                    payload: 0,
                    color: 0,
                    ghost: MpGhost::Invalid(3),
                },
                nonce: 1,
            },
            WireMsg::Dv { d: 5, dist: 2 },
        ];
        for m in msgs {
            let f = msg_to_frame(&m);
            assert_eq!(frame_to_msg(&f), Some(m));
        }
        assert_eq!(
            frame_to_msg(&WireFrame::Heartbeat { node: 1, clock: 2 }),
            None
        );
    }
}
