//! Mapping between the simulator's [`WireMsg`] and the wire codec's
//! [`WireFrame`].
//!
//! `crates/mp` stays independent of `crates/core`, so the two sides have
//! their own message/ghost types; this module is the (total, lossless)
//! bridge. `Hello`/`Heartbeat` frames are supervision-only and have no
//! `WireMsg` counterpart — [`frame_to_msg`] returns `None` for them.

use ssmfp_core::wire::{ClientStamp, WireFrame, WireMessage};
use ssmfp_core::GhostId;
use ssmfp_mp::{decode_client_ghost, MpGhost, MpMessage, WireMsg};

/// `MpGhost` → `GhostId` (same 64-bit identity space).
pub fn ghost_to_wire(g: MpGhost) -> GhostId {
    match g {
        MpGhost::Valid(k) => GhostId::Valid(k),
        MpGhost::Invalid(k) => GhostId::Invalid(k),
    }
}

/// `GhostId` → `MpGhost`.
pub fn ghost_from_wire(g: GhostId) -> MpGhost {
    match g {
        GhostId::Valid(k) => MpGhost::Valid(k),
        GhostId::Invalid(k) => MpGhost::Invalid(k),
    }
}

fn msg_to_wire(m: &MpMessage) -> WireMessage {
    WireMessage {
        payload: m.payload,
        color: m.color,
        ghost: ghost_to_wire(m.ghost),
        stamp: ClientStamp::NONE,
    }
}

/// The wire stamp a client-mode ghost carries: the flat client id and
/// sequence from [`ssmfp_mp::clients`]'s packing. Invalid ghosts
/// (initial-configuration garbage) carry no stamp.
pub fn client_stamp_of(g: MpGhost) -> ClientStamp {
    match decode_client_ghost(g) {
        Some(p) => ClientStamp {
            client: p.client_id(),
            seq: p.seq,
        },
        None => ClientStamp::NONE,
    }
}

fn msg_to_wire_client(m: &MpMessage) -> WireMessage {
    WireMessage {
        stamp: client_stamp_of(m.ghost),
        ..msg_to_wire(m)
    }
}

fn msg_from_wire(m: &WireMessage) -> MpMessage {
    MpMessage {
        payload: m.payload,
        color: m.color,
        ghost: ghost_from_wire(m.ghost),
    }
}

/// Encodes a simulator message as a frame. Destinations are `usize` in
/// the simulator and `u16` on the wire; [`ssmfp_core::wire`]'s layout
/// bounds instances at `n < 2^16`, far above any deployable topology.
pub fn msg_to_frame(msg: &WireMsg) -> WireFrame {
    msg_to_frame_with(msg, msg_to_wire)
}

/// Client-mode encoding: like [`msg_to_frame`] but every handshake
/// frame carries the `(client_id, client_seq)` stamp decoded from its
/// ghost, so the identity the per-client audit reconciles is visible on
/// the wire itself (the ghost stays authoritative on decode).
pub fn msg_to_frame_client(msg: &WireMsg) -> WireFrame {
    msg_to_frame_with(msg, msg_to_wire_client)
}

fn msg_to_frame_with(msg: &WireMsg, conv: fn(&MpMessage) -> WireMessage) -> WireFrame {
    match msg {
        WireMsg::Offer { d, msg, nonce } => WireFrame::Offer {
            d: *d as u16,
            msg: conv(msg),
            nonce: *nonce,
        },
        WireMsg::Accept { d, msg, nonce } => WireFrame::Accept {
            d: *d as u16,
            msg: conv(msg),
            nonce: *nonce,
        },
        WireMsg::Confirm { d, msg, nonce } => WireFrame::Confirm {
            d: *d as u16,
            msg: conv(msg),
            nonce: *nonce,
        },
        WireMsg::Deny { d, msg, nonce } => WireFrame::Deny {
            d: *d as u16,
            msg: conv(msg),
            nonce: *nonce,
        },
        WireMsg::Dv { d, dist } => WireFrame::Dv {
            d: *d as u16,
            dist: *dist,
        },
    }
}

/// Decodes a frame back into a simulator message; `None` for the
/// supervision frames (`Hello`/`Heartbeat`), which never reach the
/// protocol.
pub fn frame_to_msg(frame: &WireFrame) -> Option<WireMsg> {
    Some(match frame {
        WireFrame::Offer { d, msg, nonce } => WireMsg::Offer {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Accept { d, msg, nonce } => WireMsg::Accept {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Confirm { d, msg, nonce } => WireMsg::Confirm {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Deny { d, msg, nonce } => WireMsg::Deny {
            d: *d as usize,
            msg: msg_from_wire(msg),
            nonce: *nonce,
        },
        WireFrame::Dv { d, dist } => WireMsg::Dv {
            d: *d as usize,
            dist: *dist,
        },
        WireFrame::Hello { .. } | WireFrame::Heartbeat { .. } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_frame_roundtrip() {
        let msgs = vec![
            WireMsg::Offer {
                d: 3,
                msg: MpMessage {
                    payload: 99,
                    color: 2,
                    ghost: MpGhost::Valid(7),
                },
                nonce: 0xABCD,
            },
            WireMsg::Deny {
                d: 0,
                msg: MpMessage {
                    payload: 0,
                    color: 0,
                    ghost: MpGhost::Invalid(3),
                },
                nonce: 1,
            },
            WireMsg::Dv { d: 5, dist: 2 },
        ];
        for m in msgs {
            let f = msg_to_frame(&m);
            assert_eq!(frame_to_msg(&f), Some(m));
        }
        assert_eq!(
            frame_to_msg(&WireFrame::Heartbeat { node: 1, clock: 2 }),
            None
        );
    }

    #[test]
    fn client_mode_frames_carry_the_ghost_stamp() {
        let g = ssmfp_mp::client_ghost(3, 17, 9);
        let m = WireMsg::Offer {
            d: 1,
            msg: MpMessage {
                payload: 5,
                color: 1,
                ghost: g,
            },
            nonce: 2,
        };
        let WireFrame::Offer { msg, .. } = msg_to_frame_client(&m) else {
            panic!("offer stays an offer");
        };
        let parts = ssmfp_mp::decode_client_ghost(g).unwrap();
        assert!(msg.stamp.is_present());
        assert_eq!(msg.stamp.client, parts.client_id());
        assert_eq!(msg.stamp.seq, 9);
        // Node-mode frames carry no stamp; decode ignores it either way.
        let WireFrame::Offer { msg: plain, .. } = msg_to_frame(&m) else {
            panic!("offer stays an offer");
        };
        assert_eq!(plain.stamp, ClientStamp::NONE);
        assert_eq!(frame_to_msg(&msg_to_frame_client(&m)), Some(m));
    }
}
