//! Every tunable constant of the cluster runtime in one documented place.
//!
//! PR 5 scattered these across `node.rs` and `orchestrator.rs` as bare
//! `const`s; now that the channel bounds are *declared* in the concurrency
//! model ([`crate::conc::model`]) and lint-gated, the declaration and the
//! running code must come from the same struct so they cannot drift. The
//! runtime consumes [`TUNING`]; so does the model builder.

use std::time::Duration;

/// The cluster runtime's knobs. One instance ([`TUNING`]) configures both
/// the running code and the declared concurrency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTuning {
    /// Main-loop granularity: protocol timeouts fire at most this often.
    pub tick_ms: u64,
    /// Idle gap after which a link emits a heartbeat.
    pub heartbeat_ms: u64,
    /// Status push period (node → shard supervisor).
    pub status_every_ms: u64,
    /// Bounded shard → orchestrator upstream queue depth (`orch.shard`).
    /// Shards send a handful of messages per run; the bound is slack by
    /// orders of magnitude and **blocks** if ever hit.
    pub orch_shard_queue: usize,
    /// Reconnect backoff base in ms (doubles per attempt, capped,
    /// jittered).
    pub backoff_base_ms: u64,
    /// Reconnect backoff cap in ms.
    pub backoff_cap_ms: u64,
    /// Dial attempts before a link gives up (node is shutting down or
    /// the peer is gone for good).
    pub max_dial_attempts: u32,
    /// Consecutive identical all-done snapshots required to declare
    /// convergence (guards against reading between a send and its
    /// delivery).
    pub stable_snapshots: u32,
    /// How long the orchestrator waits for final reports after `stop`.
    pub report_grace_s: u64,
    /// How long a shard waits for a node process to exit before killing
    /// it.
    pub proc_exit_grace_s: u64,
    /// Poll interval while waiting for a node process to exit.
    pub proc_wait_poll_ms: u64,
    /// Adaptive-batching byte budget: the node loop stops appending
    /// queued frames to one connection's write buffer past this many
    /// pending bytes and flushes first. When the loop is idle a single
    /// frame flushes immediately — the budget only shapes behaviour under
    /// load.
    pub batch_max_bytes: usize,
    /// Adaptive-batching frame budget per `write()` (same role as
    /// [`ClusterTuning::batch_max_bytes`], counted in frames).
    pub batch_max_frames: usize,
    /// Hard cap on bytes buffered for one congested connection. Beyond
    /// it, new frames for that peer are shed as counted wire drops (the
    /// retransmission path recovers), which keeps the write buffer — and
    /// therefore the zero-realloc guarantee — bounded even against a peer
    /// that stops reading.
    pub out_buf_cap_bytes: usize,
    /// Size of the node loop's reusable read scratch buffer.
    pub io_read_chunk: usize,
    /// Client-mux issue budget per main-loop iteration. With millions of
    /// hosted sessions the mux can have an arbitrarily deep ready queue;
    /// the budget bounds how long one iteration stays away from the
    /// socket pump (fairness between client fan-in and I/O), while the
    /// round-robin ready queue guarantees no session starves across
    /// iterations.
    pub client_send_budget: u32,
    /// Best-effort flush window for still-buffered frames at shutdown.
    pub io_flush_grace_ms: u64,
}

/// The tuning the cluster runtime actually runs with.
pub const TUNING: ClusterTuning = ClusterTuning {
    tick_ms: 1,
    heartbeat_ms: 50,
    // 10ms: with `stable_snapshots: 3` the convergence-detection tail is
    // ~30-40ms of every run's wall clock. At 25ms the tail dwarfed short
    // benchmark runs on the event-driven plane.
    status_every_ms: 10,
    orch_shard_queue: 1024,
    backoff_base_ms: 4,
    backoff_cap_ms: 250,
    max_dial_attempts: 400,
    stable_snapshots: 3,
    report_grace_s: 20,
    proc_exit_grace_s: 5,
    proc_wait_poll_ms: 10,
    batch_max_bytes: 32 * 1024,
    batch_max_frames: 512,
    out_buf_cap_bytes: 256 * 1024,
    io_read_chunk: 64 * 1024,
    io_flush_grace_ms: 50,
    client_send_budget: 2048,
};

impl Default for ClusterTuning {
    fn default() -> Self {
        TUNING
    }
}

impl ClusterTuning {
    /// [`ClusterTuning::tick_ms`] as a `Duration`.
    pub fn tick(&self) -> Duration {
        Duration::from_millis(self.tick_ms)
    }

    /// [`ClusterTuning::heartbeat_ms`] as a `Duration`.
    pub fn heartbeat(&self) -> Duration {
        Duration::from_millis(self.heartbeat_ms)
    }

    /// [`ClusterTuning::status_every_ms`] as a `Duration`.
    pub fn status_every(&self) -> Duration {
        Duration::from_millis(self.status_every_ms)
    }

    /// [`ClusterTuning::report_grace_s`] as a `Duration`.
    pub fn report_grace(&self) -> Duration {
        Duration::from_secs(self.report_grace_s)
    }

    /// [`ClusterTuning::proc_exit_grace_s`] as a `Duration`.
    pub fn proc_exit_grace(&self) -> Duration {
        Duration::from_secs(self.proc_exit_grace_s)
    }

    /// [`ClusterTuning::proc_wait_poll_ms`] as a `Duration`.
    pub fn proc_wait_poll(&self) -> Duration {
        Duration::from_millis(self.proc_wait_poll_ms)
    }

    /// [`ClusterTuning::io_flush_grace_ms`] as a `Duration`.
    pub fn io_flush_grace(&self) -> Duration {
        Duration::from_millis(self.io_flush_grace_ms)
    }

    /// Reconnect backoff for the given in-session attempt number, in ms
    /// (exclusive of jitter).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        (self.backoff_base_ms << attempt.min(6)).min(self.backoff_cap_ms)
    }
}
