//! The cluster runtime's declared concurrency model.
//!
//! Every thread role, cross-thread channel and blocking edge of
//! `node.rs`/`orchestrator.rs`, declared as data for `ssmfp-lint`'s
//! `conc-*` passes and for the debug-build runtime assertions. Bounds come
//! from the same [`ClusterTuning`] the running code consumes, so the
//! declaration cannot drift from the implementation.
//!
//! ## The shape of the graph (PR 8: a control *tree*)
//!
//! Three roles, period:
//!
//! * `orch.main` — the run driver. Spawns shard supervisors, distributes
//!   `peers`/`start`/`stop` over per-shard socketpairs, and drains the
//!   one channel (`orch.shard`) everything flows up through.
//! * `shard.super` — one per shard: supervises a group of nodes (spawns
//!   threads inproc, processes in proc mode), polls their control pipes,
//!   pre-merges status/telemetry, forwards control lines downward with
//!   POLLOUT-gated nonblocking writes.
//! * `node.main` — one per node, and the *only* thread a node has: the
//!   [`crate::evloop::NodeLoop`] multiplexes ctrl + listener + every data
//!   connection through one `poll(2)` set and runs the protocol engine
//!   between I/O bursts.
//!
//! Every data-plane wait is timed (nonblocking sockets behind a poll
//! deadline). Exactly two untimed edges remain, and they form a chain up
//! the control tree — `node.main` blocking-writes status/report lines to
//! its shard (which polls node pipes unconditionally), and `shard.super`
//! blocking-sends on `orch.shard` (which `orch.main` drains with a
//! timeout). Leaf → shard → root is acyclic by construction; the
//! `conc-deadlock` lint checks it, and flipping any downward control
//! write to untimed re-closes the old orchestrator cycle (a red test
//! keeps that detection honest).
//!
//! No locks remain: the writer-stats mutex died with the blocking plane.
//!
//! ## The client layer adds no concurrency (PR 9)
//!
//! [`crate::clients::ClientMux`] — up to millions of logical clients per
//! node — is a plain struct owned by the `node.main` loop, polled
//! between I/O bursts under the `client_send_budget` and fed by the same
//! delivery vector the forwarder already fills. Re-deriving the model
//! with it in place changes *nothing*: still three roles, zero locks,
//! one channel. Session fan-in is a table walk inside an existing
//! thread, not a queue between threads — a pin test holds the counts,
//! and a red test in `ssmfp-lint` proves an undeclared `client.mux`
//! channel would fail `conc-coverage` rather than ship silently.

use crate::tuning::ClusterTuning;
use ssmfp_core::conc::{
    BlockingEdge, ChannelDecl, ConcModel, FullPolicy, Multiplicity, ThreadDecl, WaitPoint,
    EXTERN_ROLE,
};

/// Component name under which cluster threads register.
pub const COMPONENT: &str = "cluster";

/// Builds the declared model from the tuning the runtime actually uses.
pub fn model(t: &ClusterTuning) -> ConcModel {
    ConcModel {
        component: COMPONENT,
        threads: vec![
            ThreadDecl {
                role: "orch.main",
                multiplicity: Multiplicity::One,
                spawned_by: EXTERN_ROLE,
                doc: "drives the run: spawns shards, distributes control, declares convergence",
            },
            ThreadDecl {
                role: "shard.super",
                multiplicity: Multiplicity::PerShard,
                spawned_by: "orch.main",
                doc: "supervises one node group: polls ctrl pipes, pre-merges status/telemetry",
            },
            ThreadDecl {
                role: "node.main",
                multiplicity: Multiplicity::PerNode,
                spawned_by: "shard.super",
                doc: "the whole node: poll(2)-multiplexed ctrl/listener/connections plus \
                      the protocol engine, one thread total",
            },
        ],
        locks: vec![],
        channels: vec![ChannelDecl {
            name: "orch.shard",
            senders: vec!["shard.super"],
            receiver: "orch.main",
            bound: Some(t.orch_shard_queue),
            policy: Some(FullPolicy::Block),
            doc: "shard → orchestrator upstream: ready sets, merged status, shard reports",
        }],
        edges: vec![
            // node.main — every data-plane wait is a timed poll; the one
            // untimed edge is the blocking status/report write up to the
            // shard, which drains node pipes unconditionally.
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::SockRead("node.main"),
                holding: vec![],
                timed: true, // nonblocking reads behind the poll deadline
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::SockWrite("node.main"),
                holding: vec![],
                timed: true, // nonblocking writes, POLLOUT-driven retry
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::Accept("node.main"),
                holding: vec![],
                timed: true, // nonblocking accept on listener readiness
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::SockRead("shard.super"),
                holding: vec![],
                timed: true, // single-shot ctrl read behind the poll deadline
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::SockWrite("shard.super"),
                holding: vec![],
                timed: false, // status/report write_all — leaf edge of the control tree
            },
            // shard.super — polls node pipes and its orch socketpair;
            // downward control writes are POLLOUT-gated and nonblocking.
            BlockingEdge {
                thread: "shard.super",
                waits: WaitPoint::SockRead("node.main"),
                holding: vec![],
                timed: true, // poll over node ctrl pipes with a deadline
            },
            BlockingEdge {
                thread: "shard.super",
                waits: WaitPoint::SockRead("orch.main"),
                holding: vec![],
                timed: true, // same poll set
            },
            BlockingEdge {
                thread: "shard.super",
                waits: WaitPoint::SockWrite("node.main"),
                holding: vec![],
                timed: true, // staged ctrl bytes, written on POLLOUT only
            },
            BlockingEdge {
                thread: "shard.super",
                waits: WaitPoint::ChanSend("orch.shard"),
                holding: vec![],
                timed: false, // upstream edge of the control tree
            },
            // orch.main
            BlockingEdge {
                thread: "orch.main",
                waits: WaitPoint::ChanRecv("orch.shard"),
                holding: vec![],
                timed: true, // recv_timeout against the run deadline
            },
            BlockingEdge {
                thread: "orch.main",
                waits: WaitPoint::SockWrite("shard.super"),
                holding: vec![],
                timed: true, // peers/start/stop, POLLOUT-gated with a deadline
            },
        ],
    }
}

/// The model for the tuning the runtime actually runs with.
pub fn default_model() -> ConcModel {
    model(&crate::tuning::TUNING)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::TUNING;

    #[test]
    fn declared_bounds_come_from_tuning() {
        let m = default_model();
        assert_eq!(
            m.channel_decl("orch.shard").bound,
            Some(TUNING.orch_shard_queue)
        );
    }

    /// The single-thread node's data-plane waits are all timed — its one
    /// untimed edge is the upward control write. That asymmetry is the
    /// whole deadlock-freedom argument, so pin it.
    #[test]
    fn node_main_untimed_edges_point_only_up_the_control_tree() {
        let m = default_model();
        let node_edges: Vec<_> = m.edges.iter().filter(|e| e.thread == "node.main").collect();
        assert!(!node_edges.is_empty());
        for e in &node_edges {
            if !e.timed {
                assert_eq!(
                    e.waits,
                    WaitPoint::SockWrite("shard.super"),
                    "the only untimed node.main edge is the status/report write"
                );
            }
        }
        // And the model shrank for real: exactly three roles, no locks.
        assert_eq!(m.threads.len(), 3);
        assert!(m.locks.is_empty());
    }

    /// The client-mux design claim, pinned: multiplexing millions of
    /// logical clients changed the concurrency footprint not at all —
    /// the same three roles, zero locks, and the single `orch.shard`
    /// channel that PR 8 declared. If the mux ever grows a thread or a
    /// queue, this count (and the model) must change together with it.
    #[test]
    fn client_mux_leaves_the_model_at_three_roles_no_locks_one_channel() {
        let m = default_model();
        assert_eq!(m.threads.len(), 3, "mux must not add thread roles");
        assert!(m.locks.is_empty(), "mux must not add locks");
        assert_eq!(m.channels.len(), 1, "mux must not add channels");
        assert_eq!(m.channels[0].name, "orch.shard");
        assert!(
            m.channel("client.mux").is_none(),
            "a client.mux queue would be a new design — declare it first"
        );
    }

    #[test]
    fn every_edge_references_declared_names() {
        let m = default_model();
        for e in &m.edges {
            assert!(m.thread(e.thread).is_some(), "thread {}", e.thread);
            match e.waits {
                WaitPoint::ChanSend(c) | WaitPoint::ChanRecv(c) => {
                    assert!(m.channel(c).is_some(), "channel {c}");
                }
                WaitPoint::LockAcquire(l) => assert!(m.lock(l).is_some(), "lock {l}"),
                WaitPoint::SockRead(p) | WaitPoint::SockWrite(p) | WaitPoint::Accept(p) => {
                    assert!(m.thread(p).is_some(), "peer role {p}");
                }
            }
        }
    }
}
