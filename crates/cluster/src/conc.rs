//! The cluster runtime's declared concurrency model.
//!
//! Every thread role, lock, cross-thread channel and blocking edge of
//! `node.rs`/`orchestrator.rs`, declared as data for `ssmfp-lint`'s
//! `conc-*` passes and for the debug-build runtime assertions. Bounds come
//! from the same [`ClusterTuning`] the running code consumes, so the
//! declaration cannot drift from the implementation.
//!
//! ## The shape of the graph
//!
//! Per node on the default **event** data plane: a main protocol loop,
//! one `node.io` event-loop thread multiplexing every socket through
//! `poll(2)`, and a control-pipe reader. The legacy **blocking** plane
//! (`--io blocking`, kept for one release) instead runs an accept
//! thread, one reader per inbound connection and one writer per
//! neighbour — both planes stay declared here because the e2e suite
//! asserts observed ⊆ declared whichever plane a run selects. The
//! orchestrator adds its own main thread and one line-reader per node.
//! Channels:
//!
//! * `node.ioq` (event plane, blocks when full) / `node.sendq` (blocking
//!   plane, per neighbour, blocks when full) — the *only* places
//!   backpressure deliberately stalls the protocol loop;
//! * `node.inbound` (sheds when full) — shedding here is a wire drop the
//!   protocol's retransmission tolerates, and it is what breaks the
//!   cross-node cycle `main → outbound queue → socket → peer read side →
//!   peer inbound → peer main` on either plane;
//! * `node.ctrl` and `orch.lines` — control-plane line muxes.
//!
//! Every wait the `node.io` thread declares is **timed**: its `poll` has
//! a deadline (the nearest heartbeat/reconnect timer), its sockets are
//! nonblocking, and it drains `node.ioq` with `try_recv`. It therefore
//! adds no untimed arc to the wait-for graph — the deadlock analysis
//! stays cycle-free by the same argument as before, now with the io
//! thread guaranteed to keep draining both directions of every socket.
//!
//! `node.ctrl` sheds rather than blocks: the orchestrator sends a
//! handful of lines per run, far below the bound, so shedding is
//! *impossible* — and the node asserts at shutdown (debug builds) that
//! its shed count is zero, turning the capacity argument into a checked
//! invariant instead of a blocking edge that would close a wait cycle
//! through the orchestrator.
//!
//! One lock: `writer.stats`, the per-writer heartbeat/reconnect counters
//! the main loop reads at shutdown. It is never held across a blocking
//! operation (lint `conc-hold-across-block` keeps it that way).

use crate::tuning::ClusterTuning;
use ssmfp_core::conc::{
    BlockingEdge, ChannelDecl, ConcModel, FullPolicy, LockDecl, Multiplicity, ThreadDecl,
    WaitPoint, EXTERN_ROLE,
};

/// Component name under which cluster threads register.
pub const COMPONENT: &str = "cluster";

/// Builds the declared model from the tuning the runtime actually uses.
pub fn model(t: &ClusterTuning) -> ConcModel {
    ConcModel {
        component: COMPONENT,
        threads: vec![
            ThreadDecl {
                role: "orch.main",
                multiplicity: Multiplicity::One,
                spawned_by: EXTERN_ROLE,
                doc: "drives the run: launches nodes, muxes their lines, declares convergence",
            },
            ThreadDecl {
                role: "orch.line-reader",
                multiplicity: Multiplicity::PerNode,
                spawned_by: "orch.main",
                doc: "reads one node's status/report lines into orch.lines",
            },
            ThreadDecl {
                role: "node.main",
                multiplicity: Multiplicity::PerNode,
                spawned_by: "orch.main",
                doc: "the protocol loop: inbound frames, timeouts, workload, outbox",
            },
            ThreadDecl {
                role: "node.io",
                multiplicity: Multiplicity::PerNode,
                spawned_by: "node.main",
                doc: "event plane: poll(2)-multiplexes listener + every connection, \
                      coalesces writes, owns heartbeat/reconnect deadlines",
            },
            ThreadDecl {
                role: "node.accept",
                multiplicity: Multiplicity::PerNode,
                spawned_by: "node.main",
                doc: "blocking plane: polls the listener, spawns one reader per inbound connection",
            },
            ThreadDecl {
                role: "net.reader",
                multiplicity: Multiplicity::PerConnection,
                spawned_by: "node.accept",
                doc: "decodes frames off one inbound connection into node.inbound",
            },
            ThreadDecl {
                role: "net.writer",
                multiplicity: Multiplicity::PerNeighbor,
                spawned_by: "node.main",
                doc: "owns one outbound connection: dials, Hellos, streams, heartbeats",
            },
            ThreadDecl {
                role: "ctrl.reader",
                multiplicity: Multiplicity::PerNode,
                spawned_by: "node.main",
                doc: "reads orchestrator control lines into node.ctrl",
            },
        ],
        locks: vec![LockDecl {
            name: "writer.stats",
            rank: 10,
            doc: "per-writer heartbeat/reconnect counters, read by node.main at shutdown",
        }],
        channels: vec![
            ChannelDecl {
                name: "node.inbound",
                senders: vec!["net.reader", "node.io"],
                receiver: "node.main",
                bound: Some(t.inbound_queue),
                policy: Some(FullPolicy::Shed),
                doc: "decoded inbound frames; sheds when full (a tolerated wire drop)",
            },
            ChannelDecl {
                name: "node.ioq",
                senders: vec!["node.main"],
                receiver: "node.io",
                bound: Some(t.io_queue),
                policy: Some(FullPolicy::Block),
                doc: "event plane outbound frames; blocking is the backpressure path",
            },
            ChannelDecl {
                name: "node.sendq",
                senders: vec!["node.main"],
                receiver: "net.writer",
                bound: Some(t.send_queue),
                policy: Some(FullPolicy::Block),
                doc: "blocking plane per-neighbour outbound frames; blocking is the \
                      backpressure path",
            },
            ChannelDecl {
                name: "node.ctrl",
                senders: vec!["ctrl.reader"],
                receiver: "node.main",
                bound: Some(t.ctrl_queue),
                policy: Some(FullPolicy::Shed),
                doc: "orchestrator control lines; bound >> lines-per-run, shed asserted zero",
            },
            ChannelDecl {
                name: "orch.lines",
                senders: vec!["orch.line-reader"],
                receiver: "orch.main",
                bound: Some(t.orch_line_queue),
                policy: Some(FullPolicy::Block),
                doc: "per-node line mux feeding the orchestrator's event loop",
            },
        ],
        edges: vec![
            // node.main
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::ChanRecv("node.inbound"),
                holding: vec![],
                timed: true, // recv_timeout(tick)
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::ChanSend("node.ioq"),
                holding: vec![],
                timed: false, // backpressure: deliberately stalls the loop
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::ChanSend("node.sendq"),
                holding: vec![],
                timed: false, // backpressure: deliberately stalls the loop
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::SockWrite("orch.line-reader"),
                holding: vec![],
                timed: false, // status/report lines into the control pipe
            },
            BlockingEdge {
                thread: "node.main",
                waits: WaitPoint::LockAcquire("writer.stats"),
                holding: vec![],
                timed: false, // shutdown counter harvest
            },
            // node.io — every wait is timed: poll(2) with a deadline,
            // nonblocking sockets, try_recv on the queue. The io thread
            // contributes no untimed arc to the wait-for graph.
            BlockingEdge {
                thread: "node.io",
                waits: WaitPoint::ChanRecv("node.ioq"),
                holding: vec![],
                timed: true, // try_recv drain + poll deadline + wake pipe
            },
            BlockingEdge {
                thread: "node.io",
                waits: WaitPoint::Accept("node.io"),
                holding: vec![],
                timed: true, // nonblocking accept on listener readiness
            },
            BlockingEdge {
                thread: "node.io",
                waits: WaitPoint::SockRead("node.io"),
                holding: vec![],
                timed: true, // nonblocking reads, fed by the peer's io thread
            },
            BlockingEdge {
                thread: "node.io",
                waits: WaitPoint::SockWrite("node.io"),
                holding: vec![],
                timed: true, // nonblocking writes, POLLOUT-driven retry
            },
            // node.accept
            BlockingEdge {
                thread: "node.accept",
                waits: WaitPoint::Accept("net.writer"),
                holding: vec![],
                timed: true, // non-blocking accept + accept_poll sleep
            },
            // net.reader
            BlockingEdge {
                thread: "net.reader",
                waits: WaitPoint::SockRead("net.writer"),
                holding: vec![],
                timed: false, // fed by the peer node's writer
            },
            // net.writer
            BlockingEdge {
                thread: "net.writer",
                waits: WaitPoint::ChanRecv("node.sendq"),
                holding: vec![],
                timed: true, // recv_timeout(heartbeat)
            },
            BlockingEdge {
                thread: "net.writer",
                waits: WaitPoint::SockWrite("net.reader"),
                holding: vec![],
                timed: false, // drained by the peer node's reader
            },
            BlockingEdge {
                thread: "net.writer",
                waits: WaitPoint::LockAcquire("writer.stats"),
                holding: vec![],
                timed: false, // heartbeat/reconnect bump
            },
            // ctrl.reader
            BlockingEdge {
                thread: "ctrl.reader",
                waits: WaitPoint::SockRead("orch.main"),
                holding: vec![],
                timed: false, // control pipe
            },
            // orch.line-reader
            BlockingEdge {
                thread: "orch.line-reader",
                waits: WaitPoint::SockRead("node.main"),
                holding: vec![],
                timed: false, // the node's status/report pipe
            },
            BlockingEdge {
                thread: "orch.line-reader",
                waits: WaitPoint::ChanSend("orch.lines"),
                holding: vec![],
                timed: false,
            },
            // orch.main
            BlockingEdge {
                thread: "orch.main",
                waits: WaitPoint::ChanRecv("orch.lines"),
                holding: vec![],
                timed: true, // recv_timeout against the run deadline
            },
            BlockingEdge {
                thread: "orch.main",
                waits: WaitPoint::SockWrite("ctrl.reader"),
                holding: vec![],
                timed: false, // peers/start/stop lines
            },
        ],
    }
}

/// The model for the tuning the runtime actually runs with.
pub fn default_model() -> ConcModel {
    model(&crate::tuning::TUNING)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::TUNING;

    #[test]
    fn declared_bounds_come_from_tuning() {
        let m = default_model();
        assert_eq!(m.channel_decl("node.sendq").bound, Some(TUNING.send_queue));
        assert_eq!(m.channel_decl("node.ioq").bound, Some(TUNING.io_queue));
        assert_eq!(
            m.channel_decl("node.inbound").bound,
            Some(TUNING.inbound_queue)
        );
        assert_eq!(m.channel_decl("node.ctrl").bound, Some(TUNING.ctrl_queue));
        assert_eq!(
            m.channel_decl("orch.lines").bound,
            Some(TUNING.orch_line_queue)
        );
    }

    #[test]
    fn io_thread_declares_only_timed_waits() {
        let m = default_model();
        let io_edges: Vec<_> = m.edges.iter().filter(|e| e.thread == "node.io").collect();
        assert!(!io_edges.is_empty());
        for e in io_edges {
            assert!(e.timed, "node.io edge {:?} must be timed", e.waits);
        }
    }

    #[test]
    fn every_edge_references_declared_names() {
        let m = default_model();
        for e in &m.edges {
            assert!(m.thread(e.thread).is_some(), "thread {}", e.thread);
            match e.waits {
                WaitPoint::ChanSend(c) | WaitPoint::ChanRecv(c) => {
                    assert!(m.channel(c).is_some(), "channel {c}");
                }
                WaitPoint::LockAcquire(l) => assert!(m.lock(l).is_some(), "lock {l}"),
                WaitPoint::SockRead(p) | WaitPoint::SockWrite(p) | WaitPoint::Accept(p) => {
                    assert!(m.thread(p).is_some(), "peer role {p}");
                }
            }
        }
    }
}
