//! The client multiplexer: millions of *logical clients* fanning into
//! one node's forwarder, each with its own exactly-once, FIFO-audited
//! message stream.
//!
//! The layer above the protocol. Every cluster node hosts a [`ClientMux`]
//! owning a dense table of client sessions (its share of the cluster-wide
//! `--clients N`). Each session runs the same arrival disciplines as the
//! node-level workloads — seeded open-loop Poisson or closed-loop
//! windows ([`WorkloadSpec`]) — but issues messages stamped with its own
//! `(client, seq)` identity, packed into the ghost by
//! [`ssmfp_mp::clients`], so the shutdown reconcile can render a
//! **per-client** verdict: no stamp lost, none duplicated, deliveries in
//! sequence order.
//!
//! **FIFO by serialization.** A session keeps at most one message on the
//! wire (stop-and-wait): the next send waits for the previous ack. The
//! port guarantees exactly-once per message, not cross-message order, so
//! serialization is what makes per-client FIFO hold — and the audit then
//! *checks* it end-to-end, which still catches protocol duplication or
//! loss (a duplicate delivery lands the same seq twice; a lost primary
//! or ack leaves the stamp in flight forever). A closed-loop window
//! `K > 1` therefore adds no wire concurrency per client — the knob is
//! accepted for symmetry with node workloads; the scaling axis of this
//! layer is the *client count*. Destinations are sticky per session
//! (seeded at init), so one client's stream is observable in one node's
//! delivery-ordered ledger.
//!
//! **Acks are audited traffic.** A destination answers a stamped primary
//! with a real SSMFP message whose ghost is the primary's packed
//! identity with the ack bit set ([`ssmfp_mp::ack_ghost_of`]) — unique
//! by construction, zero per-client state at the destination.
//!
//! **Memory.** A session is one ~56-byte row (splitmix64 state, sticky
//! destination, counters, latency sums) — a million clients per node fit
//! in ~56 MB with no per-session allocations on the send path.

use crate::telemetry::LogHistogram;
use crate::workload::{primary_payload, Issue, WorkloadKind, WorkloadSpec, STAMP_MASK};
use ssmfp_core::wire::ClientStamp;
use ssmfp_core::GhostId;
use ssmfp_mp::clients::{MAX_CLIENT_NODES, MAX_SEQS_PER_CLIENT, MAX_SESSIONS_PER_NODE};
use ssmfp_mp::{client_ghost, ClientParts};
use ssmfp_topology::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A seeded client-layer bug for red-testing the per-client audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMutation {
    /// Each session's second message reuses sequence 0 instead of 1 —
    /// two logical messages sharing one stamp. The per-client reconcile
    /// must flag it ([`ssmfp_core::ledger::ClientViolation::DuplicateStamp`]).
    DuplicateStamp,
}

/// The cluster-wide client-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSpec {
    /// Logical clients across the whole cluster, spread evenly over the
    /// nodes (node `p` hosts [`ClientSpec::sessions_on`]`(p, n)`).
    pub clients: u64,
    /// Per-client arrival discipline and message quota.
    pub load: WorkloadSpec,
    /// Seeded bug injection (audit red-testing only).
    pub mutation: Option<ClientMutation>,
}

impl ClientSpec {
    /// How many sessions node `node` of `n` hosts: an even split with
    /// the first `clients mod n` nodes taking one extra.
    pub fn sessions_on(&self, node: NodeId, n: usize) -> u64 {
        let base = self.clients / n as u64;
        base + u64::from((node as u64) < self.clients % n as u64)
    }

    /// Validates the spec against the ghost-packing capacity: the
    /// `(node, session, seq)` triple must fit the 63-bit identity space.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if n < 2 {
            return Err("client mode needs n >= 2 (someone to talk to)".into());
        }
        if n > MAX_CLIENT_NODES {
            return Err(format!(
                "client mode caps the cluster at {MAX_CLIENT_NODES} nodes"
            ));
        }
        if self.clients == 0 {
            return Err("--clients must be >= 1".into());
        }
        let per_node = self.sessions_on(0, n);
        if per_node > MAX_SESSIONS_PER_NODE {
            return Err(format!(
                "{} clients over {n} nodes is {per_node} sessions/node; the ghost packing caps it at {MAX_SESSIONS_PER_NODE}",
                self.clients
            ));
        }
        if self.load.messages > MAX_SEQS_PER_CLIENT {
            return Err(format!(
                "client quota {} exceeds the {MAX_SEQS_PER_CLIENT} sequence cap",
                self.load.messages
            ));
        }
        Ok(())
    }
}

/// Decodes the per-client audit stamp out of a ledger ghost: `Some` for
/// stamped primaries, `None` for acks and non-client ghosts. This is
/// the closure `run_cluster` hands to
/// [`ssmfp_core::ledger::reconcile_clients`] — the core join stays
/// agnostic of the packing, this bridge owns it.
pub fn stamp_decode(g: GhostId) -> Option<ClientStamp> {
    let p = ssmfp_mp::decode_client_ghost(crate::frame::ghost_from_wire(g))?;
    if p.ack {
        return None;
    }
    Some(ClientStamp {
        client: p.client_id(),
        seq: p.seq,
    })
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `(0, 1]` from 53 random bits (never 0, so `ln` is finite).
fn unit_open(r: u64) -> f64 {
    ((r >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One logical client. Deliberately flat — no boxes, no vecs — so a
/// million of them are one dense allocation.
#[derive(Debug, Clone)]
struct Session {
    rng: u64,
    next_at_us: u64,
    sent_at_us: u64,
    lat_sum: u64,
    dest: u32,
    arrived: u32,
    issued: u32,
    completed: u32,
    lat_n: u32,
    in_flight: bool,
}

/// The per-node client multiplexer. Runs entirely inside the `node.main`
/// thread between event-loop pump bursts — no threads, locks, or
/// channels of its own (see `crate::conc`).
#[derive(Debug)]
pub struct ClientMux {
    node: NodeId,
    quota: u32,
    kind: WorkloadKind,
    mutation: Option<ClientMutation>,
    sessions: Vec<Session>,
    /// Sessions with a sendable message and nothing in flight, served
    /// round-robin for fairness across clients.
    ready: VecDeque<u32>,
    /// Open-loop arrival schedule: `(due_us, session)` min-heap.
    arrivals: BinaryHeap<Reverse<(u64, u32)>>,
    /// Issues still owed across all sessions (drives `done_issuing`).
    remaining_issues: u64,
    /// Sessions that completed their full quota.
    sessions_done: u64,
    completed_total: u64,
    /// Every ack RTT sample, log-bucketed.
    rtt: LogHistogram,
}

impl ClientMux {
    /// The mux for `node` of `n` under `spec`, seeded from the run seed.
    /// The session table (destinations, rng streams, arrival schedules)
    /// is a pure function of `(seed, node, n, spec)`.
    pub fn new(spec: &ClientSpec, node: NodeId, n: usize, seed: u64) -> Self {
        assert!(n >= 2, "client mode needs someone to talk to");
        let local = spec.sessions_on(node, n);
        assert!(
            local <= MAX_SESSIONS_PER_NODE,
            "validate() bounds the split"
        );
        let quota = spec.load.messages.min(MAX_SEQS_PER_CLIENT) as u32;
        let mut mux = ClientMux {
            node,
            quota,
            kind: spec.load.kind,
            mutation: spec.mutation,
            sessions: Vec::with_capacity(local as usize),
            ready: VecDeque::new(),
            arrivals: BinaryHeap::new(),
            remaining_issues: local * quota as u64,
            sessions_done: 0,
            completed_total: 0,
            rtt: LogHistogram::new(),
        };
        for idx in 0..local as u32 {
            let mut rng = seed
                ^ (node as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (idx as u64 + 1).wrapping_mul(0xE703_7ED1_A0B4_28DB);
            splitmix64(&mut rng); // decorrelate the xor-structured seed
            let mut d = (splitmix64(&mut rng) % (n as u64 - 1)) as usize;
            if d >= node {
                d += 1;
            }
            let mut s = Session {
                rng,
                next_at_us: 0,
                sent_at_us: 0,
                lat_sum: 0,
                dest: d as u32,
                arrived: 0,
                issued: 0,
                completed: 0,
                lat_n: 0,
                in_flight: false,
            };
            if quota > 0 {
                match spec.load.kind {
                    WorkloadKind::Open { rate_per_sec } => {
                        s.next_at_us = poisson_gap(&mut s.rng, rate_per_sec);
                        mux.arrivals.push(Reverse((s.next_at_us, idx)));
                    }
                    WorkloadKind::Closed { .. } => mux.ready.push_back(idx),
                }
            }
            mux.sessions.push(s);
        }
        mux
    }

    /// The next message to send at `now_us`, or `None` when every ready
    /// session is drained (more may become ready on acks or arrivals).
    /// The caller bounds calls per loop iteration with
    /// `TUNING.client_send_budget`.
    pub fn next(&mut self, now_us: u64) -> Option<Issue> {
        // Materialize due open-loop arrivals first.
        while let Some(&Reverse((due, idx))) = self.arrivals.peek() {
            if due > now_us {
                break;
            }
            self.arrivals.pop();
            let s = &mut self.sessions[idx as usize];
            s.arrived += 1;
            if s.arrived < self.quota {
                if let WorkloadKind::Open { rate_per_sec } = self.kind {
                    s.next_at_us = due + poisson_gap(&mut s.rng, rate_per_sec);
                    self.arrivals.push(Reverse((s.next_at_us, idx)));
                }
            }
            let s = &self.sessions[idx as usize];
            if !s.in_flight && s.issued == s.arrived - 1 {
                // First backlog entry: the session becomes sendable now.
                // (Deeper backlog re-arms through on_ack instead.)
                self.ready.push_back(idx);
            }
        }
        let idx = self.ready.pop_front()?;
        let s = &mut self.sessions[idx as usize];
        debug_assert!(!s.in_flight && s.issued < self.quota);
        let seq = match self.mutation {
            Some(ClientMutation::DuplicateStamp) if s.issued == 1 => 0,
            _ => s.issued,
        };
        s.issued += 1;
        s.in_flight = true;
        s.sent_at_us = now_us;
        self.remaining_issues -= 1;
        Some(Issue {
            dest: s.dest as NodeId,
            payload: primary_payload(now_us),
            ghost: client_ghost(self.node, idx, seq),
        })
    }

    /// Credits a delivered ack back to its session: closes the wire
    /// slot, records the round trip, re-arms the session if it still
    /// owes messages. Ignores acks that do not match a live slot (a
    /// duplicated ack would already be a red SP verdict; the mux stays
    /// total on it).
    pub fn on_ack(&mut self, parts: ClientParts, now_us: u64) {
        if parts.node != self.node || parts.session as usize >= self.sessions.len() {
            return;
        }
        let idx = parts.session;
        let s = &mut self.sessions[idx as usize];
        if !s.in_flight {
            return;
        }
        s.in_flight = false;
        s.completed += 1;
        let rtt = now_us.wrapping_sub(s.sent_at_us) & STAMP_MASK;
        s.lat_sum += rtt;
        s.lat_n += 1;
        self.rtt.record(rtt);
        self.completed_total += 1;
        if s.completed >= self.quota {
            self.sessions_done += 1;
        }
        let backlog = match self.kind {
            WorkloadKind::Closed { .. } => s.issued < self.quota,
            WorkloadKind::Open { .. } => s.issued < s.arrived,
        };
        if backlog {
            self.ready.push_back(idx);
        }
    }

    /// Whether every session has issued its full quota.
    pub fn done_issuing(&self) -> bool {
        self.remaining_issues == 0
    }

    /// Primaries issued so far across all sessions.
    pub fn issued(&self) -> u64 {
        self.sessions.len() as u64 * self.quota as u64 - self.remaining_issues
    }

    /// Sessions hosted by this node.
    pub fn hosted(&self) -> u64 {
        self.sessions.len() as u64
    }

    /// Sessions that have not yet completed their quota.
    pub fn active(&self) -> u64 {
        self.sessions.len() as u64 - self.sessions_done
    }

    /// Acked primaries across all sessions.
    pub fn completed(&self) -> u64 {
        self.completed_total
    }

    /// All ack round-trip samples, log-bucketed.
    pub fn rtt(&self) -> &LogHistogram {
        &self.rtt
    }

    /// The fairness spread: **one sample per session** — its mean RTT —
    /// so the histogram's quantiles read "how different is service
    /// across clients" (p99/p50 ≫ 1 means stragglers). Built on demand
    /// at report time; merged up the `ShardSummary` tree like any other
    /// histogram, so root-side work stays O(buckets), never O(clients).
    pub fn fairness(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for s in &self.sessions {
            if s.lat_n > 0 {
                h.record(s.lat_sum / s.lat_n as u64);
            }
        }
        h
    }
}

fn poisson_gap(rng: &mut u64, rate_per_sec: f64) -> u64 {
    // Exponential inter-arrival: -ln(U)/λ, U ∈ (0, 1], capped at 10 s
    // like the node-level generator.
    let u = unit_open(splitmix64(rng));
    (-u.ln() / rate_per_sec * 1e6).min(10e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_mp::decode_client_ghost;
    use std::collections::HashSet;

    fn spec(kind: WorkloadKind, messages: u64, clients: u64) -> ClientSpec {
        ClientSpec {
            clients,
            load: WorkloadSpec { kind, messages },
            mutation: None,
        }
    }

    fn closed(clients: u64, messages: u64) -> ClientSpec {
        spec(WorkloadKind::Closed { outstanding: 1 }, messages, clients)
    }

    /// Drives a mux alone: every issue is acked `rtt_us` later.
    fn drain(mux: &mut ClientMux, rtt_us: u64) -> Vec<Issue> {
        let mut out = Vec::new();
        let mut now = 0u64;
        for _ in 0..1_000_000 {
            let mut worked = false;
            while let Some(issue) = mux.next(now) {
                let p = decode_client_ghost(issue.ghost).unwrap();
                out.push(issue);
                mux.on_ack(p, now + rtt_us);
                worked = true;
            }
            if mux.done_issuing() {
                break;
            }
            if !worked {
                now += 100;
            }
        }
        out
    }

    #[test]
    fn sessions_split_evenly_and_sum_to_the_total() {
        let s = closed(10, 1);
        let per: Vec<u64> = (0..4).map(|p| s.sessions_on(p, 4)).collect();
        assert_eq!(per, vec![3, 3, 2, 2]);
        assert_eq!(per.iter().sum::<u64>(), 10);
        let big = closed(1_000_000, 1);
        assert_eq!(
            (0..25).map(|p| big.sessions_on(p, 25)).sum::<u64>(),
            1_000_000
        );
    }

    #[test]
    fn validate_enforces_the_packing_caps() {
        assert!(closed(100, 2).validate(4).is_ok());
        assert!(closed(100, 2).validate(1).is_err());
        assert!(closed(0, 2).validate(4).is_err());
        assert!(closed(u64::MAX / 2, 2).validate(2).is_err());
        assert!(closed(4, MAX_SEQS_PER_CLIENT + 1).validate(4).is_err());
    }

    #[test]
    fn closed_loop_issues_every_stamp_exactly_once_stop_and_wait() {
        let s = closed(9, 3);
        let mut mux = ClientMux::new(&s, 0, 4, 7);
        assert_eq!(mux.hosted(), 3); // 9 over 4 nodes: node 0 takes the extra
        let issues = drain(&mut mux, 250);
        assert_eq!(issues.len(), 3 * 3);
        let mut seen = HashSet::new();
        for i in &issues {
            assert!(seen.insert(i.ghost), "ghosts unique");
            let p = decode_client_ghost(i.ghost).unwrap();
            assert!(!p.ack);
            assert_eq!(p.node, 0);
            assert_ne!(i.dest, 0, "never self-addressed");
        }
        assert!(mux.done_issuing());
        assert_eq!(mux.completed(), 9);
        assert_eq!(mux.active(), 0);
        assert_eq!(mux.rtt().count(), 9);
    }

    #[test]
    fn sessions_are_sticky_and_fifo_serialized() {
        let s = closed(2, 5);
        let mut mux = ClientMux::new(&s, 0, 3, 11);
        let issues = drain(&mut mux, 10);
        // Per session: one sticky destination, strictly increasing seqs,
        // never two in flight (guaranteed by drain acking each at once —
        // asserted indirectly by seq order being exactly 0..quota).
        let mut per: std::collections::HashMap<u32, (u32, Vec<u32>)> = Default::default();
        for i in &issues {
            let p = decode_client_ghost(i.ghost).unwrap();
            let e = per
                .entry(p.session)
                .or_insert_with(|| (i.dest as u32, vec![]));
            assert_eq!(e.0, i.dest as u32, "sticky destination");
            e.1.push(p.seq);
        }
        for (_, (_, seqs)) in per {
            assert_eq!(seqs, (0..5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn open_loop_message_set_is_seed_deterministic() {
        let s = spec(WorkloadKind::Open { rate_per_sec: 1e4 }, 4, 40);
        let a = drain(&mut ClientMux::new(&s, 2, 5, 99), 50);
        let b = drain(&mut ClientMux::new(&s, 2, 5, 99), 50);
        let key = |v: &[Issue]| v.iter().map(|i| (i.dest, i.ghost)).collect::<Vec<_>>();
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.len() as u64, 4 * s.sessions_on(2, 5));
        // Ghost numbering is seed-independent by design, but the sticky
        // destinations are seeded: 8 sessions make a full collision
        // astronomically unlikely.
        let c = drain(&mut ClientMux::new(&s, 2, 5, 100), 50);
        let dests = |v: &[Issue]| v.iter().map(|i| i.dest).collect::<Vec<_>>();
        assert_ne!(
            dests(&a),
            dests(&c),
            "different seed, different destinations"
        );
    }

    #[test]
    fn open_loop_backlog_queues_behind_the_wire_slot() {
        // One client, fast arrivals, slow acks: arrivals outpace the
        // stop-and-wait slot, the backlog drains one ack at a time.
        let s = spec(WorkloadKind::Open { rate_per_sec: 1e6 }, 5, 1);
        let mut mux = ClientMux::new(&s, 0, 2, 3);
        let mut now = 1_000_000u64; // all 5 arrivals long due
        let first = mux.next(now).expect("backlog ready");
        assert!(mux.next(now).is_none(), "wire slot busy: stop-and-wait");
        let p = decode_client_ghost(first.ghost).unwrap();
        mux.on_ack(p, now + 10);
        now += 10;
        assert!(mux.next(now).is_some(), "ack re-arms the session");
        assert!(!mux.done_issuing());
    }

    #[test]
    fn duplicate_stamp_mutation_reuses_seq_zero() {
        let mut s = closed(4, 3); // 2 sessions on node 0 of 2
        s.mutation = Some(ClientMutation::DuplicateStamp);
        let mut mux = ClientMux::new(&s, 0, 2, 5);
        let issues = drain(&mut mux, 10);
        let seqs: Vec<Vec<u32>> = (0..2)
            .map(|session| {
                issues
                    .iter()
                    .filter_map(|i| {
                        let p = decode_client_ghost(i.ghost).unwrap();
                        (p.session == session).then_some(p.seq)
                    })
                    .collect()
            })
            .collect();
        for s in seqs {
            assert_eq!(s, vec![0, 0, 2], "second message reuses stamp 0");
        }
    }

    #[test]
    fn stale_or_foreign_acks_are_ignored() {
        let s = closed(1, 2);
        let mut mux = ClientMux::new(&s, 0, 2, 5);
        let i = mux.next(0).unwrap();
        let p = decode_client_ghost(i.ghost).unwrap();
        mux.on_ack(p, 10);
        mux.on_ack(p, 12); // duplicate ack: no slot in flight → ignored
        assert_eq!(mux.completed(), 1);
        let foreign = ClientParts {
            ack: true,
            node: 1,
            session: 0,
            seq: 0,
        };
        mux.on_ack(foreign, 14);
        assert_eq!(mux.completed(), 1);
    }

    #[test]
    fn fairness_histogram_is_one_sample_per_session() {
        let s = closed(5, 4);
        let mut mux = ClientMux::new(&s, 0, 2, 1);
        let hosted = mux.hosted();
        assert_eq!(hosted, 3); // 5 over 2 nodes: node 0 takes the extra
        drain(&mut mux, 100);
        let fair = mux.fairness();
        assert_eq!(fair.count(), hosted, "one sample per completed session");
        assert_eq!(mux.rtt().count(), 4 * hosted, "every ack sampled");
    }

    #[test]
    fn stamp_decode_skips_acks_and_garbage() {
        let g = client_ghost(3, 7, 2);
        let s = stamp_decode(crate::frame::ghost_to_wire(g)).unwrap();
        assert_eq!(s.seq, 2);
        assert_eq!(s.client, decode_client_ghost(g).unwrap().client_id());
        let ack = ssmfp_mp::ack_ghost_of(g);
        assert_eq!(stamp_decode(crate::frame::ghost_to_wire(ack)), None);
        assert_eq!(stamp_decode(GhostId::Invalid(9)), None);
    }
}
