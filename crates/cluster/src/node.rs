//! One SSMFP node as an OS process (or thread): the forwarder from
//! `crates/mp` driven by real sockets instead of the simulated scheduler.
//!
//! ## Connection model
//!
//! Every *directed* edge gets its own simplex connection: the sender dials
//! its neighbour's listener, writes a `Hello` identifying itself, then
//! streams frames. The acceptor side only reads. This keeps reconnection
//! trivially safe — a lost connection loses in-flight frames (wire drops),
//! which the protocol's retransmission already tolerates, and the dialer
//! re-establishes with exponential backoff plus jitter.
//!
//! ## One thread per node
//!
//! Since PR 8 a node *is* one thread: [`node_main`] drives the
//! [`crate::evloop::NodeLoop`], which multiplexes the control pipe, the
//! listener and every data connection through one `poll(2)` set, and runs
//! the protocol engine between I/O bursts. There is no inbound queue, no
//! writer threads, no control-reader thread — frames and control lines
//! surface in plain vectors the loop drains, and outbound frames append
//! to per-connection coalescing buffers in the same stack frame that
//! produced them. (The PR-5 blocking plane — per-neighbour writers,
//! accept + reader threads — was retired after PR 7 cross-checked the SP
//! verdicts of both planes.)
//!
//! The protocol loop itself is *event-driven*: `on_timeout` (which moves
//! the R1/R2/R6 pipeline and retransmission) fires whenever the loop did
//! work — inbound frames, workload, deliveries — and at worst every tick
//! when idle. Per-hop latency therefore tracks socket readiness, not the
//! tick. Correctness is schedule-independent (the simulated suite drives
//! the same forwarder under an adversarial scheduler), so firing timeouts
//! faster is safe by construction.
//!
//! ## Control protocol
//!
//! Line-based, over the supervising shard's pipe:
//! * node → shard: `ready <addr>`
//! * shard → node: `peers <addr_0> … <addr_{n-1}>`, then `start`
//! * node → shard: `status <done_issuing> <generated> <delivered> <held>`
//! * shard → node: `stop`
//! * node → shard: a multi-line `report … end` block, then exit.

use crate::chaos::{ChaosSpec, InboundChaos};
use crate::clients::{ClientMux, ClientSpec};
use crate::conc::COMPONENT;
use crate::evloop::{CtrlPipe, NetListener, NodeLoop};
use crate::frame::{frame_to_msg, msg_to_frame, msg_to_frame_client};
use crate::telemetry::{LogHistogram, NodeCounters};
use crate::tuning::TUNING;
use crate::workload::{ack_payload, is_ack, stamp_of, WorkloadGen, WorkloadSpec, STAMP_MASK};
use ssmfp_core::conc::register_thread;
use ssmfp_core::wire::WireFrame;
use ssmfp_mp::{ack_ghost_of, decode_client_ghost, MpForwarder, MpGhost, MpNode, Outbox, WireMsg};
use ssmfp_topology::{BfsTree, Graph, NodeId};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Where a node listens for inbound connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenSpec {
    /// Unix-domain socket `<dir>/node<k>.sock`.
    Uds {
        /// Directory holding the per-node sockets.
        dir: PathBuf,
    },
    /// TCP on `127.0.0.1`, OS-assigned port.
    Tcp,
}

/// Everything one node needs to run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub node: NodeId,
    /// Cluster size.
    pub n: usize,
    /// The full (undirected) edge list of the topology.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Run seed (drives nonces, workload, chaos, backoff jitter).
    pub seed: u64,
    /// Listener flavour.
    pub listen: ListenSpec,
    /// Workload shape and quota.
    pub workload: WorkloadSpec,
    /// Link chaos.
    pub chaos: ChaosSpec,
    /// Client mode: host this node's share of the cluster-wide logical
    /// clients ([`crate::clients::ClientMux`]) instead of the node-level
    /// workload generator, stamping every send with its `(client, seq)`
    /// identity for the per-client audit.
    pub clients: Option<ClientSpec>,
}

/// One node's final report, as parsed by the orchestrator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: NodeId,
    /// Ghosts this node generated, with their destinations.
    pub generated: Vec<(MpGhost, NodeId)>,
    /// Ghosts delivered here.
    pub delivered: Vec<MpGhost>,
    /// Ghosts still held at shutdown.
    pub held: Vec<MpGhost>,
    /// One-way latency of primaries delivered here (µs).
    pub latency: LogHistogram,
    /// Frames per coalesced `write()`.
    pub batch: LogHistogram,
    /// Transport/chaos counters.
    pub counters: NodeCounters,
    /// Client mode: every ack round trip, log-bucketed (empty otherwise).
    pub client_rtt: LogHistogram,
    /// Client mode: fairness spread — one sample per hosted session, its
    /// mean RTT (empty otherwise).
    pub client_fair: LogHistogram,
    /// Client mode: sessions hosted here.
    pub clients: u64,
    /// Client mode: acked primaries across hosted sessions.
    pub clients_completed: u64,
}

/// Wall clock in µs, truncated to the payload stamp width. Latency is the
/// wrapping difference, so absolute truncation is harmless.
fn now_stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64
        & STAMP_MASK
}

fn routing_table(graph: &Graph, p: NodeId) -> Vec<NodeId> {
    let n = graph.n();
    (0..n)
        .map(|d| {
            if p == d {
                p
            } else {
                BfsTree::new(graph, d)
                    .parent(p)
                    .expect("connected topology")
            }
        })
        .collect()
}

/// Runs one node to completion over the given control pipe. Returns the
/// report it also wrote to the supervisor.
pub fn node_main(cfg: &NodeConfig, ctrl: CtrlPipe) -> io::Result<NodeReport> {
    // In proc mode this is the process main thread; in inproc mode the
    // shard's spawn already registered it (re-registration is
    // idempotent). Either way the declared role holds from here on.
    register_thread(COMPONENT, "node.main");
    let graph = Graph::from_edges(cfg.n, &cfg.edges).map_err(io::Error::other)?;
    let p = cfg.node;
    let neighbors: Vec<NodeId> = graph.neighbors(p).to_vec();
    let mut fwd = MpForwarder::new_static(
        p,
        cfg.n,
        graph.max_degree() as u8,
        neighbors.clone(),
        routing_table(&graph, p),
        cfg.seed,
    );
    let mut gen = WorkloadGen::new(cfg.workload, p, cfg.n, cfg.seed);
    let mut mux: Option<ClientMux> = cfg
        .clients
        .as_ref()
        .map(|s| ClientMux::new(s, p, cfg.n, cfg.seed));
    // Client-mode frames carry the `(client_id, client_seq)` wire stamp;
    // picking the encoder once keeps the hot path branch-free.
    let encode: fn(&WireMsg) -> WireFrame = if mux.is_some() {
        msg_to_frame_client
    } else {
        msg_to_frame
    };
    let mut chaos: HashMap<NodeId, InboundChaos> = neighbors
        .iter()
        .map(|&q| (q, InboundChaos::new(&cfg.chaos, q, p)))
        .collect();
    let mut latency = LogHistogram::new();
    let mut counters = NodeCounters::default();
    let mut gen_list: Vec<(MpGhost, NodeId)> = Vec::new();

    // --- sockets up, report ready ---
    let (listener, my_addr) = NetListener::bind(&cfg.listen, p)?;
    let io_seed = cfg.seed ^ ((p as u64) << 32).wrapping_mul(0xDEAD_BEEF_1234_5677);
    let mut nl = NodeLoop::new(p, listener, ctrl, io_seed);
    nl.write_ctrl(&format!("ready {my_addr}\n"))?;

    // --- control state machine: peers, then start (or an early stop) ---
    // A single pump can surface several control lines at once (the shard
    // may write `peers` and `start` back-to-back), so parse every line as
    // it arrives instead of blocking per expected token.
    let mut addrs: Option<Vec<String>> = None;
    let mut started = false;
    let mut stopping = false;
    let handle_line =
        |line: &str, addrs: &mut Option<Vec<String>>, started: &mut bool, stopping: &mut bool| {
            if let Some(rest) = line.strip_prefix("peers ") {
                *addrs = Some(rest.split_whitespace().map(str::to_string).collect());
            } else if line.starts_with("start") {
                *started = true;
            } else if line.starts_with("stop") {
                *stopping = true;
            }
        };
    let mut peers_wired = false;
    while !(started || stopping) {
        if nl.ctrl_eof() {
            return Err(io::Error::other("control pipe closed"));
        }
        nl.pump(TUNING.status_every());
        for line in std::mem::take(&mut nl.ctrl_lines) {
            handle_line(&line, &mut addrs, &mut started, &mut stopping);
        }
        if let (Some(a), false) = (&addrs, peers_wired) {
            if a.len() != cfg.n {
                return Err(io::Error::other("peers line has wrong arity"));
            }
            let peers: Vec<(NodeId, String)> =
                neighbors.iter().map(|&q| (q, a[q].clone())).collect();
            nl.connect_peers(peers);
            peers_wired = true;
        }
    }
    if started && !peers_wired {
        return Err(io::Error::other("start before peers"));
    }

    // --- main protocol loop: engine steps between I/O bursts ---
    let mut out = Outbox::new();
    let mut seen_deliveries = 0usize;
    let mut last_tick = Instant::now();
    let mut last_status = Instant::now();
    while !stopping {
        // Sleep until readiness or the nearest engine deadline — the
        // protocol tick or the status push, whichever is closer.
        let now = Instant::now();
        let tick_in = TUNING.tick().saturating_sub(now.duration_since(last_tick));
        let status_in = TUNING
            .status_every()
            .saturating_sub(now.duration_since(last_status));
        nl.pump(tick_in.min(status_in));

        // Control.
        if nl.ctrl_eof() {
            stopping = true;
        }
        for line in std::mem::take(&mut nl.ctrl_lines) {
            handle_line(&line, &mut addrs, &mut started, &mut stopping);
        }

        // Did this iteration move the protocol? Drives the event-driven
        // timeout below.
        let mut worked = false;

        // Inbound, through the chaos shim (data-plane frames only:
        // heartbeats keep connections warm but carry no protocol).
        for (from, frame) in std::mem::take(&mut nl.inbound) {
            if frame.is_data_plane() {
                counters.frames_received += 1;
                if let Some(c) = chaos.get_mut(&from) {
                    c.push(frame);
                }
            }
            worked = true;
        }
        for &q in &neighbors {
            let c = chaos.get_mut(&q).expect("neighbour chaos");
            while let Some(frame) = c.poll() {
                if let Some(msg) = frame_to_msg(&frame) {
                    fwd.on_message(q, msg, &mut out);
                    worked = true;
                }
            }
        }

        // Workload: the client mux replaces the node-level generator in
        // client mode. The budget bounds time away from the socket pump;
        // the mux's round-robin ready queue keeps the cut fair.
        if !stopping {
            let now = now_stamp();
            if let Some(mux) = mux.as_mut() {
                for _ in 0..TUNING.client_send_budget {
                    let Some(issue) = mux.next(now) else { break };
                    fwd.enqueue_send(issue.dest, issue.payload, issue.ghost);
                    gen_list.push((issue.ghost, issue.dest));
                    worked = true;
                }
            } else {
                while let Some(issue) = gen.poll(now) {
                    fwd.enqueue_send(issue.dest, issue.payload, issue.ghost);
                    gen_list.push((issue.ghost, issue.dest));
                    worked = true;
                }
            }
        }

        // Protocol timeouts: event-driven, tick-bounded. `on_timeout`
        // advances the R1/R2/R6 pipeline and retransmission, so firing it
        // after every productive iteration makes per-hop latency track
        // socket readiness instead of the tick; the idle path still fires
        // at tick granularity so retransmission never starves. The
        // adversarial-scheduler suite proves correctness at any firing
        // schedule.
        if worked || last_tick.elapsed() >= TUNING.tick() {
            last_tick = Instant::now();
            fwd.on_timeout(&mut out);
        }

        // New deliveries: record latency, issue acks, close windows.
        while seen_deliveries < fwd.delivered_msgs.len() {
            let (ghost, payload) = fwd.delivered_msgs[seen_deliveries];
            seen_deliveries += 1;
            if let Some(mux) = mux.as_mut() {
                // Client mode: the ghost *is* the identity. Acks credit
                // their session; primaries answer with the identity-
                // preserving ack ghost (primary | ack bit) — a real,
                // audited SSMFP message, no per-client state here.
                let now = now_stamp();
                match decode_client_ghost(ghost) {
                    Some(parts) if parts.ack => mux.on_ack(parts, now),
                    Some(parts) => {
                        latency.record(now.wrapping_sub(stamp_of(payload)) & STAMP_MASK);
                        let src = parts.node;
                        if src < cfg.n && src != p {
                            let ack_ghost = ack_ghost_of(ghost);
                            fwd.enqueue_send(src, ack_payload(now), ack_ghost);
                            gen_list.push((ack_ghost, src));
                        }
                    }
                    None => {} // initial-configuration garbage: audited, not answered
                }
            } else if is_ack(payload) {
                gen.on_ack();
            } else {
                let now = now_stamp();
                latency.record(now.wrapping_sub(stamp_of(payload)) & STAMP_MASK);
                let src = crate::workload::ghost_src(ghost);
                if src < cfg.n && src != p {
                    let ack_ghost = gen.next_ack_ghost();
                    fwd.enqueue_send(src, ack_payload(now), ack_ghost);
                    gen_list.push((ack_ghost, src));
                }
            }
        }

        // Ship the outbox straight into the per-edge coalescing buffers;
        // the next pump's leading flush writes them (same stack, no
        // queue, no wake).
        for (to, msg) in out.drain() {
            counters.frames_sent += 1;
            nl.send(to, &encode(&msg));
        }

        // Status push.
        if last_status.elapsed() >= TUNING.status_every() {
            last_status = Instant::now();
            let done = mux
                .as_ref()
                .map_or_else(|| gen.done_issuing(), |m| m.done_issuing());
            nl.write_ctrl(&format!(
                "status {} {} {} {}\n",
                done as u8,
                fwd.generated.len(),
                fwd.delivered.len(),
                fwd.held_ghosts().len()
            ))?;
        }
    }

    // --- shutdown: flush, aggregate counters, emit the report ---
    nl.shutdown_flush();
    for c in chaos.values() {
        let (d, u, r) = c.fault_counts();
        counters.chaos_dropped += d;
        counters.chaos_duplicated += u;
        counters.chaos_reordered += r;
        counters.partition_dropped += c.partition_dropped();
    }
    let io_stats = nl.take_stats();
    counters.heartbeats_sent = io_stats.heartbeats;
    counters.reconnects = io_stats.reconnects;
    counters.write_syscalls = io_stats.write_syscalls;
    counters.read_syscalls = io_stats.read_syscalls;
    counters.conn_frames_dropped = io_stats.conn_frames_dropped;

    let report = NodeReport {
        node: p,
        generated: gen_list,
        delivered: fwd.delivered.clone(),
        held: fwd.held_ghosts(),
        latency,
        batch: io_stats.batch,
        counters,
        client_rtt: mux.as_ref().map(|m| m.rtt().clone()).unwrap_or_default(),
        client_fair: mux.as_ref().map(ClientMux::fairness).unwrap_or_default(),
        clients: mux.as_ref().map_or(0, ClientMux::hosted),
        clients_completed: mux.as_ref().map_or(0, ClientMux::completed),
    };
    {
        let w = nl.ctrl_writer();
        write_report(w, &report)?;
        w.flush()?;
    }
    if let ListenSpec::Uds { dir } = &cfg.listen {
        let _ = std::fs::remove_file(dir.join(format!("node{p}.sock")));
    }
    Ok(report)
}

fn ghost_key(g: MpGhost) -> String {
    match g {
        MpGhost::Valid(k) => format!("v{k}"),
        MpGhost::Invalid(k) => format!("i{k}"),
    }
}

fn parse_ghost(s: &str) -> Option<MpGhost> {
    let (kind, num) = s.split_at(1);
    let k: u64 = num.parse().ok()?;
    match kind {
        "v" => Some(MpGhost::Valid(k)),
        "i" => Some(MpGhost::Invalid(k)),
        _ => None,
    }
}

fn write_histogram<W: Write>(w: &mut W, tag: &str, h: &LogHistogram) -> io::Result<()> {
    write!(w, "{tag} {} {} {}", h.count(), h.max(), h.sum())?;
    for (i, c) in h.nonzero_buckets() {
        write!(w, " {i}:{c}")?;
    }
    writeln!(w)
}

fn parse_histogram(it: &mut std::str::SplitWhitespace<'_>) -> Option<LogHistogram> {
    let _count: u64 = it.next()?.parse().ok()?;
    let max: u64 = it.next()?.parse().ok()?;
    let sum: u64 = it.next()?.parse().ok()?;
    let mut pairs = Vec::new();
    for tok in it {
        let (i, c) = tok.split_once(':')?;
        pairs.push((i.parse().ok()?, c.parse().ok()?));
    }
    Some(LogHistogram::from_parts(&pairs, max, sum))
}

/// Writes the line-based `report … end` block.
pub fn write_report<W: Write>(w: &mut W, r: &NodeReport) -> io::Result<()> {
    writeln!(w, "report {}", r.node)?;
    write!(w, "gen")?;
    for &(g, d) in &r.generated {
        write!(w, " {}:{d}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(w, "del")?;
    for &g in &r.delivered {
        write!(w, " {}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(w, "held")?;
    for &g in &r.held {
        write!(w, " {}", ghost_key(g))?;
    }
    writeln!(w)?;
    write_histogram(w, "lat", &r.latency)?;
    write_histogram(w, "bat", &r.batch)?;
    write_histogram(w, "crtt", &r.client_rtt)?;
    write_histogram(w, "cfair", &r.client_fair)?;
    writeln!(w, "cli {} {}", r.clients, r.clients_completed)?;
    let c = &r.counters;
    writeln!(
        w,
        "ctr {} {} {} {} {} {} {} {} {} {} {}",
        c.frames_sent,
        c.frames_received,
        c.heartbeats_sent,
        c.reconnects,
        c.chaos_dropped,
        c.chaos_duplicated,
        c.chaos_reordered,
        c.partition_dropped,
        c.write_syscalls,
        c.read_syscalls,
        c.conn_frames_dropped
    )?;
    writeln!(w, "end")
}

/// Parses the block written by [`write_report`]; the `report <node>` line
/// has already been consumed by the caller (who saw it arrive).
pub fn parse_report_body(
    node: NodeId,
    lines: &mut impl Iterator<Item = String>,
) -> Option<NodeReport> {
    let mut r = NodeReport {
        node,
        ..NodeReport::default()
    };
    for line in lines {
        let mut it = line.split_whitespace();
        match it.next()? {
            "gen" => {
                for tok in it {
                    let (g, d) = tok.split_once(':')?;
                    r.generated.push((parse_ghost(g)?, d.parse().ok()?));
                }
            }
            "del" => {
                for tok in it {
                    r.delivered.push(parse_ghost(tok)?);
                }
            }
            "held" => {
                for tok in it {
                    r.held.push(parse_ghost(tok)?);
                }
            }
            "lat" => r.latency = parse_histogram(&mut it)?,
            "bat" => r.batch = parse_histogram(&mut it)?,
            "crtt" => r.client_rtt = parse_histogram(&mut it)?,
            "cfair" => r.client_fair = parse_histogram(&mut it)?,
            "cli" => {
                r.clients = it.next()?.parse().ok()?;
                r.clients_completed = it.next()?.parse().ok()?;
            }
            "ctr" => {
                let mut next = || it.next().and_then(|t| t.parse::<u64>().ok());
                r.counters = NodeCounters {
                    frames_sent: next()?,
                    frames_received: next()?,
                    heartbeats_sent: next()?,
                    reconnects: next()?,
                    chaos_dropped: next()?,
                    chaos_duplicated: next()?,
                    chaos_reordered: next()?,
                    partition_dropped: next()?,
                    write_syscalls: next()?,
                    read_syscalls: next()?,
                    conn_frames_dropped: next()?,
                };
            }
            "end" => return Some(r),
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_the_control_pipe() {
        let mut lat = LogHistogram::new();
        for v in [10u64, 500, 70_000] {
            lat.record(v);
        }
        let mut bat = LogHistogram::new();
        for v in [1u64, 1, 4, 17] {
            bat.record(v);
        }
        let mut crtt = LogHistogram::new();
        let mut cfair = LogHistogram::new();
        for v in [250u64, 300, 90_000] {
            crtt.record(v);
        }
        cfair.record(275);
        cfair.record(90_000);
        let r = NodeReport {
            node: 3,
            generated: vec![(MpGhost::Valid(7), 1), (MpGhost::Invalid(9), 0)],
            delivered: vec![MpGhost::Valid(42)],
            held: vec![],
            latency: lat,
            batch: bat,
            counters: NodeCounters {
                frames_sent: 1,
                frames_received: 2,
                heartbeats_sent: 3,
                reconnects: 4,
                chaos_dropped: 5,
                chaos_duplicated: 6,
                chaos_reordered: 7,
                partition_dropped: 8,
                write_syscalls: 11,
                read_syscalls: 12,
                conn_frames_dropped: 13,
            },
            client_rtt: crtt,
            client_fair: cfair,
            clients: 2,
            clients_completed: 3,
        };
        let mut buf = Vec::new();
        write_report(&mut buf, &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines().map(str::to_string);
        let head = lines.next().unwrap();
        assert_eq!(head, "report 3");
        let back = parse_report_body(3, &mut lines).unwrap();
        assert_eq!(back.node, r.node);
        assert_eq!(back.generated, r.generated);
        assert_eq!(back.delivered, r.delivered);
        assert_eq!(back.held, r.held);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.latency.count(), r.latency.count());
        assert_eq!(back.latency.quantile(0.5), r.latency.quantile(0.5));
        assert_eq!(back.latency.max(), r.latency.max());
        assert_eq!(back.batch.count(), r.batch.count());
        assert_eq!(back.batch.mean(), r.batch.mean());
        assert_eq!(back.client_rtt.count(), r.client_rtt.count());
        assert_eq!(back.client_rtt.max(), r.client_rtt.max());
        assert_eq!(back.client_fair.count(), r.client_fair.count());
        assert_eq!(back.clients, 2);
        assert_eq!(back.clients_completed, 3);
    }
}
