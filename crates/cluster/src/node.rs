//! One SSMFP node as an OS process (or thread): the forwarder from
//! `crates/mp` driven by real sockets instead of the simulated scheduler.
//!
//! ## Connection model
//!
//! Every *directed* edge gets its own simplex connection: the sender dials
//! its neighbour's listener, writes a `Hello` identifying itself, then
//! streams frames. The acceptor side only reads. This keeps reconnection
//! trivially safe — a lost connection loses in-flight frames (wire drops),
//! which the protocol's retransmission already tolerates, and the dialer
//! re-establishes with exponential backoff plus jitter.
//!
//! ## Supervision
//!
//! Per-neighbour writer threads own the outbound connections: bounded
//! frame queues (backpressure), heartbeats on idle links, seeded backoff
//! on reconnect. An accept thread spawns one reader per inbound
//! connection; readers park garbage/truncated input by dropping the
//! connection (the codec is total, so malformed bytes can never panic).
//!
//! ## Control protocol
//!
//! Line-based, over the orchestrator's pipe:
//! * node → orch: `ready <addr>`
//! * orch → node: `peers <addr_0> … <addr_{n-1}>`, then `start`
//! * node → orch: `status <done_issuing> <generated> <delivered> <held>`
//! * orch → node: `stop`
//! * node → orch: a multi-line `report … end` block, then exit.

use crate::chaos::{ChaosSpec, InboundChaos};
use crate::conc::COMPONENT;
use crate::frame::{frame_to_msg, msg_to_frame};
use crate::telemetry::{LogHistogram, NodeCounters};
use crate::tuning::TUNING;
use crate::workload::{ack_payload, is_ack, stamp_of, WorkloadGen, WorkloadSpec, STAMP_MASK};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::conc::{
    register_thread, spawn_registered, tracked_channel, SendOutcome, TrackedMutex, TrackedSender,
};
use ssmfp_core::wire::{encode_frame, FrameReader, WireFrame};
use ssmfp_mp::{MpForwarder, MpGhost, MpNode, Outbox};
use ssmfp_topology::{BfsTree, Graph, NodeId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Where a node listens for inbound connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenSpec {
    /// Unix-domain socket `<dir>/node<k>.sock`.
    Uds {
        /// Directory holding the per-node sockets.
        dir: PathBuf,
    },
    /// TCP on `127.0.0.1`, OS-assigned port.
    Tcp,
}

/// Everything one node needs to run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub node: NodeId,
    /// Cluster size.
    pub n: usize,
    /// The full (undirected) edge list of the topology.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Run seed (drives nonces, workload, chaos, backoff jitter).
    pub seed: u64,
    /// Listener flavour.
    pub listen: ListenSpec,
    /// Workload shape and quota.
    pub workload: WorkloadSpec,
    /// Link chaos.
    pub chaos: ChaosSpec,
}

/// One node's final report, as parsed by the orchestrator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: NodeId,
    /// Ghosts this node generated, with their destinations.
    pub generated: Vec<(MpGhost, NodeId)>,
    /// Ghosts delivered here.
    pub delivered: Vec<MpGhost>,
    /// Ghosts still held at shutdown.
    pub held: Vec<MpGhost>,
    /// One-way latency of primaries delivered here (µs).
    pub latency: LogHistogram,
    /// Transport/chaos counters.
    pub counters: NodeCounters,
}

enum NetListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl NetListener {
    fn bind(spec: &ListenSpec, node: NodeId) -> io::Result<(Self, String)> {
        match spec {
            ListenSpec::Uds { dir } => {
                let path = dir.join(format!("node{node}.sock"));
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Ok((NetListener::Unix(l), format!("uds:{}", path.display())))
            }
            ListenSpec::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                l.set_nonblocking(true)?;
                let addr = l.local_addr()?;
                Ok((NetListener::Tcp(l), format!("tcp:{addr}")))
            }
        }
    }

    fn accept(&self) -> io::Result<Box<dyn Read + Send>> {
        match self {
            NetListener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Box::new(s))
            }
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                let _ = s.set_nodelay(true);
                Ok(Box::new(s))
            }
        }
    }
}

fn dial(addr: &str) -> io::Result<Box<dyn Write + Send>> {
    if let Some(path) = addr.strip_prefix("uds:") {
        Ok(Box::new(UnixStream::connect(path)?))
    } else if let Some(sock) = addr.strip_prefix("tcp:") {
        let s = TcpStream::connect(sock)?;
        let _ = s.set_nodelay(true);
        Ok(Box::new(s))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad peer address {addr:?}"),
        ))
    }
}

/// Per-writer supervision counters, behind the declared `writer.stats`
/// lock (see `crate::conc`). Never held across a blocking operation.
#[derive(Debug, Default)]
struct WriterStats {
    heartbeats: u64,
    reconnects: u64,
}

/// Reads frames off one inbound connection until EOF or garbage.
fn reader_loop(mut stream: Box<dyn Read + Send>, inbound: TrackedSender<(NodeId, WireFrame)>) {
    let mut fr = FrameReader::new();
    let mut from: Option<NodeId> = None;
    let mut buf = [0u8; 4096];
    loop {
        let k = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(k) => k,
        };
        fr.extend(&buf[..k]);
        loop {
            match fr.next_frame() {
                Ok(Some(WireFrame::Hello { node, .. })) => from = Some(node as NodeId),
                Ok(Some(frame)) => match from {
                    // Frames before the Hello: unidentified connection,
                    // drop it (the dialer will reconnect and re-Hello).
                    None => return,
                    Some(p) => {
                        // A Shed outcome is a counted wire drop; the
                        // reader never blocks here (that non-edge is what
                        // keeps the cross-node wait graph acyclic).
                        if inbound.send((p, frame)) == SendOutcome::Disconnected {
                            return;
                        }
                    }
                },
                Ok(None) => break,
                Err(_) => return, // garbage on the wire: kill the connection
            }
        }
    }
}

fn accept_loop(
    listener: NetListener,
    inbound: TrackedSender<(NodeId, WireFrame)>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                let tx = inbound.clone();
                spawn_registered(COMPONENT, "net.reader", move || reader_loop(stream, tx));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(TUNING.accept_poll());
            }
            Err(_) => return,
        }
    }
}

/// Owns one outbound simplex connection: dials with backoff, Hellos,
/// streams frames, heartbeats when idle.
fn writer_loop(
    my_id: NodeId,
    addr: String,
    rx: Receiver<WireFrame>,
    stats: Arc<TrackedMutex<WriterStats>>,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut incarnation: u32 = 0;
    let mut buf = Vec::with_capacity(64);
    let mut clock: u64 = 0;
    // A frame that failed mid-write is retried on the next connection —
    // losing it entirely would be a *wire* drop, which is fine, but
    // retrying is cheap and keeps chaos accounting to the chaos shim.
    let mut carry: Option<WireFrame> = None;
    'connect: loop {
        let mut attempt: u32 = 0;
        let mut stream = loop {
            match dial(&addr) {
                Ok(s) => break s,
                Err(_) => {
                    attempt += 1;
                    if attempt > TUNING.max_dial_attempts {
                        return;
                    }
                    let backoff =
                        (TUNING.backoff_base_ms << attempt.min(6)).min(TUNING.backoff_cap_ms);
                    let jitter = rng.gen_range(0..=backoff / 2);
                    thread::sleep(Duration::from_millis(backoff + jitter));
                }
            }
        };
        if incarnation > 0 {
            stats.lock().reconnects += 1;
        }
        incarnation += 1;
        buf.clear();
        encode_frame(
            &WireFrame::Hello {
                node: my_id as u16,
                incarnation,
            },
            &mut buf,
        );
        if stream.write_all(&buf).is_err() {
            continue 'connect;
        }
        loop {
            let frame = match carry.take() {
                Some(f) => f,
                None => match rx.recv_timeout(TUNING.heartbeat()) {
                    Ok(f) => f,
                    Err(RecvTimeoutError::Timeout) => {
                        clock += 1;
                        let hb = WireFrame::Heartbeat {
                            node: my_id as u16,
                            clock,
                        };
                        buf.clear();
                        encode_frame(&hb, &mut buf);
                        if stream.write_all(&buf).is_err() {
                            continue 'connect;
                        }
                        stats.lock().heartbeats += 1;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                },
            };
            buf.clear();
            encode_frame(&frame, &mut buf);
            if stream.write_all(&buf).is_err() {
                carry = Some(frame);
                continue 'connect;
            }
        }
    }
}

/// Wall clock in µs, truncated to the payload stamp width. Latency is the
/// wrapping difference, so absolute truncation is harmless.
fn now_stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64
        & STAMP_MASK
}

fn routing_table(graph: &Graph, p: NodeId) -> Vec<NodeId> {
    let n = graph.n();
    (0..n)
        .map(|d| {
            if p == d {
                p
            } else {
                BfsTree::new(graph, d)
                    .parent(p)
                    .expect("connected topology")
            }
        })
        .collect()
}

/// Runs one node to completion over the given control pipe. Returns the
/// report it also wrote to the orchestrator.
pub fn node_main<R, W>(cfg: &NodeConfig, ctrl_r: R, mut ctrl_w: W) -> io::Result<NodeReport>
where
    R: Read + Send + 'static,
    W: Write,
{
    // In proc mode this is the process main thread; in inproc mode the
    // orchestrator's spawn already registered it (re-registration is
    // idempotent). Either way the declared role holds from here on.
    register_thread(COMPONENT, "node.main");
    let model = crate::conc::model(&TUNING);
    let graph = Graph::from_edges(cfg.n, &cfg.edges).map_err(io::Error::other)?;
    let p = cfg.node;
    let neighbors: Vec<NodeId> = graph.neighbors(p).to_vec();
    let mut fwd = MpForwarder::new_static(
        p,
        cfg.n,
        graph.max_degree() as u8,
        neighbors.clone(),
        routing_table(&graph, p),
        cfg.seed,
    );
    let mut gen = WorkloadGen::new(cfg.workload, p, cfg.n, cfg.seed);
    let mut chaos: HashMap<NodeId, InboundChaos> = neighbors
        .iter()
        .map(|&q| (q, InboundChaos::new(&cfg.chaos, q, p)))
        .collect();
    let mut latency = LogHistogram::new();
    let mut counters = NodeCounters::default();
    let mut gen_list: Vec<(MpGhost, NodeId)> = Vec::new();

    // --- sockets up, report ready ---
    let (listener, my_addr) = NetListener::bind(&cfg.listen, p)?;
    let stop_flag = Arc::new(AtomicBool::new(false));
    let (inbound_tx, inbound_rx, inbound_stats) =
        tracked_channel::<(NodeId, WireFrame)>(COMPONENT, model.channel_decl("node.inbound"));
    {
        let tx = inbound_tx.clone();
        let stop = stop_flag.clone();
        spawn_registered(COMPONENT, "node.accept", move || {
            accept_loop(listener, tx, stop)
        });
    }
    writeln!(ctrl_w, "ready {my_addr}")?;
    ctrl_w.flush()?;

    // --- control reader ---
    let (ctrl_tx, ctrl_rx, ctrl_stats) =
        tracked_channel::<String>(COMPONENT, model.channel_decl("node.ctrl"));
    spawn_registered(COMPONENT, "ctrl.reader", move || {
        for line in BufReader::new(ctrl_r).lines() {
            let Ok(line) = line else { return };
            if ctrl_tx.send(line) == SendOutcome::Disconnected {
                return;
            }
        }
    });

    let expect = |rx: &Receiver<String>, what: &str| -> io::Result<String> {
        loop {
            let line = rx
                .recv()
                .map_err(|_| io::Error::other("control pipe closed"))?;
            if line.starts_with(what) {
                return Ok(line);
            }
        }
    };

    // --- peers, writers, start ---
    let peers_line = expect(&ctrl_rx, "peers ")?;
    let addrs: Vec<&str> = peers_line["peers ".len()..].split_whitespace().collect();
    if addrs.len() != cfg.n {
        return Err(io::Error::other("peers line has wrong arity"));
    }
    let writer_stats = Arc::new(TrackedMutex::new(
        model.lock_decl("writer.stats"),
        WriterStats::default(),
    ));
    let mut senders: HashMap<NodeId, TrackedSender<WireFrame>> = HashMap::new();
    let mut sendq_stats = Vec::with_capacity(neighbors.len());
    for &q in &neighbors {
        let (tx, rx, stats) =
            tracked_channel::<WireFrame>(COMPONENT, model.channel_decl("node.sendq"));
        senders.insert(q, tx);
        sendq_stats.push(stats);
        let addr = addrs[q].to_string();
        let ws = writer_stats.clone();
        let seed = cfg.seed ^ ((p as u64) << 32 | q as u64).wrapping_mul(0xDEAD_BEEF_1234_5677);
        spawn_registered(COMPONENT, "net.writer", move || {
            writer_loop(p, addr, rx, ws, seed)
        });
    }
    expect(&ctrl_rx, "start")?;

    // --- main protocol loop ---
    let mut out = Outbox::new();
    let mut seen_deliveries = 0usize;
    let mut last_tick = Instant::now();
    let mut last_status = Instant::now();
    let mut stopping = false;
    while !stopping {
        // Control.
        while let Ok(line) = ctrl_rx.try_recv() {
            if line.starts_with("stop") {
                stopping = true;
            }
        }

        // Inbound: block briefly so the loop idles at TICK granularity.
        match inbound_rx.recv_timeout(TUNING.tick()) {
            Ok((from, frame)) => {
                let mut push = |from: NodeId, frame: WireFrame| {
                    if frame.is_data_plane() {
                        counters.frames_received += 1;
                        if let Some(c) = chaos.get_mut(&from) {
                            c.push(frame);
                        }
                    }
                };
                push(from, frame);
                // Drain whatever else arrived in the same tick.
                while let Ok((from, frame)) = inbound_rx.try_recv() {
                    push(from, frame);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Deliver through the chaos shim.
        for &q in &neighbors {
            let c = chaos.get_mut(&q).expect("neighbour chaos");
            while let Some(frame) = c.poll() {
                if let Some(msg) = frame_to_msg(&frame) {
                    fwd.on_message(q, msg, &mut out);
                }
            }
        }

        // Protocol timeouts.
        if last_tick.elapsed() >= TUNING.tick() {
            last_tick = Instant::now();
            fwd.on_timeout(&mut out);
        }

        // Workload.
        if !stopping {
            let now = now_stamp();
            while let Some(issue) = gen.poll(now) {
                fwd.enqueue_send(issue.dest, issue.payload, issue.ghost);
                gen_list.push((issue.ghost, issue.dest));
            }
        }

        // New deliveries: record latency, issue acks, close windows.
        while seen_deliveries < fwd.delivered_msgs.len() {
            let (ghost, payload) = fwd.delivered_msgs[seen_deliveries];
            seen_deliveries += 1;
            if is_ack(payload) {
                gen.on_ack();
            } else {
                let now = now_stamp();
                latency.record(now.wrapping_sub(stamp_of(payload)) & STAMP_MASK);
                let src = crate::workload::ghost_src(ghost);
                if src < cfg.n && src != p {
                    let ack_ghost = gen.next_ack_ghost();
                    fwd.enqueue_send(src, ack_payload(now), ack_ghost);
                    gen_list.push((ack_ghost, src));
                }
            }
        }

        // Ship the outbox through the bounded writer queues. The declared
        // Block policy means a full queue stalls the loop here —
        // backpressure propagating into the protocol, counted per queue.
        for (to, msg) in out.drain() {
            let tx = senders.get(&to).expect("send to non-neighbour");
            let frame = msg_to_frame(&msg);
            counters.frames_sent += 1;
            let _ = tx.send(frame);
        }

        // Status push.
        if last_status.elapsed() >= TUNING.status_every() {
            last_status = Instant::now();
            writeln!(
                ctrl_w,
                "status {} {} {} {}",
                gen.done_issuing() as u8,
                fwd.generated.len(),
                fwd.delivered.len(),
                fwd.held_ghosts().len()
            )?;
            ctrl_w.flush()?;
        }
    }

    // --- shutdown: aggregate chaos counters, emit the report ---
    stop_flag.store(true, Ordering::Relaxed);
    for c in chaos.values() {
        let (d, u, r) = c.fault_counts();
        counters.chaos_dropped += d;
        counters.chaos_duplicated += u;
        counters.chaos_reordered += r;
        counters.partition_dropped += c.partition_dropped();
    }
    {
        let ws = writer_stats.lock();
        counters.heartbeats_sent = ws.heartbeats;
        counters.reconnects = ws.reconnects;
    }
    counters.backpressure_stalls = sendq_stats.iter().map(|s| s.stall_count()).sum();
    counters.inbound_shed = inbound_stats.shed_count();
    // The control queue's bound dwarfs the lines-per-run the orchestrator
    // sends; its Shed policy must therefore never fire.
    debug_assert_eq!(
        ctrl_stats.shed_count(),
        0,
        "control lines were shed — the node.ctrl capacity argument is broken"
    );
    drop(senders); // writers drain and exit

    let report = NodeReport {
        node: p,
        generated: gen_list,
        delivered: fwd.delivered.clone(),
        held: fwd.held_ghosts(),
        latency,
        counters,
    };
    write_report(&mut ctrl_w, &report)?;
    ctrl_w.flush()?;
    if let ListenSpec::Uds { dir } = &cfg.listen {
        let _ = std::fs::remove_file(dir.join(format!("node{p}.sock")));
    }
    Ok(report)
}

fn ghost_key(g: MpGhost) -> String {
    match g {
        MpGhost::Valid(k) => format!("v{k}"),
        MpGhost::Invalid(k) => format!("i{k}"),
    }
}

fn parse_ghost(s: &str) -> Option<MpGhost> {
    let (kind, num) = s.split_at(1);
    let k: u64 = num.parse().ok()?;
    match kind {
        "v" => Some(MpGhost::Valid(k)),
        "i" => Some(MpGhost::Invalid(k)),
        _ => None,
    }
}

/// Writes the line-based `report … end` block.
pub fn write_report<W: Write>(w: &mut W, r: &NodeReport) -> io::Result<()> {
    writeln!(w, "report {}", r.node)?;
    write!(w, "gen")?;
    for &(g, d) in &r.generated {
        write!(w, " {}:{d}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(w, "del")?;
    for &g in &r.delivered {
        write!(w, " {}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(w, "held")?;
    for &g in &r.held {
        write!(w, " {}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(
        w,
        "lat {} {} {}",
        r.latency.count(),
        r.latency.max(),
        r.latency.sum()
    )?;
    for (i, c) in r.latency.nonzero_buckets() {
        write!(w, " {i}:{c}")?;
    }
    writeln!(w)?;
    let c = &r.counters;
    writeln!(
        w,
        "ctr {} {} {} {} {} {} {} {} {} {}",
        c.frames_sent,
        c.frames_received,
        c.heartbeats_sent,
        c.reconnects,
        c.chaos_dropped,
        c.chaos_duplicated,
        c.chaos_reordered,
        c.partition_dropped,
        c.backpressure_stalls,
        c.inbound_shed
    )?;
    writeln!(w, "end")
}

/// Parses the block written by [`write_report`]; the `report <node>` line
/// has already been consumed by the caller (who saw it arrive).
pub fn parse_report_body(
    node: NodeId,
    lines: &mut impl Iterator<Item = String>,
) -> Option<NodeReport> {
    let mut r = NodeReport {
        node,
        ..NodeReport::default()
    };
    for line in lines {
        let mut it = line.split_whitespace();
        match it.next()? {
            "gen" => {
                for tok in it {
                    let (g, d) = tok.split_once(':')?;
                    r.generated.push((parse_ghost(g)?, d.parse().ok()?));
                }
            }
            "del" => {
                for tok in it {
                    r.delivered.push(parse_ghost(tok)?);
                }
            }
            "held" => {
                for tok in it {
                    r.held.push(parse_ghost(tok)?);
                }
            }
            "lat" => {
                let _count: u64 = it.next()?.parse().ok()?;
                let max: u64 = it.next()?.parse().ok()?;
                let sum: u64 = it.next()?.parse().ok()?;
                let mut pairs = Vec::new();
                for tok in it {
                    let (i, c) = tok.split_once(':')?;
                    pairs.push((i.parse().ok()?, c.parse().ok()?));
                }
                r.latency = LogHistogram::from_parts(&pairs, max, sum);
            }
            "ctr" => {
                let mut next = || it.next().and_then(|t| t.parse::<u64>().ok());
                r.counters = NodeCounters {
                    frames_sent: next()?,
                    frames_received: next()?,
                    heartbeats_sent: next()?,
                    reconnects: next()?,
                    chaos_dropped: next()?,
                    chaos_duplicated: next()?,
                    chaos_reordered: next()?,
                    partition_dropped: next()?,
                    backpressure_stalls: next()?,
                    inbound_shed: next()?,
                };
            }
            "end" => return Some(r),
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_the_control_pipe() {
        let mut lat = LogHistogram::new();
        for v in [10u64, 500, 70_000] {
            lat.record(v);
        }
        let r = NodeReport {
            node: 3,
            generated: vec![(MpGhost::Valid(7), 1), (MpGhost::Invalid(9), 0)],
            delivered: vec![MpGhost::Valid(42)],
            held: vec![],
            latency: lat,
            counters: NodeCounters {
                frames_sent: 1,
                frames_received: 2,
                heartbeats_sent: 3,
                reconnects: 4,
                chaos_dropped: 5,
                chaos_duplicated: 6,
                chaos_reordered: 7,
                partition_dropped: 8,
                backpressure_stalls: 9,
                inbound_shed: 10,
            },
        };
        let mut buf = Vec::new();
        write_report(&mut buf, &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines().map(str::to_string);
        let head = lines.next().unwrap();
        assert_eq!(head, "report 3");
        let back = parse_report_body(3, &mut lines).unwrap();
        assert_eq!(back.node, r.node);
        assert_eq!(back.generated, r.generated);
        assert_eq!(back.delivered, r.delivered);
        assert_eq!(back.held, r.held);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.latency.count(), r.latency.count());
        assert_eq!(back.latency.quantile(0.5), r.latency.quantile(0.5));
        assert_eq!(back.latency.max(), r.latency.max());
    }
}
