//! One SSMFP node as an OS process (or thread): the forwarder from
//! `crates/mp` driven by real sockets instead of the simulated scheduler.
//!
//! ## Connection model
//!
//! Every *directed* edge gets its own simplex connection: the sender dials
//! its neighbour's listener, writes a `Hello` identifying itself, then
//! streams frames. The acceptor side only reads. This keeps reconnection
//! trivially safe — a lost connection loses in-flight frames (wire drops),
//! which the protocol's retransmission already tolerates, and the dialer
//! re-establishes with exponential backoff plus jitter.
//!
//! ## Data planes
//!
//! Two implementations of that model, selected by [`IoMode`]:
//!
//! * **Event** (default) — one `node.io` thread per node multiplexes every
//!   socket through `poll(2)` ([`crate::evloop`]): frames coalesce into
//!   batched writes, reads are readiness-driven, heartbeats and reconnect
//!   backoff are timer-wheel deadlines. The protocol loop feeds it through
//!   one bounded queue (`node.ioq`) plus a self-pipe wake.
//! * **Blocking** (legacy, kept for one release behind `--io blocking`) —
//!   the PR-5 plane: per-neighbour writer threads with bounded queues, an
//!   accept thread spawning one reader per inbound connection.
//!
//! Both planes speak the same wire protocol, so a cluster can even mix
//! them; the e2e suite cross-checks they reach the same reconciled SP
//! verdict under chaos.
//!
//! The protocol loop itself is *event-driven*: `on_timeout` (which moves
//! the R1/R2/R6 pipeline and retransmission) fires whenever the loop did
//! work — inbound frames, workload, deliveries — and at worst every tick
//! when idle. Per-hop latency therefore tracks socket readiness, not the
//! tick. Correctness is schedule-independent (the simulated suite drives
//! the same forwarder under an adversarial scheduler), so firing timeouts
//! faster is safe by construction.
//!
//! ## Control protocol
//!
//! Line-based, over the orchestrator's pipe:
//! * node → orch: `ready <addr>`
//! * orch → node: `peers <addr_0> … <addr_{n-1}>`, then `start`
//! * node → orch: `status <done_issuing> <generated> <delivered> <held>`
//! * orch → node: `stop`
//! * node → orch: a multi-line `report … end` block, then exit.

use crate::chaos::{ChaosSpec, InboundChaos};
use crate::conc::COMPONENT;
use crate::evloop::{dial, EventPlane, NetListener, NetStream};
use crate::frame::{frame_to_msg, msg_to_frame};
use crate::telemetry::{LogHistogram, NodeCounters};
use crate::tuning::TUNING;
use crate::workload::{ack_payload, is_ack, stamp_of, WorkloadGen, WorkloadSpec, STAMP_MASK};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::conc::{
    register_thread, spawn_registered, tracked_channel, ChannelStats, SendOutcome, TrackedMutex,
    TrackedSender,
};
use ssmfp_core::wire::{encode_frame, FrameReader, WireFrame};
use ssmfp_mp::{MpForwarder, MpGhost, MpNode, Outbox};
use ssmfp_topology::{BfsTree, Graph, NodeId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Where a node listens for inbound connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenSpec {
    /// Unix-domain socket `<dir>/node<k>.sock`.
    Uds {
        /// Directory holding the per-node sockets.
        dir: PathBuf,
    },
    /// TCP on `127.0.0.1`, OS-assigned port.
    Tcp,
}

/// Which data plane carries the node's frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Readiness-based event loop with frame coalescing (`node.io`).
    #[default]
    Event,
    /// The PR-5 thread-per-edge blocking plane (kept for one release).
    Blocking,
}

impl IoMode {
    /// The CLI/control-line spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            IoMode::Event => "event",
            IoMode::Blocking => "blocking",
        }
    }

    /// Inverse of [`IoMode::as_str`].
    pub fn parse(s: &str) -> Option<IoMode> {
        match s {
            "event" => Some(IoMode::Event),
            "blocking" => Some(IoMode::Blocking),
            _ => None,
        }
    }
}

/// Everything one node needs to run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub node: NodeId,
    /// Cluster size.
    pub n: usize,
    /// The full (undirected) edge list of the topology.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Run seed (drives nonces, workload, chaos, backoff jitter).
    pub seed: u64,
    /// Listener flavour.
    pub listen: ListenSpec,
    /// Data plane flavour.
    pub io: IoMode,
    /// Workload shape and quota.
    pub workload: WorkloadSpec,
    /// Link chaos.
    pub chaos: ChaosSpec,
}

/// One node's final report, as parsed by the orchestrator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: NodeId,
    /// Ghosts this node generated, with their destinations.
    pub generated: Vec<(MpGhost, NodeId)>,
    /// Ghosts delivered here.
    pub delivered: Vec<MpGhost>,
    /// Ghosts still held at shutdown.
    pub held: Vec<MpGhost>,
    /// One-way latency of primaries delivered here (µs).
    pub latency: LogHistogram,
    /// Frames per coalesced `write()` (event plane; empty on blocking).
    pub batch: LogHistogram,
    /// Transport/chaos counters.
    pub counters: NodeCounters,
}

/// Per-writer supervision counters, behind the declared `writer.stats`
/// lock (see `crate::conc`). Never held across a blocking operation.
/// (Blocking plane only; the event plane returns its stats by value.)
#[derive(Debug, Default)]
struct WriterStats {
    heartbeats: u64,
    reconnects: u64,
}

/// Reads frames off one inbound connection until EOF or garbage.
/// (Blocking plane only.)
fn reader_loop(mut stream: NetStream, inbound: TrackedSender<(NodeId, WireFrame)>) {
    let mut fr = FrameReader::new();
    let mut from: Option<NodeId> = None;
    let mut buf = [0u8; 4096];
    loop {
        let k = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(k) => k,
        };
        fr.extend(&buf[..k]);
        loop {
            match fr.next_frame() {
                Ok(Some(WireFrame::Hello { node, .. })) => from = Some(node as NodeId),
                Ok(Some(frame)) => match from {
                    // Frames before the Hello: unidentified connection,
                    // drop it (the dialer will reconnect and re-Hello).
                    None => return,
                    Some(p) => {
                        // A Shed outcome is a counted wire drop; the
                        // reader never blocks here (that non-edge is what
                        // keeps the cross-node wait graph acyclic).
                        if inbound.send((p, frame)) == SendOutcome::Disconnected {
                            return;
                        }
                    }
                },
                Ok(None) => break,
                Err(_) => return, // garbage on the wire: kill the connection
            }
        }
    }
}

/// (Blocking plane only.)
fn accept_loop(
    listener: NetListener,
    inbound: TrackedSender<(NodeId, WireFrame)>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(stream) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let tx = inbound.clone();
                spawn_registered(COMPONENT, "net.reader", move || reader_loop(stream, tx));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(TUNING.accept_poll());
            }
            Err(_) => return,
        }
    }
}

/// Owns one outbound simplex connection: dials with backoff, Hellos,
/// streams frames, heartbeats when idle. (Blocking plane only.)
fn writer_loop(
    my_id: NodeId,
    addr: String,
    rx: Receiver<WireFrame>,
    stats: Arc<TrackedMutex<WriterStats>>,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut incarnation: u32 = 0;
    // One scratch buffer for the connection's lifetime: frames encode into
    // it in place, no per-send allocation.
    let mut buf = Vec::with_capacity(64);
    let mut clock: u64 = 0;
    // A frame that failed mid-write is retried on the next connection —
    // losing it entirely would be a *wire* drop, which is fine, but
    // retrying is cheap and keeps chaos accounting to the chaos shim.
    let mut carry: Option<WireFrame> = None;
    'connect: loop {
        let mut attempt: u32 = 0;
        let mut stream = loop {
            match dial(&addr) {
                Ok(s) => break s,
                Err(_) => {
                    attempt += 1;
                    if attempt > TUNING.max_dial_attempts {
                        return;
                    }
                    let backoff = TUNING.backoff_ms(attempt);
                    let jitter = rng.gen_range(0..=backoff / 2);
                    thread::sleep(Duration::from_millis(backoff + jitter));
                }
            }
        };
        if incarnation > 0 {
            stats.lock().reconnects += 1;
        }
        incarnation += 1;
        buf.clear();
        encode_frame(
            &WireFrame::Hello {
                node: my_id as u16,
                incarnation,
            },
            &mut buf,
        );
        if stream.write_all(&buf).is_err() {
            continue 'connect;
        }
        loop {
            let frame = match carry.take() {
                Some(f) => f,
                None => match rx.recv_timeout(TUNING.heartbeat()) {
                    Ok(f) => f,
                    Err(RecvTimeoutError::Timeout) => {
                        clock += 1;
                        let hb = WireFrame::Heartbeat {
                            node: my_id as u16,
                            clock,
                        };
                        buf.clear();
                        encode_frame(&hb, &mut buf);
                        if stream.write_all(&buf).is_err() {
                            continue 'connect;
                        }
                        stats.lock().heartbeats += 1;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                },
            };
            buf.clear();
            encode_frame(&frame, &mut buf);
            if stream.write_all(&buf).is_err() {
                carry = Some(frame);
                continue 'connect;
            }
        }
    }
}

/// The selected data plane, behind one enqueue/wake/shutdown surface.
enum DataPlane {
    Event(EventPlane),
    Blocking {
        senders: HashMap<NodeId, TrackedSender<WireFrame>>,
        sendq_stats: Vec<Arc<ChannelStats>>,
        writer_stats: Arc<TrackedMutex<WriterStats>>,
    },
}

impl DataPlane {
    fn send(&self, to: NodeId, frame: WireFrame) {
        match self {
            DataPlane::Event(ep) => {
                let _ = ep.send(to, frame);
            }
            DataPlane::Blocking { senders, .. } => {
                let tx = senders.get(&to).expect("send to non-neighbour");
                let _ = tx.send(frame);
            }
        }
    }

    /// One nudge after a burst of sends (event plane's self-pipe; the
    /// blocking writers wake on their own queues).
    fn flush(&self) {
        if let DataPlane::Event(ep) = self {
            ep.wake();
        }
    }

    /// Tears the plane down and folds its supervision stats into
    /// `counters`; returns the batch histogram (empty on blocking).
    fn shutdown(self, counters: &mut NodeCounters) -> LogHistogram {
        match self {
            DataPlane::Event(ep) => {
                counters.backpressure_stalls = ep.stalls();
                let io = ep.shutdown();
                counters.heartbeats_sent = io.heartbeats;
                counters.reconnects = io.reconnects;
                counters.write_syscalls = io.write_syscalls;
                counters.read_syscalls = io.read_syscalls;
                counters.conn_frames_dropped = io.conn_frames_dropped;
                io.batch
            }
            DataPlane::Blocking {
                senders,
                sendq_stats,
                writer_stats,
            } => {
                {
                    let ws = writer_stats.lock();
                    counters.heartbeats_sent = ws.heartbeats;
                    counters.reconnects = ws.reconnects;
                }
                counters.backpressure_stalls = sendq_stats.iter().map(|s| s.stall_count()).sum();
                drop(senders); // writers drain and exit
                LogHistogram::new()
            }
        }
    }
}

/// Wall clock in µs, truncated to the payload stamp width. Latency is the
/// wrapping difference, so absolute truncation is harmless.
fn now_stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64
        & STAMP_MASK
}

fn routing_table(graph: &Graph, p: NodeId) -> Vec<NodeId> {
    let n = graph.n();
    (0..n)
        .map(|d| {
            if p == d {
                p
            } else {
                BfsTree::new(graph, d)
                    .parent(p)
                    .expect("connected topology")
            }
        })
        .collect()
}

/// Runs one node to completion over the given control pipe. Returns the
/// report it also wrote to the orchestrator.
pub fn node_main<R, W>(cfg: &NodeConfig, ctrl_r: R, mut ctrl_w: W) -> io::Result<NodeReport>
where
    R: Read + Send + 'static,
    W: Write,
{
    // In proc mode this is the process main thread; in inproc mode the
    // orchestrator's spawn already registered it (re-registration is
    // idempotent). Either way the declared role holds from here on.
    register_thread(COMPONENT, "node.main");
    let model = crate::conc::model(&TUNING);
    let graph = Graph::from_edges(cfg.n, &cfg.edges).map_err(io::Error::other)?;
    let p = cfg.node;
    let neighbors: Vec<NodeId> = graph.neighbors(p).to_vec();
    let mut fwd = MpForwarder::new_static(
        p,
        cfg.n,
        graph.max_degree() as u8,
        neighbors.clone(),
        routing_table(&graph, p),
        cfg.seed,
    );
    let mut gen = WorkloadGen::new(cfg.workload, p, cfg.n, cfg.seed);
    let mut chaos: HashMap<NodeId, InboundChaos> = neighbors
        .iter()
        .map(|&q| (q, InboundChaos::new(&cfg.chaos, q, p)))
        .collect();
    let mut latency = LogHistogram::new();
    let mut counters = NodeCounters::default();
    let mut gen_list: Vec<(MpGhost, NodeId)> = Vec::new();

    // --- sockets up, report ready ---
    let (listener, my_addr) = NetListener::bind(&cfg.listen, p)?;
    let mut listener = Some(listener);
    let stop_flag = Arc::new(AtomicBool::new(false));
    let (inbound_tx, inbound_rx, inbound_stats) =
        tracked_channel::<(NodeId, WireFrame)>(COMPONENT, model.channel_decl("node.inbound"));
    if cfg.io == IoMode::Blocking {
        // The event plane accepts on its own loop; the kernel backlog
        // holds early dialers until it spins up after the peers line.
        let l = listener.take().expect("listener");
        let tx = inbound_tx.clone();
        let stop = stop_flag.clone();
        spawn_registered(COMPONENT, "node.accept", move || accept_loop(l, tx, stop));
    }
    writeln!(ctrl_w, "ready {my_addr}")?;
    ctrl_w.flush()?;

    // --- control reader ---
    let (ctrl_tx, ctrl_rx, ctrl_stats) =
        tracked_channel::<String>(COMPONENT, model.channel_decl("node.ctrl"));
    spawn_registered(COMPONENT, "ctrl.reader", move || {
        for line in BufReader::new(ctrl_r).lines() {
            let Ok(line) = line else { return };
            if ctrl_tx.send(line) == SendOutcome::Disconnected {
                return;
            }
        }
    });

    let expect = |rx: &Receiver<String>, what: &str| -> io::Result<String> {
        loop {
            let line = rx
                .recv()
                .map_err(|_| io::Error::other("control pipe closed"))?;
            if line.starts_with(what) {
                return Ok(line);
            }
        }
    };

    // --- peers, data plane, start ---
    let peers_line = expect(&ctrl_rx, "peers ")?;
    let addrs: Vec<&str> = peers_line["peers ".len()..].split_whitespace().collect();
    if addrs.len() != cfg.n {
        return Err(io::Error::other("peers line has wrong arity"));
    }
    let plane = match cfg.io {
        IoMode::Event => {
            let peers: Vec<(NodeId, String)> = neighbors
                .iter()
                .map(|&q| (q, addrs[q].to_string()))
                .collect();
            let seed = cfg.seed ^ ((p as u64) << 32).wrapping_mul(0xDEAD_BEEF_1234_5677);
            DataPlane::Event(EventPlane::spawn(
                p,
                listener.take().expect("listener"),
                peers,
                inbound_tx.clone(),
                seed,
            )?)
        }
        IoMode::Blocking => {
            let writer_stats = Arc::new(TrackedMutex::new(
                model.lock_decl("writer.stats"),
                WriterStats::default(),
            ));
            let mut senders: HashMap<NodeId, TrackedSender<WireFrame>> = HashMap::new();
            let mut sendq_stats = Vec::with_capacity(neighbors.len());
            for &q in &neighbors {
                let (tx, rx, stats) =
                    tracked_channel::<WireFrame>(COMPONENT, model.channel_decl("node.sendq"));
                senders.insert(q, tx);
                sendq_stats.push(stats);
                let addr = addrs[q].to_string();
                let ws = writer_stats.clone();
                let seed =
                    cfg.seed ^ ((p as u64) << 32 | q as u64).wrapping_mul(0xDEAD_BEEF_1234_5677);
                spawn_registered(COMPONENT, "net.writer", move || {
                    writer_loop(p, addr, rx, ws, seed)
                });
            }
            DataPlane::Blocking {
                senders,
                sendq_stats,
                writer_stats,
            }
        }
    };
    expect(&ctrl_rx, "start")?;

    // --- main protocol loop ---
    let mut out = Outbox::new();
    let mut seen_deliveries = 0usize;
    let mut last_tick = Instant::now();
    let mut last_status = Instant::now();
    let mut stopping = false;
    while !stopping {
        // Control.
        while let Ok(line) = ctrl_rx.try_recv() {
            if line.starts_with("stop") {
                stopping = true;
            }
        }

        // Did this iteration move the protocol? Drives the event-driven
        // timeout below.
        let mut worked = false;

        // Inbound: block briefly so the loop idles at TICK granularity.
        match inbound_rx.recv_timeout(TUNING.tick()) {
            Ok((from, frame)) => {
                let mut push = |from: NodeId, frame: WireFrame| {
                    if frame.is_data_plane() {
                        counters.frames_received += 1;
                        if let Some(c) = chaos.get_mut(&from) {
                            c.push(frame);
                        }
                    }
                };
                push(from, frame);
                // Drain whatever else arrived in the same tick.
                while let Ok((from, frame)) = inbound_rx.try_recv() {
                    push(from, frame);
                }
                worked = true;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Deliver through the chaos shim.
        for &q in &neighbors {
            let c = chaos.get_mut(&q).expect("neighbour chaos");
            while let Some(frame) = c.poll() {
                if let Some(msg) = frame_to_msg(&frame) {
                    fwd.on_message(q, msg, &mut out);
                    worked = true;
                }
            }
        }

        // Workload.
        if !stopping {
            let now = now_stamp();
            while let Some(issue) = gen.poll(now) {
                fwd.enqueue_send(issue.dest, issue.payload, issue.ghost);
                gen_list.push((issue.ghost, issue.dest));
                worked = true;
            }
        }

        // Protocol timeouts: event-driven, tick-bounded. `on_timeout`
        // advances the R1/R2/R6 pipeline and retransmission, so firing it
        // after every productive iteration makes per-hop latency track
        // socket readiness instead of the tick; the idle path still fires
        // at tick granularity so retransmission never starves. The
        // adversarial-scheduler suite proves correctness at any firing
        // schedule.
        if worked || last_tick.elapsed() >= TUNING.tick() {
            last_tick = Instant::now();
            fwd.on_timeout(&mut out);
        }

        // New deliveries: record latency, issue acks, close windows.
        while seen_deliveries < fwd.delivered_msgs.len() {
            let (ghost, payload) = fwd.delivered_msgs[seen_deliveries];
            seen_deliveries += 1;
            if is_ack(payload) {
                gen.on_ack();
            } else {
                let now = now_stamp();
                latency.record(now.wrapping_sub(stamp_of(payload)) & STAMP_MASK);
                let src = crate::workload::ghost_src(ghost);
                if src < cfg.n && src != p {
                    let ack_ghost = gen.next_ack_ghost();
                    fwd.enqueue_send(src, ack_payload(now), ack_ghost);
                    gen_list.push((ack_ghost, src));
                }
            }
        }

        // Ship the outbox. Event plane: frames enqueue into `node.ioq`
        // (Block policy — a full queue stalls the loop here, the declared
        // backpressure edge) and one wake covers the whole burst.
        let mut sent_any = false;
        for (to, msg) in out.drain() {
            counters.frames_sent += 1;
            plane.send(to, msg_to_frame(&msg));
            sent_any = true;
        }
        if sent_any {
            plane.flush();
        }

        // Status push.
        if last_status.elapsed() >= TUNING.status_every() {
            last_status = Instant::now();
            writeln!(
                ctrl_w,
                "status {} {} {} {}",
                gen.done_issuing() as u8,
                fwd.generated.len(),
                fwd.delivered.len(),
                fwd.held_ghosts().len()
            )?;
            ctrl_w.flush()?;
        }
    }

    // --- shutdown: aggregate chaos counters, emit the report ---
    stop_flag.store(true, Ordering::Relaxed);
    for c in chaos.values() {
        let (d, u, r) = c.fault_counts();
        counters.chaos_dropped += d;
        counters.chaos_duplicated += u;
        counters.chaos_reordered += r;
        counters.partition_dropped += c.partition_dropped();
    }
    let batch = plane.shutdown(&mut counters);
    counters.inbound_shed = inbound_stats.shed_count();
    // The control queue's bound dwarfs the lines-per-run the orchestrator
    // sends; its Shed policy must therefore never fire.
    debug_assert_eq!(
        ctrl_stats.shed_count(),
        0,
        "control lines were shed — the node.ctrl capacity argument is broken"
    );

    let report = NodeReport {
        node: p,
        generated: gen_list,
        delivered: fwd.delivered.clone(),
        held: fwd.held_ghosts(),
        latency,
        batch,
        counters,
    };
    write_report(&mut ctrl_w, &report)?;
    ctrl_w.flush()?;
    if let ListenSpec::Uds { dir } = &cfg.listen {
        let _ = std::fs::remove_file(dir.join(format!("node{p}.sock")));
    }
    Ok(report)
}

fn ghost_key(g: MpGhost) -> String {
    match g {
        MpGhost::Valid(k) => format!("v{k}"),
        MpGhost::Invalid(k) => format!("i{k}"),
    }
}

fn parse_ghost(s: &str) -> Option<MpGhost> {
    let (kind, num) = s.split_at(1);
    let k: u64 = num.parse().ok()?;
    match kind {
        "v" => Some(MpGhost::Valid(k)),
        "i" => Some(MpGhost::Invalid(k)),
        _ => None,
    }
}

fn write_histogram<W: Write>(w: &mut W, tag: &str, h: &LogHistogram) -> io::Result<()> {
    write!(w, "{tag} {} {} {}", h.count(), h.max(), h.sum())?;
    for (i, c) in h.nonzero_buckets() {
        write!(w, " {i}:{c}")?;
    }
    writeln!(w)
}

fn parse_histogram(it: &mut std::str::SplitWhitespace<'_>) -> Option<LogHistogram> {
    let _count: u64 = it.next()?.parse().ok()?;
    let max: u64 = it.next()?.parse().ok()?;
    let sum: u64 = it.next()?.parse().ok()?;
    let mut pairs = Vec::new();
    for tok in it {
        let (i, c) = tok.split_once(':')?;
        pairs.push((i.parse().ok()?, c.parse().ok()?));
    }
    Some(LogHistogram::from_parts(&pairs, max, sum))
}

/// Writes the line-based `report … end` block.
pub fn write_report<W: Write>(w: &mut W, r: &NodeReport) -> io::Result<()> {
    writeln!(w, "report {}", r.node)?;
    write!(w, "gen")?;
    for &(g, d) in &r.generated {
        write!(w, " {}:{d}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(w, "del")?;
    for &g in &r.delivered {
        write!(w, " {}", ghost_key(g))?;
    }
    writeln!(w)?;
    write!(w, "held")?;
    for &g in &r.held {
        write!(w, " {}", ghost_key(g))?;
    }
    writeln!(w)?;
    write_histogram(w, "lat", &r.latency)?;
    write_histogram(w, "bat", &r.batch)?;
    let c = &r.counters;
    writeln!(
        w,
        "ctr {} {} {} {} {} {} {} {} {} {} {} {} {}",
        c.frames_sent,
        c.frames_received,
        c.heartbeats_sent,
        c.reconnects,
        c.chaos_dropped,
        c.chaos_duplicated,
        c.chaos_reordered,
        c.partition_dropped,
        c.backpressure_stalls,
        c.inbound_shed,
        c.write_syscalls,
        c.read_syscalls,
        c.conn_frames_dropped
    )?;
    writeln!(w, "end")
}

/// Parses the block written by [`write_report`]; the `report <node>` line
/// has already been consumed by the caller (who saw it arrive).
pub fn parse_report_body(
    node: NodeId,
    lines: &mut impl Iterator<Item = String>,
) -> Option<NodeReport> {
    let mut r = NodeReport {
        node,
        ..NodeReport::default()
    };
    for line in lines {
        let mut it = line.split_whitespace();
        match it.next()? {
            "gen" => {
                for tok in it {
                    let (g, d) = tok.split_once(':')?;
                    r.generated.push((parse_ghost(g)?, d.parse().ok()?));
                }
            }
            "del" => {
                for tok in it {
                    r.delivered.push(parse_ghost(tok)?);
                }
            }
            "held" => {
                for tok in it {
                    r.held.push(parse_ghost(tok)?);
                }
            }
            "lat" => r.latency = parse_histogram(&mut it)?,
            "bat" => r.batch = parse_histogram(&mut it)?,
            "ctr" => {
                let mut next = || it.next().and_then(|t| t.parse::<u64>().ok());
                r.counters = NodeCounters {
                    frames_sent: next()?,
                    frames_received: next()?,
                    heartbeats_sent: next()?,
                    reconnects: next()?,
                    chaos_dropped: next()?,
                    chaos_duplicated: next()?,
                    chaos_reordered: next()?,
                    partition_dropped: next()?,
                    backpressure_stalls: next()?,
                    inbound_shed: next()?,
                    write_syscalls: next()?,
                    read_syscalls: next()?,
                    conn_frames_dropped: next()?,
                };
            }
            "end" => return Some(r),
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_the_control_pipe() {
        let mut lat = LogHistogram::new();
        for v in [10u64, 500, 70_000] {
            lat.record(v);
        }
        let mut bat = LogHistogram::new();
        for v in [1u64, 1, 4, 17] {
            bat.record(v);
        }
        let r = NodeReport {
            node: 3,
            generated: vec![(MpGhost::Valid(7), 1), (MpGhost::Invalid(9), 0)],
            delivered: vec![MpGhost::Valid(42)],
            held: vec![],
            latency: lat,
            batch: bat,
            counters: NodeCounters {
                frames_sent: 1,
                frames_received: 2,
                heartbeats_sent: 3,
                reconnects: 4,
                chaos_dropped: 5,
                chaos_duplicated: 6,
                chaos_reordered: 7,
                partition_dropped: 8,
                backpressure_stalls: 9,
                inbound_shed: 10,
                write_syscalls: 11,
                read_syscalls: 12,
                conn_frames_dropped: 13,
            },
        };
        let mut buf = Vec::new();
        write_report(&mut buf, &r).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines().map(str::to_string);
        let head = lines.next().unwrap();
        assert_eq!(head, "report 3");
        let back = parse_report_body(3, &mut lines).unwrap();
        assert_eq!(back.node, r.node);
        assert_eq!(back.generated, r.generated);
        assert_eq!(back.delivered, r.delivered);
        assert_eq!(back.held, r.held);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.latency.count(), r.latency.count());
        assert_eq!(back.latency.quantile(0.5), r.latency.quantile(0.5));
        assert_eq!(back.latency.max(), r.latency.max());
        assert_eq!(back.batch.count(), r.batch.count());
        assert_eq!(back.batch.mean(), r.batch.mean());
    }

    #[test]
    fn io_mode_spelling_roundtrips() {
        for mode in [IoMode::Event, IoMode::Blocking] {
            assert_eq!(IoMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(IoMode::parse("epoll"), None);
        assert_eq!(IoMode::default(), IoMode::Event);
    }
}
