//! Distributed SSMFP cluster runtime: the message-passing port of the
//! snap-stabilizing forwarder (`crates/mp`) deployed as real nodes over
//! OS sockets, with supervised connections, workload generators, and
//! latency/throughput telemetry.
//!
//! Module map:
//! * [`frame`] — lossless bridge between the simulator's `WireMsg` and
//!   the wire codec's `WireFrame`.
//! * [`transport`] — socket-backed `ssmfp_mp::Transport` impls the shared
//!   exactly-once suite runs against: [`transport::LoopbackTransport`]
//!   (blocking reader threads) and [`transport::PolledTransport`] (the
//!   event loop's readiness/coalescing building blocks).
//! * [`chaos`] — socket-level fault shim (drop/duplicate/reorder budgets
//!   plus one partition/heal cycle), sharing the simulator's
//!   `FaultClerk` decision procedure.
//! * [`workload`] — open-loop (Poisson) and closed-loop (K outstanding)
//!   generators, with the payload-stamp and ghost-numbering conventions.
//! * [`clients`] — the client multiplexer: up to millions of logical
//!   clients per run, each a ~56-byte session stamping its sends with a
//!   `(client, seq)` identity the shutdown reconcile audits per client
//!   (exactly-once *and* FIFO), with fairness-spread telemetry.
//! * [`evloop`] — the whole node's I/O machinery: a `poll(2)` shim,
//!   per-connection coalescing write buffers (zero-realloc hot path),
//!   and [`evloop::NodeLoop`], which multiplexes the control pipe, the
//!   listener and every data connection in one readiness set with
//!   heartbeat/reconnect deadlines on its timer list.
//! * [`node`] — one node = **one thread**: [`node_main`] runs the
//!   forwarder, the workload and the control state machine between
//!   [`evloop::NodeLoop`] pump bursts.
//! * [`orchestrator`] — the sharded control tree: K `shard.super`
//!   threads each supervise a node group (threads or processes),
//!   pre-merging status and telemetry so the root works O(shards) per
//!   tick, then one global ledger reconciliation renders the SP verdict
//!   and the JSON run report.
//! * [`telemetry`] — log-bucketed latency histograms and counters.
//! * [`tuning`] — every runtime knob in one documented [`ClusterTuning`]
//!   struct, consumed by both the running code and the declared model.
//! * [`conc`] — the declared concurrency model (thread roles, lock ranks,
//!   channel bounds, blocking edges) feeding `ssmfp-lint`'s `conc-*`
//!   passes and the debug-build runtime assertions.

pub mod chaos;
pub mod clients;
pub mod conc;
pub mod evloop;
pub mod frame;
pub mod node;
pub mod orchestrator;
pub mod telemetry;
pub mod transport;
pub mod tuning;
pub mod workload;

pub use chaos::{ChaosSpec, PartitionSpec};
pub use clients::{ClientMutation, ClientMux, ClientSpec};
pub use evloop::CtrlPipe;
pub use node::{node_main, ListenSpec, NodeConfig, NodeReport};
pub use orchestrator::{
    node_args, parse_chaos, parse_node_args, parse_workload, pick_partition, run_cluster,
    shard_ranges, ClusterSpec, RunMode, RunReport, ShardReport, ShardStatus, ShardSummary,
};
pub use telemetry::{LogHistogram, NodeCounters};
pub use transport::{LoopbackTransport, PolledTransport};
pub use tuning::{ClusterTuning, TUNING};
pub use workload::{is_ack_ghost, WorkloadGen, WorkloadKind, WorkloadSpec};
