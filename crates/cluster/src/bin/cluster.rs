//! `ssmfp-cluster`: run an SSMFP topology as real nodes over sockets.
//!
//! ```text
//! ssmfp-cluster [--topology grid:10x10] [--workload closed:4:200] [--seed 1]
//!               [--clients N] [--client-load closed:1:2]
//!               [--faults 2] [--partition 20:40] [--transport uds|tcp]
//!               [--shards K] [--inproc] [--timeout-s 60]
//!               [--json FILE] [--quiet]
//! ```
//!
//! Exit codes: `0` clean run (converged, zero SP violations — and, with
//! `--clients`, a clean per-client verdict), `1` dirty or non-converged
//! run, `2` usage error. The hidden `--node-worker` mode is how the
//! orchestrator spawns per-node processes.

use ssmfp_cluster::{
    node_main, parse_chaos, parse_node_args, parse_workload, pick_partition, run_cluster,
    ChaosSpec, ClientMutation, ClientSpec, ClusterSpec, CtrlPipe, ListenSpec, RunMode,
    WorkloadKind, WorkloadSpec,
};
use ssmfp_topology::{gen, Graph};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

fn die(msg: &str) -> ! {
    eprintln!("ssmfp-cluster: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

fn help() {
    println!(
        "\
ssmfp-cluster — SSMFP nodes over real sockets

USAGE:
    ssmfp-cluster [OPTIONS]

OPTIONS:
    --topology SPEC    line:N | ring:N | star:N | caterpillar:S:L |
                       grid:RxC | torus:RxC | hypercube:D | random:N,p
                       (also grid:R:C / torus:R:C; random is a seeded
                       connected Erdős–Rényi sample; default line:5)
    --workload SPEC    open:<rate/s>:<msgs> | closed:<K>:<msgs> per node
                       (default closed:4:50; ignored with --clients)
    --clients N        client mode: N logical clients spread over the
                       nodes, each an audited exactly-once+FIFO stream
    --client-load SPEC per-client discipline, same syntax as --workload
                       (default closed:1:2)
    --seed S           run seed (default 1)
    --faults K         per-link drop/duplicate/reorder budgets (default 0)
    --partition F:L    one partition/heal cycle: drop data-plane arrivals
                       [F, F+L) on a seed-picked edge (default off)
    --transport T      uds | tcp (default uds)
    --shards K         orchestrator shards, each supervising a node group
                       (default: one per 25 nodes; clamped to 1..=n)
    --inproc           nodes as threads instead of processes
    --timeout-s T      convergence timeout in seconds (default 60)
    --json FILE        write the JSON run report to FILE ('-' = stdout)
    --quiet            suppress the human summary
    --version          print version and exit
    -h, --help         this text"
    );
}

/// Seed-aware topology parsing: `random:N,p` draws a seeded connected
/// Erdős–Rényi sample, so the graph cannot be built until the run seed
/// is known — the CLI stashes the spec string and resolves it after the
/// argument loop.
fn parse_topology(s: &str, seed: u64) -> Result<(String, Graph), String> {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |t: Option<&&str>| -> Result<usize, String> {
        t.and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad topology {s:?}"))
    };
    // grid:10x10 / torus:4x8 are the compact forms; grid:R:C still works.
    let dims = |spec: &str| -> Result<(usize, usize), String> {
        let (r, c) = spec
            .split_once('x')
            .ok_or_else(|| format!("bad topology {s:?} (want RxC)"))?;
        Ok((num(Some(&r))?, num(Some(&c))?))
    };
    let g = match (parts[0], parts.len()) {
        ("line", 2) => gen::line(num(parts.get(1))?),
        ("ring", 2) => gen::ring(num(parts.get(1))?),
        ("star", 2) => gen::star(num(parts.get(1))?),
        ("caterpillar", 3) => gen::caterpillar(num(parts.get(1))?, num(parts.get(2))?),
        ("grid", 2) => {
            let (r, c) = dims(parts[1])?;
            gen::grid(r, c)
        }
        ("grid", 3) => gen::grid(num(parts.get(1))?, num(parts.get(2))?),
        ("torus", 2) => {
            let (r, c) = dims(parts[1])?;
            gen::torus(r, c)
        }
        ("torus", 3) => gen::torus(num(parts.get(1))?, num(parts.get(2))?),
        ("hypercube", 2) => {
            let d = num(parts.get(1))?;
            if d == 0 || d > 16 {
                return Err(format!("bad topology {s:?} (want 1 <= D <= 16)"));
            }
            gen::hypercube(d as u32)
        }
        ("random", 2) => {
            let (n, p) = parts[1]
                .split_once(',')
                .ok_or_else(|| format!("bad topology {s:?} (want random:N,p)"))?;
            let n: usize = n.parse().map_err(|_| format!("bad topology {s:?}"))?;
            let p: f64 = p.parse().map_err(|_| format!("bad topology {s:?}"))?;
            if !(0.0..=1.0).contains(&p) || n == 0 {
                return Err(format!("bad topology {s:?} (want N >= 1, p in [0, 1])"));
            }
            gen::erdos_renyi(n, p, seed).ok_or_else(|| {
                format!("random:{n},{p} found no connected sample at seed {seed}; raise p")
            })?
        }
        _ => return Err(format!("unknown topology {s:?}")),
    };
    Ok((s.to_string(), g))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden per-node worker mode (spawned by a shard supervisor).
    if args.first().map(String::as_str) == Some("--node-worker") {
        let cfg = match parse_node_args(&args[1..]) {
            Ok(c) => c,
            Err(e) => die(&e),
        };
        return match node_main(&cfg, CtrlPipe::Stdio) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ssmfp-cluster node {}: {e}", cfg.node);
                ExitCode::FAILURE
            }
        };
    }

    let mut topology: Option<String> = None;
    let mut workload = WorkloadSpec {
        kind: WorkloadKind::Closed { outstanding: 4 },
        messages: 50,
    };
    let mut clients: Option<u64> = None;
    let mut client_load = WorkloadSpec {
        kind: WorkloadKind::Closed { outstanding: 1 },
        messages: 2,
    };
    let mut client_mutation: Option<ClientMutation> = None;
    let mut seed: u64 = 1;
    let mut faults: u32 = 0;
    let mut partition: Option<(u64, u64)> = None;
    let mut transport = "uds".to_string();
    let mut shards: Option<usize> = None;
    let mut inproc = false;
    let mut timeout_s: u64 = 60;
    let mut json: Option<String> = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> &str {
            it.next()
                .map(String::as_str)
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--topology" => topology = Some(val().to_string()),
            "--workload" => match parse_workload(val()) {
                Ok(w) => workload = w,
                Err(e) => die(&e),
            },
            "--clients" => {
                let k: u64 = val()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--clients: {e}")));
                clients = Some(k);
            }
            "--client-load" => match parse_workload(val()) {
                Ok(w) => client_load = w,
                Err(e) => die(&e),
            },
            // Hidden: seeded client-layer bug injection, for red-testing
            // the per-client audit (a clean run must turn dirty).
            "--client-mutation" => match val() {
                "dup-stamp" => client_mutation = Some(ClientMutation::DuplicateStamp),
                other => die(&format!("unknown --client-mutation {other:?}")),
            },
            "--seed" => {
                seed = val()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--seed: {e}")))
            }
            "--faults" => {
                faults = val()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--faults: {e}")))
            }
            "--partition" => {
                let v = val();
                let Some((f, l)) = v.split_once(':') else {
                    die(&format!("bad --partition {v:?} (want FROM:LEN)"));
                };
                let f = f
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--partition: {e}")));
                let l = l
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--partition: {e}")));
                partition = Some((f, l));
            }
            "--transport" => {
                transport = val().to_string();
                if transport != "uds" && transport != "tcp" {
                    die(&format!("bad --transport {transport:?} (want uds|tcp)"));
                }
            }
            "--shards" => {
                let v = val();
                let k: usize = v.parse().unwrap_or_else(|e| die(&format!("--shards: {e}")));
                if k == 0 {
                    die("--shards must be at least 1");
                }
                shards = Some(k);
            }
            "--inproc" => inproc = true,
            "--timeout-s" => {
                timeout_s = val()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--timeout-s: {e}")))
            }
            "--json" => json = Some(val().to_string()),
            "--quiet" => quiet = true,
            "--version" => {
                println!("ssmfp-cluster {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                help();
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }

    // Resolve the topology only now: `random:N,p` needs the seed.
    let (name, graph) = match parse_topology(topology.as_deref().unwrap_or("line:5"), seed) {
        Ok(t) => t,
        Err(e) => die(&e),
    };
    if graph.n() < 2 {
        die("topology needs at least 2 nodes");
    }
    let client_spec = clients.map(|k| ClientSpec {
        clients: k,
        load: client_load,
        mutation: client_mutation,
    });
    if let Some(c) = &client_spec {
        if let Err(e) = c.validate(graph.n()) {
            die(&e);
        }
    } else if client_mutation.is_some() {
        die("--client-mutation needs --clients");
    }
    let shards = shards.unwrap_or_else(|| graph.n().div_ceil(25));
    // An ignored side effect of `--chaos` syntax reuse: validate early so
    // the worker round-trip can't fail later.
    let chaos = ChaosSpec {
        seed: seed ^ 0xC4A0_5C4A_05C4_A05C,
        faults_per_link: faults,
        partition: partition.map(|(f, l)| pick_partition(&graph, seed, f, l)),
    };
    debug_assert!(parse_chaos(&format!("{}:{}", chaos.seed, chaos.faults_per_link)).is_ok());

    let uds_dir = std::env::temp_dir().join(format!("ssmfp-cluster-{}", std::process::id()));
    let listen = if transport == "uds" {
        if let Err(e) = std::fs::create_dir_all(&uds_dir) {
            die(&format!("cannot create {}: {e}", uds_dir.display()));
        }
        ListenSpec::Uds {
            dir: uds_dir.clone(),
        }
    } else {
        ListenSpec::Tcp
    };
    let mode = if inproc {
        RunMode::Inproc
    } else {
        match std::env::current_exe() {
            Ok(exe) => RunMode::Proc { exe },
            Err(e) => die(&format!("cannot locate own binary: {e}")),
        }
    };

    let spec = ClusterSpec {
        topology: name,
        graph,
        seed,
        workload,
        chaos,
        listen,
        clients: client_spec,
        shards,
        mode,
        timeout: Duration::from_secs(timeout_s),
    };
    let report = match run_cluster(&spec) {
        Ok(r) => r,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&uds_dir);
            eprintln!("ssmfp-cluster: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_dir_all(&uds_dir);

    if !quiet {
        let v = &report.verdict;
        eprintln!(
            "{}: n={} seed={} shards={} converged={} wall={:.2}s generated={} exactly_once={} \
             violations={} | {:.0} msg/s p50={}µs p99={}µs | chaos d/u/r={}/{}/{} part={}",
            report.topology,
            report.n,
            report.seed,
            report.shards,
            report.converged,
            report.wall_s,
            v.generated,
            v.exactly_once,
            v.violations.len(),
            report.throughput,
            report.latency.quantile(0.50),
            report.latency.quantile(0.99),
            report.counters.chaos_dropped,
            report.counters.chaos_duplicated,
            report.counters.chaos_reordered,
            report.counters.partition_dropped,
        );
        if let Some(cv) = &report.client_verdict {
            eprintln!(
                "clients: hosted={} completed={} stamped={} exactly_once={} in_flight={} \
                 violations={} | rtt p50={}µs p99={}µs fairness p50={}µs p99={}µs",
                report.clients,
                report.clients_completed,
                cv.stamped,
                cv.exactly_once,
                cv.in_flight,
                cv.violations.len(),
                report.client_rtt.quantile(0.50),
                report.client_rtt.quantile(0.99),
                report.client_fair.quantile(0.50),
                report.client_fair.quantile(0.99),
            );
        }
    }
    match json.as_deref() {
        Some("-") => println!("{}", report.to_json()),
        Some(path) => {
            let out = report.to_json();
            if let Err(e) = std::fs::File::create(path).and_then(|mut f| {
                f.write_all(out.as_bytes())?;
                f.write_all(b"\n")
            }) {
                eprintln!("ssmfp-cluster: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {}
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!("ssmfp-cluster: run was NOT clean");
        ExitCode::FAILURE
    }
}
