//! Socket-level chaos shim: the simulator's link-fault semantics applied
//! to real inbound socket traffic.
//!
//! Every inbound link gets a queue drained through the *same*
//! [`FaultClerk`] decision procedure the in-process channels use —
//! drop/duplicate/reorder under transient budgets — plus an
//! arrival-indexed partition window (both directions of one edge drop
//! every data-plane frame inside the window, then heal). Supervision
//! frames (`Hello`/`Heartbeat`) bypass chaos entirely: the shim tests the
//! protocol, not the connection supervisor.

use ssmfp_core::wire::WireFrame;
use ssmfp_mp::{ChannelFaults, FaultClerk};
use ssmfp_topology::NodeId;
use std::collections::VecDeque;

/// Chaos configuration for one cluster run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Seed deriving every per-link clerk (and the partition edge choice
    /// when callers use [`ChaosSpec::pick_partition`]).
    pub seed: u64,
    /// Per-inbound-link budget for each fault kind (0 = no chaos).
    pub faults_per_link: u32,
    /// One partition/heal cycle: the edge and its arrival window.
    pub partition: Option<PartitionSpec>,
}

impl ChaosSpec {
    /// No chaos at all.
    pub fn none() -> Self {
        ChaosSpec {
            seed: 0,
            faults_per_link: 0,
            partition: None,
        }
    }
}

/// A partition of edge `{a, b}`: on both directed links, data-plane
/// arrivals with index in `[from_arrival, from_arrival + len)` are
/// dropped, then the edge heals for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First dropped arrival index (per direction).
    pub from_arrival: u64,
    /// Number of dropped arrivals (per direction).
    pub len: u64,
}

/// Chaos state for one inbound link (`from` → the owning node).
#[derive(Debug)]
pub struct InboundChaos {
    queue: VecDeque<WireFrame>,
    clerk: Option<FaultClerk>,
    /// Data-plane arrivals so far (indexes the partition window).
    arrivals: u64,
    window: Option<(u64, u64)>,
    partition_dropped: u64,
}

impl InboundChaos {
    /// Chaos for the link `from → to` under `spec`. The clerk seed mixes
    /// the directed link identity so each link draws an independent but
    /// reproducible fault sequence.
    pub fn new(spec: &ChaosSpec, from: NodeId, to: NodeId) -> Self {
        let clerk = (spec.faults_per_link > 0).then(|| {
            let link_salt = (from as u64) << 32 | to as u64;
            FaultClerk::new(ChannelFaults::budget(
                spec.seed ^ link_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                spec.faults_per_link,
            ))
        });
        let window = spec.partition.and_then(|p| {
            let covers = (p.a == from && p.b == to) || (p.b == from && p.a == to);
            covers.then_some((p.from_arrival, p.from_arrival + p.len))
        });
        InboundChaos {
            queue: VecDeque::new(),
            clerk,
            arrivals: 0,
            window,
            partition_dropped: 0,
        }
    }

    /// Accepts one received frame. Supervision frames pass through
    /// outside the queue (the caller routes them separately), so only
    /// data-plane frames should be pushed here.
    pub fn push(&mut self, frame: WireFrame) {
        debug_assert!(frame.is_data_plane());
        let i = self.arrivals;
        self.arrivals += 1;
        if let Some((lo, hi)) = self.window {
            if i >= lo && i < hi {
                self.partition_dropped += 1;
                return;
            }
        }
        self.queue.push_back(frame);
    }

    /// Takes the next frame to deliver to the protocol, applying the
    /// clerk's faults. `None` when the queue is exhausted (dropped frames
    /// are consumed internally).
    pub fn poll(&mut self) -> Option<WireFrame> {
        while !self.queue.is_empty() {
            match &mut self.clerk {
                Some(clerk) => {
                    if let Some(f) = clerk.pull(&mut self.queue) {
                        return Some(f);
                    }
                    // Dropped: the opportunity is spent, try the next.
                }
                None => return self.queue.pop_front(),
            }
        }
        None
    }

    /// Frames queued but not yet delivered.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `(dropped, duplicated, reordered)` by the clerk so far.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        self.clerk.as_ref().map_or((0, 0, 0), FaultClerk::counts)
    }

    /// Frames dropped by the partition window so far.
    pub fn partition_dropped(&self) -> u64 {
        self.partition_dropped
    }

    /// Whether every chaos budget (including the partition window) is
    /// spent, i.e. the link behaves reliably from now on.
    pub fn exhausted(&self) -> bool {
        let clerk_done = self.clerk.as_ref().is_none_or(FaultClerk::exhausted);
        let window_done = self.window.is_none_or(|(_, hi)| self.arrivals >= hi);
        clerk_done && window_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::wire::{ClientStamp, WireMessage};
    use ssmfp_core::GhostId;

    fn frame(k: u64) -> WireFrame {
        WireFrame::Offer {
            d: 0,
            msg: WireMessage {
                payload: k,
                color: 0,
                ghost: GhostId::Valid(k),
                stamp: ClientStamp::NONE,
            },
            nonce: k,
        }
    }

    #[test]
    fn no_chaos_is_fifo() {
        let mut c = InboundChaos::new(&ChaosSpec::none(), 0, 1);
        for k in 0..5 {
            c.push(frame(k));
        }
        for k in 0..5 {
            assert_eq!(c.poll(), Some(frame(k)));
        }
        assert_eq!(c.poll(), None);
        assert!(c.exhausted());
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let spec = ChaosSpec {
            seed: 1,
            faults_per_link: 0,
            partition: Some(PartitionSpec {
                a: 0,
                b: 1,
                from_arrival: 2,
                len: 3,
            }),
        };
        let mut c = InboundChaos::new(&spec, 1, 0); // reverse direction also covered
        for k in 0..8 {
            c.push(frame(k));
        }
        let got: Vec<_> = std::iter::from_fn(|| c.poll()).collect();
        assert_eq!(got, vec![frame(0), frame(1), frame(5), frame(6), frame(7)]);
        assert_eq!(c.partition_dropped(), 3);
        assert!(c.exhausted());
    }

    #[test]
    fn partition_ignores_unrelated_links() {
        let spec = ChaosSpec {
            seed: 1,
            faults_per_link: 0,
            partition: Some(PartitionSpec {
                a: 0,
                b: 1,
                from_arrival: 0,
                len: 100,
            }),
        };
        let mut c = InboundChaos::new(&spec, 2, 3);
        c.push(frame(9));
        assert_eq!(c.poll(), Some(frame(9)));
        assert_eq!(c.partition_dropped(), 0);
    }

    #[test]
    fn clerk_budgets_are_finite_and_deterministic() {
        let spec = ChaosSpec {
            seed: 42,
            faults_per_link: 2,
            partition: None,
        };
        let run = || {
            let mut c = InboundChaos::new(&spec, 0, 1);
            // Push everything first so the queue has the depth reorders
            // need, then drain.
            for k in 0..50 {
                c.push(frame(k));
            }
            let out: Vec<_> = std::iter::from_fn(|| c.poll()).collect();
            (out, c.fault_counts(), c.exhausted())
        };
        let (a, counts_a, done_a) = run();
        let (b, counts_b, _) = run();
        assert_eq!(a, b, "same seed, same chaos decisions");
        assert_eq!(counts_a, counts_b);
        assert!(done_a, "budgets of 2 must be spent within 50 frames");
        let (d, u, _r) = counts_a;
        assert_eq!(a.len() as u64, 50 - d + u);
    }
}
