//! The readiness-based event-loop data plane.
//!
//! One `node.io` thread per node multiplexes *every* per-edge socket —
//! the listener, all inbound connections, all outbound connections and a
//! self-pipe wakeup — through `poll(2)`, replacing PR-5's two blocking
//! threads per directed edge. The protocol loop talks to it through one
//! bounded channel (`node.ioq`, Block policy: the backpressure contract
//! is unchanged) plus a one-byte wake write.
//!
//! ## Batching policy
//!
//! Outbound frames append straight into a per-connection [`WriteBuf`]
//! (length-prefixed wire bytes, no intermediate `Vec` per frame) and one
//! `write()` ships everything pending. When the node is idle a frame is
//! flushed the moment it is enqueued; under load the queue drains in
//! bursts and frames coalesce naturally, bounded by the
//! [`ClusterTuning`] byte/frame budgets (`batch_max_bytes`,
//! `batch_max_frames`). The buffer never reallocates in steady state: it
//! is pre-sized to the batch budget and `consume` recycles capacity.
//!
//! Per-directed-edge FIFO ordering is preserved under coalescing: the
//! protocol loop enqueues frames in send order, the io thread drains the
//! queue in order, appends to each edge's buffer in order, and a buffer
//! is always written front-to-back — coalescing only changes syscall
//! boundaries, never byte order on a connection.
//!
//! ## Timers
//!
//! Heartbeats and reconnect backoff are deadlines on the loop: the
//! `poll` timeout is the distance to the nearest one, so nothing in the
//! data plane sleeps at a fixed granularity anymore.
//!
//! ## Failure policy
//!
//! A connection that errors mid-stream drops its buffered bytes (a
//! counted burst of wire drops — a partially-written frame cannot be
//! resumed on a new connection, and the protocol's retransmission
//! recovers), then redials with the shared backoff schedule. A peer that
//! stops reading cannot grow the buffer past `out_buf_cap_bytes`:
//! beyond it, new frames for that edge are shed and counted.

use crate::conc::COMPONENT;
use crate::node::ListenSpec;
use crate::telemetry::LogHistogram;
use crate::tuning::{ClusterTuning, TUNING};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::conc::{
    spawn_registered, tracked_channel, ChannelStats, SendOutcome, TrackedSender,
};
use ssmfp_core::wire::{encode_frame, FrameReader, WireFrame, MAX_FRAME_LEN};
use ssmfp_topology::NodeId;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw `poll(2)` bindings. The workspace vendors no `libc`, and the only
/// system interface the event loop needs is one syscall with a stable,
/// tiny ABI — so it is declared by hand for the Linux targets the
/// cluster runtime already assumes (Unix-domain sockets everywhere).
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[allow(non_camel_case_types)]
    pub struct pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        /// `nfds_t` is `c_ulong` (= `u64` on every 64-bit Linux target).
        pub fn poll(fds: *mut pollfd, nfds: u64, timeout: i32) -> i32;
    }
}

/// Readable (data or EOF pending).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, delivered in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// fd not open (always polled, delivered in `revents` only).
pub const POLLNVAL: i16 = 0x020;

/// A reusable `poll(2)` interest set: build it each cycle (O(degree),
/// the allocation is recycled), poll once, read `revents` back by index.
pub struct PollSet {
    fds: Vec<sys::pollfd>,
}

impl Default for PollSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        PollSet { fds: Vec::new() }
    }

    /// Removes every registered fd (keeps capacity).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` with the given interest; returns its slot index.
    pub fn push(&mut self, fd: RawFd, events: i16) -> usize {
        self.fds.push(sys::pollfd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Blocks until an fd is ready or `timeout` elapses (`None` = wait
    /// forever). Returns the number of ready fds. EINTR retries.
    pub fn poll(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        // Round sub-millisecond deadlines *up*: a 0ms timeout would turn
        // a near deadline into a busy spin.
        let ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
        };
        loop {
            let rc = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len() as u64, ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// The result events of slot `idx` from the last [`PollSet::poll`].
    pub fn revents(&self, idx: usize) -> i16 {
        self.fds[idx].revents
    }

    /// Number of registered fds (slot indices are `0..fds_len()`).
    pub fn fds_len(&self) -> usize {
        self.fds.len()
    }
}

/// One stream socket of either flavour, with raw-fd access for the poll
/// set. (The PR-5 plane erased streams to `Box<dyn Read>`, which made
/// readiness multiplexing impossible.)
pub enum NetStream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream (Nagle disabled by [`dial`]/[`NetListener::accept`]).
    Tcp(TcpStream),
}

impl NetStream {
    /// The raw fd, for poll registration.
    pub fn fd(&self) -> RawFd {
        match self {
            NetStream::Unix(s) => s.as_raw_fd(),
            NetStream::Tcp(s) => s.as_raw_fd(),
        }
    }

    /// Toggles nonblocking mode.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.set_nonblocking(nb),
            NetStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.read(buf),
            NetStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.write(buf),
            NetStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.flush(),
            NetStream::Tcp(s) => s.flush(),
        }
    }
}

/// A node's listener of either flavour (always nonblocking).
pub enum NetListener {
    /// Unix-domain listener at `<dir>/node<k>.sock`.
    Unix(UnixListener),
    /// TCP listener on `127.0.0.1`, OS-assigned port.
    Tcp(TcpListener),
}

impl NetListener {
    /// Binds per `spec` and returns the listener plus its dialable
    /// address string (`uds:<path>` / `tcp:<addr>`).
    pub fn bind(spec: &ListenSpec, node: NodeId) -> io::Result<(Self, String)> {
        match spec {
            ListenSpec::Uds { dir } => {
                let path = dir.join(format!("node{node}.sock"));
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Ok((NetListener::Unix(l), format!("uds:{}", path.display())))
            }
            ListenSpec::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                l.set_nonblocking(true)?;
                let addr = l.local_addr()?;
                Ok((NetListener::Tcp(l), format!("tcp:{addr}")))
            }
        }
    }

    /// The raw fd, for poll registration.
    pub fn fd(&self) -> RawFd {
        match self {
            NetListener::Unix(l) => l.as_raw_fd(),
            NetListener::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one connection (nonblocking: `WouldBlock` when none).
    /// The accepted stream inherits nonblocking off; callers pick.
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(NetStream::Unix(s))
            }
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(NetStream::Tcp(s))
            }
        }
    }
}

/// Dials a `uds:<path>` / `tcp:<addr>` address string (blocking connect;
/// both flavours complete immediately on localhost).
pub fn dial(addr: &str) -> io::Result<NetStream> {
    if let Some(path) = addr.strip_prefix("uds:") {
        Ok(NetStream::Unix(UnixStream::connect(path)?))
    } else if let Some(sock) = addr.strip_prefix("tcp:") {
        let s = TcpStream::connect(sock)?;
        let _ = s.set_nodelay(true);
        Ok(NetStream::Tcp(s))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad peer address {addr:?}"),
        ))
    }
}

/// A per-connection outbound byte buffer: frames are encoded straight
/// into it (append-only, front-to-back writes), so the hot path performs
/// no per-frame allocation and one `write()` can carry a whole batch.
pub struct WriteBuf {
    buf: Vec<u8>,
    at: usize,
    frames: usize,
}

impl WriteBuf {
    /// An empty buffer pre-sized so the steady-state batch never grows it.
    pub fn with_capacity(cap: usize) -> Self {
        WriteBuf {
            buf: Vec::with_capacity(cap),
            at: 0,
            frames: 0,
        }
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.at == self.buf.len()
    }

    /// Bytes pending (encoded but not yet written).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Frames appended since the buffer was last empty.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Encodes `frame` in place (no intermediate buffer).
    pub fn push_frame(&mut self, frame: &WireFrame) {
        encode_frame(frame, &mut self.buf);
        self.frames += 1;
    }

    /// The pending byte range, for `write()`.
    pub fn pending_bytes(&self) -> &[u8] {
        &self.buf[self.at..]
    }

    /// Consumes `k` written bytes. Returns `Some(frames)` when the write
    /// emptied the buffer (the completed batch size, for the histogram)
    /// and recycles capacity; `None` while bytes remain.
    pub fn consume(&mut self, k: usize) -> Option<usize> {
        self.at += k;
        debug_assert!(self.at <= self.buf.len());
        if self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
            let batch = self.frames;
            self.frames = 0;
            Some(batch)
        } else {
            None
        }
    }

    /// Drops everything pending (connection died). Returns the frame
    /// count lost, for the wire-drop counters.
    pub fn reset(&mut self) -> usize {
        self.buf.clear();
        self.at = 0;
        std::mem::take(&mut self.frames)
    }

    /// Current heap capacity (for the no-realloc assertions).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Current heap base pointer (for the no-realloc assertions).
    pub fn as_ptr(&self) -> *const u8 {
        self.buf.as_ptr()
    }
}

/// Counters and the frames-per-write histogram the io thread hands back
/// at shutdown, merged into the node's [`crate::telemetry::NodeCounters`].
#[derive(Debug, Default)]
pub struct IoStats {
    /// `write()` syscalls issued on data connections.
    pub write_syscalls: u64,
    /// `read()` syscalls that returned data.
    pub read_syscalls: u64,
    /// Heartbeats written on idle links.
    pub heartbeats: u64,
    /// Successful re-dials beyond the first connection per link.
    pub reconnects: u64,
    /// Frames lost with a dying connection or shed at the out-buffer
    /// cap — wire drops the protocol's retransmission tolerates.
    pub conn_frames_dropped: u64,
    /// Frames per buffer-emptying `write()` (the coalescing win,
    /// observable rather than inferred).
    pub batch: LogHistogram,
}

/// Handle the protocol loop holds on the event-loop data plane.
pub(crate) struct EventPlane {
    tx: TrackedSender<(NodeId, WireFrame)>,
    stats: Arc<ChannelStats>,
    wake: UnixStream,
    sleeping: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    join: JoinHandle<IoStats>,
}

impl EventPlane {
    /// Spawns the `node.io` thread owning `listener` and one outbound
    /// connection per `(neighbour, address)` pair.
    pub fn spawn(
        my_id: NodeId,
        listener: NetListener,
        peers: Vec<(NodeId, String)>,
        inbound: TrackedSender<(NodeId, WireFrame)>,
        seed: u64,
    ) -> io::Result<Self> {
        let model = crate::conc::model(&TUNING);
        let (tx, rx, stats) =
            tracked_channel::<(NodeId, WireFrame)>(COMPONENT, model.channel_decl("node.ioq"));
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sleeping = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let sleeping2 = sleeping.clone();
        let join = spawn_registered(COMPONENT, "node.io", move || {
            IoLoop::new(
                my_id, listener, peers, rx, inbound, wake_rx, stop2, sleeping2, seed,
            )
            .run()
        });
        Ok(EventPlane {
            tx,
            stats,
            wake: wake_tx,
            sleeping,
            stop,
            join,
        })
    }

    /// Enqueues one frame for `to`. Blocks when `node.ioq` is full — the
    /// declared backpressure edge. Call [`EventPlane::wake`] after a
    /// burst (not per frame: one wake byte covers a whole outbox drain).
    pub fn send(&self, to: NodeId, frame: WireFrame) -> SendOutcome {
        self.tx.send((to, frame))
    }

    /// Nudges the io thread's `poll` (self-pipe byte; a full pipe
    /// already guarantees a pending wakeup, so `WouldBlock` is success).
    /// Elided when the io thread is provably awake: it re-drains the
    /// queue *after* publishing `sleeping`, so a sender that read
    /// `sleeping == false` has its frames picked up by that drain — two
    /// syscalls saved per outbox burst on the hot path.
    pub fn wake(&self) {
        if self.sleeping.load(Ordering::SeqCst) {
            let _ = (&self.wake).write(&[1u8]);
        }
    }

    /// Backpressure stalls observed on `node.ioq` so far.
    pub fn stalls(&self) -> u64 {
        self.stats.stall_count()
    }

    /// Stops the io thread (best-effort flush of pending frames inside
    /// `io_flush_grace`) and returns its stats.
    pub fn shutdown(self) -> IoStats {
        self.stop.store(true, Ordering::Relaxed);
        let _ = (&self.wake).write(&[1u8]);
        drop(self.tx);
        self.join.join().unwrap_or_default()
    }
}

/// Worst-case encoded frame size (length prefix + body), the margin the
/// out-buffer cap check leaves before appending.
const FRAME_MAX: usize = 4 + MAX_FRAME_LEN as usize;

struct OutLink {
    peer: NodeId,
    addr: String,
    stream: Option<NetStream>,
    out: WriteBuf,
    /// Dial attempts this connection session (resets on success).
    attempt: u32,
    incarnation: u32,
    /// Next dial deadline while disconnected.
    next_dial: Instant,
    /// Link gave up redialing (peer gone for good / shutdown race).
    dead: bool,
    last_write: Instant,
    hb_clock: u64,
}

struct InConn {
    stream: NetStream,
    reader: FrameReader,
    from: Option<NodeId>,
}

struct IoLoop {
    my_id: NodeId,
    t: &'static ClusterTuning,
    listener: NetListener,
    links: Vec<OutLink>,
    conns: Vec<InConn>,
    ioq: Receiver<(NodeId, WireFrame)>,
    ioq_done: bool,
    inbound: TrackedSender<(NodeId, WireFrame)>,
    wake_rx: UnixStream,
    stop: Arc<AtomicBool>,
    /// Published (SeqCst) right before blocking in `poll`; lets
    /// [`EventPlane::wake`] skip the self-pipe syscall while this thread
    /// is demonstrably processing.
    sleeping: Arc<AtomicBool>,
    rng: ChaCha8Rng,
    poll: PollSet,
    scratch: Vec<u8>,
    hello: Vec<u8>,
    stats: IoStats,
}

impl IoLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        my_id: NodeId,
        listener: NetListener,
        peers: Vec<(NodeId, String)>,
        ioq: Receiver<(NodeId, WireFrame)>,
        inbound: TrackedSender<(NodeId, WireFrame)>,
        wake_rx: UnixStream,
        stop: Arc<AtomicBool>,
        sleeping: Arc<AtomicBool>,
        seed: u64,
    ) -> Self {
        let t = &TUNING;
        let now = Instant::now();
        let links = peers
            .into_iter()
            .map(|(peer, addr)| OutLink {
                peer,
                addr,
                stream: None,
                out: WriteBuf::with_capacity(t.batch_max_bytes + FRAME_MAX),
                attempt: 0,
                incarnation: 0,
                next_dial: now,
                dead: false,
                last_write: now,
                hb_clock: 0,
            })
            .collect();
        IoLoop {
            my_id,
            t,
            listener,
            links,
            conns: Vec::new(),
            ioq,
            ioq_done: false,
            inbound,
            wake_rx,
            stop,
            sleeping,
            rng: ChaCha8Rng::seed_from_u64(seed),
            poll: PollSet::new(),
            scratch: vec![0u8; t.io_read_chunk],
            hello: Vec::with_capacity(FRAME_MAX),
            stats: IoStats::default(),
        }
    }

    fn run(mut self) -> IoStats {
        let mut flush_deadline: Option<Instant> = None;
        loop {
            let stopping = self.stop.load(Ordering::Relaxed);
            self.drain_ioq();
            self.flush_all();
            let now = Instant::now();
            self.run_timers(now, stopping);

            if stopping {
                let deadline = *flush_deadline.get_or_insert_with(|| now + self.t.io_flush_grace());
                let pending = self
                    .links
                    .iter()
                    .any(|l| !l.out.is_empty() && l.stream.is_some());
                if !pending || now >= deadline {
                    break;
                }
                // Only the blocked writes matter now; wait for POLLOUT.
                let timeout = deadline.saturating_duration_since(now);
                self.poll_once(Some(timeout), stopping);
                continue;
            }

            let timeout = self.next_deadline(now);
            // Publish the intent to block, then re-drain: any sender that
            // read `sleeping == false` (and therefore skipped the wake
            // syscall) enqueued before our store in the SeqCst order, so
            // this drain observes its frames and the iteration restarts.
            self.sleeping.store(true, Ordering::SeqCst);
            if self.drain_ioq() {
                self.sleeping.store(false, Ordering::SeqCst);
                continue;
            }
            self.poll_once(Some(timeout), stopping);
            self.sleeping.store(false, Ordering::SeqCst);
        }
        self.stats
    }

    /// Moves queued frames into per-edge write buffers, flushing at the
    /// batch budget and shedding at the hard cap. Returns whether any
    /// frame was drained.
    fn drain_ioq(&mut self) -> bool {
        let mut any = false;
        loop {
            let (to, frame) = match self.ioq.try_recv() {
                Ok(v) => v,
                Err(TryRecvError::Empty) => return any,
                Err(TryRecvError::Disconnected) => {
                    self.ioq_done = true;
                    return any;
                }
            };
            any = true;
            let Some(i) = self.links.iter().position(|l| l.peer == to) else {
                debug_assert!(false, "send to non-neighbour {to}");
                continue;
            };
            let l = &mut self.links[i];
            if l.dead {
                self.stats.conn_frames_dropped += 1;
                continue;
            }
            if l.out.pending() >= self.t.batch_max_bytes
                || l.out.frames() >= self.t.batch_max_frames
            {
                Self::flush_link(l, &mut self.stats);
            }
            if l.out.pending() + FRAME_MAX > self.t.out_buf_cap_bytes {
                // Congested or disconnected peer: bounded buffer, counted
                // wire drop, retransmission recovers.
                self.stats.conn_frames_dropped += 1;
                continue;
            }
            l.out.push_frame(&frame);
        }
    }

    fn flush_all(&mut self) {
        for l in &mut self.links {
            if !l.out.is_empty() {
                Self::flush_link(l, &mut self.stats);
            }
        }
    }

    /// Writes as much of `l.out` as the socket accepts. On error the
    /// connection dies (buffered bytes become counted wire drops) and the
    /// link redials immediately.
    fn flush_link(l: &mut OutLink, stats: &mut IoStats) {
        let Some(stream) = &mut l.stream else { return };
        while !l.out.is_empty() {
            match stream.write(l.out.pending_bytes()) {
                Ok(0) => {
                    Self::disconnect(l, stats);
                    return;
                }
                Ok(k) => {
                    stats.write_syscalls += 1;
                    l.last_write = Instant::now();
                    if let Some(batch) = l.out.consume(k) {
                        stats.batch.record(batch as u64);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    Self::disconnect(l, stats);
                    return;
                }
            }
        }
    }

    fn disconnect(l: &mut OutLink, stats: &mut IoStats) {
        l.stream = None;
        stats.conn_frames_dropped += l.out.reset() as u64;
        l.attempt = 0;
        l.next_dial = Instant::now();
    }

    /// Fires due dials and heartbeats; `poll` sleeps exactly until the
    /// nearest remaining deadline.
    fn run_timers(&mut self, now: Instant, stopping: bool) {
        for i in 0..self.links.len() {
            let l = &mut self.links[i];
            if l.dead {
                continue;
            }
            if l.stream.is_none() {
                if stopping || now < l.next_dial {
                    continue;
                }
                match dial(&l.addr) {
                    Ok(s) => {
                        if s.set_nonblocking(true).is_err() {
                            l.next_dial = now + Duration::from_millis(self.t.backoff_ms(l.attempt));
                            continue;
                        }
                        if l.incarnation > 0 {
                            self.stats.reconnects += 1;
                        }
                        l.incarnation += 1;
                        l.attempt = 0;
                        // The Hello must precede any buffered frames. A
                        // fresh socket's send buffer is empty, so this
                        // tiny write cannot WouldBlock in practice; if it
                        // somehow fails the link just redials.
                        self.hello.clear();
                        encode_frame(
                            &WireFrame::Hello {
                                node: self.my_id as u16,
                                incarnation: l.incarnation,
                            },
                            &mut self.hello,
                        );
                        let mut s = s;
                        match s.write(&self.hello) {
                            Ok(k) if k == self.hello.len() => {
                                self.stats.write_syscalls += 1;
                                l.stream = Some(s);
                                l.last_write = now;
                                Self::flush_link(l, &mut self.stats);
                            }
                            _ => {
                                l.next_dial = now + Duration::from_millis(1);
                            }
                        }
                    }
                    Err(_) => {
                        l.attempt += 1;
                        if l.attempt > self.t.max_dial_attempts {
                            l.dead = true;
                            self.stats.conn_frames_dropped += l.out.reset() as u64;
                            continue;
                        }
                        let backoff = self.t.backoff_ms(l.attempt);
                        let jitter = self.rng.gen_range(0..=backoff / 2);
                        l.next_dial = now + Duration::from_millis(backoff + jitter);
                    }
                }
            } else if !stopping && now.duration_since(l.last_write) >= self.t.heartbeat() {
                l.hb_clock += 1;
                let hb = WireFrame::Heartbeat {
                    node: self.my_id as u16,
                    clock: l.hb_clock,
                };
                l.out.push_frame(&hb);
                self.stats.heartbeats += 1;
                Self::flush_link(l, &mut self.stats);
            }
        }
    }

    /// Distance to the nearest heartbeat/dial deadline (the poll
    /// timeout); the idle ceiling is one heartbeat period.
    fn next_deadline(&self, now: Instant) -> Duration {
        let mut next: Option<Instant> = None;
        let mut consider = |d: Instant| {
            next = Some(match next {
                Some(n) if n <= d => n,
                _ => d,
            });
        };
        for l in &self.links {
            if l.dead {
                continue;
            }
            match &l.stream {
                Some(_) => consider(l.last_write + self.t.heartbeat()),
                None => consider(l.next_dial),
            }
        }
        match next {
            Some(d) => d.saturating_duration_since(now).min(self.t.heartbeat()),
            None => self.t.heartbeat(),
        }
    }

    fn poll_once(&mut self, timeout: Option<Duration>, stopping: bool) {
        self.poll.clear();
        let wake_idx = self.poll.push(self.wake_rx.as_raw_fd(), POLLIN);
        // While stopping only blocked writes matter: skip the read side so
        // chatty peers cannot stretch the flush window.
        let listener_idx = if stopping {
            usize::MAX
        } else {
            self.poll.push(self.listener.fd(), POLLIN)
        };
        let conn_base = self.poll.fds_len();
        let n_conns = if stopping { 0 } else { self.conns.len() };
        for c in self.conns.iter().take(n_conns) {
            self.poll.push(c.stream.fd(), POLLIN);
        }
        let mut out_slots: Vec<(usize, usize)> = Vec::with_capacity(self.links.len());
        for (i, l) in self.links.iter().enumerate() {
            if let Some(s) = &l.stream {
                if !l.out.is_empty() {
                    out_slots.push((self.poll.push(s.fd(), POLLOUT), i));
                }
            }
        }
        if self.poll.poll(timeout).is_err() {
            return;
        }

        // Wake pipe: drain it (level-triggered; bytes are just nudges).
        if self.poll.revents(wake_idx) & (POLLIN | POLLERR | POLLHUP) != 0 {
            let mut sink = [0u8; 256];
            while matches!((&self.wake_rx).read(&mut sink), Ok(k) if k > 0) {}
        }

        // New inbound connections.
        if listener_idx != usize::MAX && self.poll.revents(listener_idx) & POLLIN != 0 {
            loop {
                match self.listener.accept() {
                    Ok(s) => {
                        if s.set_nonblocking(true).is_ok() {
                            self.conns.push(InConn {
                                stream: s,
                                reader: FrameReader::new(),
                                from: None,
                            });
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Readable inbound connections. Slot `s` was registered for
        // `conns[s]`; walking slots in *reverse* keeps that mapping valid
        // across `swap_remove` (a removal at `s` only disturbs indices
        // ≥ s, all already visited — conns accepted this cycle live past
        // the polled range and get polled next cycle).
        for slot in (0..n_conns).rev() {
            let ev = self.poll.revents(conn_base + slot);
            if ev & (POLLIN | POLLERR | POLLHUP | POLLNVAL) == 0 {
                continue;
            }
            if !self.read_conn(slot) {
                self.conns.swap_remove(slot);
            }
        }

        // Writable outbound connections (previously blocked flushes).
        for (slot, link_i) in out_slots {
            if self.poll.revents(slot) & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0 {
                Self::flush_link(&mut self.links[link_i], &mut self.stats);
            }
        }
    }

    /// Drains one readable inbound connection. Returns false when the
    /// connection must be dropped (EOF, error, garbage, pre-Hello data).
    fn read_conn(&mut self, i: usize) -> bool {
        loop {
            let k = match self.conns[i].stream.read(&mut self.scratch) {
                Ok(0) => return false,
                Ok(k) => k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            };
            self.stats.read_syscalls += 1;
            let conn = &mut self.conns[i];
            conn.reader.extend(&self.scratch[..k]);
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(WireFrame::Hello { node, .. })) => conn.from = Some(node as NodeId),
                    Ok(Some(frame)) => match conn.from {
                        // Frames before the Hello: unidentified
                        // connection, drop it (the dialer re-Hellos).
                        None => return false,
                        Some(p) => {
                            // Shed outcomes are counted wire drops; the
                            // io thread never blocks here (that non-edge
                            // keeps the cross-node wait graph acyclic).
                            if self.inbound.send((p, frame)) == SendOutcome::Disconnected {
                                return false;
                            }
                        }
                    },
                    Ok(None) => break,
                    Err(_) => return false, // garbage on the wire
                }
            }
            if k < self.scratch.len() {
                return true; // short read: socket drained
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::message::GhostId;
    use ssmfp_core::wire::WireMessage;

    fn data_frame(seq: u64) -> WireFrame {
        WireFrame::Offer {
            d: 4,
            msg: WireMessage {
                payload: seq,
                color: (seq % 3) as u8,
                ghost: GhostId::Valid(seq),
            },
            nonce: seq,
        }
    }

    /// The zero-realloc pin for the hot path: once warmed to the batch
    /// budget, encode/flush cycles never move or grow the buffer.
    #[test]
    fn steady_state_write_path_never_reallocs() {
        let mut wb = WriteBuf::with_capacity(TUNING.batch_max_bytes + FRAME_MAX);
        // Warm one full batch.
        let mut seq = 0u64;
        while wb.pending() < TUNING.batch_max_bytes {
            wb.push_frame(&data_frame(seq));
            seq += 1;
        }
        let batch_frames = wb.frames();
        assert!(batch_frames > 0);
        assert_eq!(wb.consume(wb.pending()), Some(batch_frames));
        let (ptr, cap) = (wb.as_ptr(), wb.capacity());
        // 200 steady-state batch cycles: same allocation throughout.
        for cycle in 0..200u64 {
            while wb.pending() < TUNING.batch_max_bytes {
                wb.push_frame(&data_frame(seq));
                seq += 1;
            }
            // Partial then completing writes both recycle in place.
            let half = wb.pending() / 2;
            assert_eq!(wb.consume(half), None);
            assert!(wb.consume(wb.pending()).is_some());
            assert_eq!(wb.as_ptr(), ptr, "hot path reallocated on cycle {cycle}");
            assert_eq!(wb.capacity(), cap, "hot path grew on cycle {cycle}");
        }
    }

    /// Frames-per-write accounting: a batch completed across partial
    /// writes is attributed once, with the full frame count.
    #[test]
    fn write_buf_counts_frames_per_completed_batch() {
        let mut wb = WriteBuf::with_capacity(4096);
        for seq in 0..10 {
            wb.push_frame(&data_frame(seq));
        }
        assert_eq!(wb.frames(), 10);
        let total = wb.pending();
        assert_eq!(wb.consume(total / 3), None);
        assert_eq!(wb.consume(total - total / 3), Some(10));
        assert!(wb.is_empty());
        assert_eq!(wb.frames(), 0);
    }

    #[test]
    fn reset_reports_dropped_frames() {
        let mut wb = WriteBuf::with_capacity(1024);
        for seq in 0..7 {
            wb.push_frame(&data_frame(seq));
        }
        assert_eq!(wb.reset(), 7);
        assert!(wb.is_empty());
        assert_eq!(wb.pending(), 0);
    }

    /// The poll shim against a real socketpair: writability up front,
    /// readability only after bytes land, timeouts when idle.
    #[test]
    fn poll_set_reports_readiness_on_a_socketpair() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut ps = PollSet::new();

        // Nothing to read yet: a pure POLLIN wait times out.
        ps.clear();
        let ri = ps.push(b.as_raw_fd(), POLLIN);
        let n = ps.poll(Some(Duration::from_millis(1))).unwrap();
        assert_eq!(n, 0);
        assert_eq!(ps.revents(ri) & POLLIN, 0);

        // An empty socket is writable immediately.
        ps.clear();
        let wi = ps.push(a.as_raw_fd(), POLLOUT);
        assert_eq!(ps.poll(Some(Duration::from_millis(100))).unwrap(), 1);
        assert_ne!(ps.revents(wi) & POLLOUT, 0);

        // After a write, the peer polls readable.
        (&a).write_all(&[42u8, 43]).unwrap();
        ps.clear();
        let ri = ps.push(b.as_raw_fd(), POLLIN);
        assert_eq!(ps.poll(Some(Duration::from_millis(100))).unwrap(), 1);
        assert_ne!(ps.revents(ri) & POLLIN, 0);
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 2);
    }
}
