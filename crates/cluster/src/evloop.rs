//! The readiness-based event loop — since PR 8 the *entire* node.
//!
//! One `node.main` thread per node multiplexes *every* file descriptor
//! the node owns — the control pipe to its supervising shard, the
//! listener, all inbound connections and all outbound connections —
//! through `poll(2)`, and runs the protocol engine between I/O bursts.
//! PR 7's separate `node.io` thread (readiness loop fed by a bounded
//! channel plus a self-pipe wake) is gone: [`NodeLoop`] is driven
//! directly by `node_main`, so outbound frames append to per-connection
//! buffers without crossing a thread boundary and inbound frames surface
//! in a plain vector the caller drains each iteration. Engine work is a
//! deadline task: the caller passes the distance to its next protocol
//! tick as the poll budget and the loop sleeps exactly until the nearest
//! deadline — tick, status, heartbeat, or reconnect.
//!
//! ## Batching policy
//!
//! Outbound frames append straight into a per-connection [`WriteBuf`]
//! (length-prefixed wire bytes, no intermediate `Vec` per frame) and one
//! `write()` ships everything pending. When the node is idle a frame is
//! flushed the moment it is enqueued; under load the outbox drains in
//! bursts and frames coalesce naturally, bounded by the
//! [`ClusterTuning`] byte/frame budgets (`batch_max_bytes`,
//! `batch_max_frames`). The buffer never reallocates in steady state: it
//! is pre-sized to the batch budget and `consume` recycles capacity.
//!
//! Per-directed-edge FIFO ordering is preserved under coalescing: the
//! protocol enqueues frames in send order, they append to each edge's
//! buffer in order, and a buffer is always written front-to-back —
//! coalescing only changes syscall boundaries, never byte order on a
//! connection.
//!
//! ## Control pipe
//!
//! The ctrl fd sits in the same poll set as the sockets. Reads are
//! *single-shot*: one `read(2)` per `POLLIN` readiness on a blocking fd
//! never blocks, and level-triggered `poll` re-arms anything left
//! unread. This deliberately avoids `BufReader`, whose invisible
//! buffering holds complete lines where `poll` cannot see them. Writes
//! (status lines, the final report) are plain blocking `write_all`: the
//! supervising shard drains node pipes unconditionally, and this edge is
//! declared untimed in the concurrency model — it is the one leaf-to-root
//! arc of an acyclic control tree.
//!
//! ## Failure policy
//!
//! A connection that errors mid-stream drops its buffered bytes (a
//! counted burst of wire drops — a partially-written frame cannot be
//! resumed on a new connection, and the protocol's retransmission
//! recovers), then redials with the shared backoff schedule. A peer that
//! stops reading cannot grow the buffer past `out_buf_cap_bytes`:
//! beyond it, new frames for that edge are shed and counted.

use crate::node::ListenSpec;
use crate::telemetry::LogHistogram;
use crate::tuning::{ClusterTuning, TUNING};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::wire::{encode_frame, FrameReader, WireFrame, MAX_FRAME_LEN};
use ssmfp_topology::NodeId;
use std::fs::File;
use std::io::{self, Read, Write};
use std::mem::ManuallyDrop;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

/// Raw syscall bindings. The workspace vendors no `libc`, and the only
/// system interfaces the event loop needs are a handful of calls with a
/// stable, tiny ABI — so they are declared by hand for the Linux targets
/// the cluster runtime already assumes (Unix-domain sockets everywhere).
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[allow(non_camel_case_types)]
    pub struct pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// `struct rlimit` from `<sys/resource.h>` (`rlim_t` is `u64` on
    /// every 64-bit Linux target).
    #[repr(C)]
    #[derive(Clone, Copy)]
    #[allow(non_camel_case_types)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    /// `RLIMIT_NOFILE` on Linux.
    pub const RLIMIT_NOFILE: i32 = 7;
    /// `fcntl` get/set file-status-flags commands.
    pub const F_GETFL: i32 = 3;
    pub const F_SETFL: i32 = 4;
    /// `O_NONBLOCK` on Linux.
    pub const O_NONBLOCK: i32 = 0o4000;

    extern "C" {
        /// `nfds_t` is `c_ulong` (= `u64` on every 64-bit Linux target).
        pub fn poll(fds: *mut pollfd, nfds: u64, timeout: i32) -> i32;
        pub fn getrlimit(resource: i32, rlim: *mut rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const rlimit) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }
}

/// Readable (data or EOF pending).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, delivered in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// fd not open (always polled, delivered in `revents` only).
pub const POLLNVAL: i16 = 0x020;

/// Best-effort raise of the soft `RLIMIT_NOFILE` toward `want` (capped
/// by the hard limit). An inproc 100-node grid holds both ends of every
/// data connection in one process — comfortably past the common 1024
/// default — so the orchestrator calls this before spawning anything.
/// Returns the resulting soft limit (0 if even `getrlimit` failed).
pub fn raise_nofile_limit(want: u64) -> u64 {
    unsafe {
        let mut cur = sys::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if sys::getrlimit(sys::RLIMIT_NOFILE, &mut cur) != 0 {
            return 0;
        }
        if cur.rlim_cur >= want {
            return cur.rlim_cur;
        }
        let target = want.min(cur.rlim_max);
        let raised = sys::rlimit {
            rlim_cur: target,
            rlim_max: cur.rlim_max,
        };
        if sys::setrlimit(sys::RLIMIT_NOFILE, &raised) == 0 {
            target
        } else {
            cur.rlim_cur
        }
    }
}

/// Toggles `O_NONBLOCK` on a raw fd — for pipe fds (child stdin/stdout)
/// that have no `set_nonblocking` in std.
pub fn set_nonblocking_fd(fd: RawFd, nb: bool) -> io::Result<()> {
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        let flags = if nb {
            flags | sys::O_NONBLOCK
        } else {
            flags & !sys::O_NONBLOCK
        };
        if sys::fcntl(fd, sys::F_SETFL, flags) < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

/// A reusable `poll(2)` interest set: build it each cycle (O(degree),
/// the allocation is recycled), poll once, read `revents` back by index.
pub struct PollSet {
    fds: Vec<sys::pollfd>,
}

impl Default for PollSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        PollSet { fds: Vec::new() }
    }

    /// Removes every registered fd (keeps capacity).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` with the given interest; returns its slot index.
    pub fn push(&mut self, fd: RawFd, events: i16) -> usize {
        self.fds.push(sys::pollfd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Blocks until an fd is ready or `timeout` elapses (`None` = wait
    /// forever). Returns the number of ready fds. EINTR retries.
    pub fn poll(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        // Round sub-millisecond deadlines *up*: a 0ms timeout would turn
        // a near deadline into a busy spin.
        let ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
        };
        loop {
            let rc = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len() as u64, ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    /// The result events of slot `idx` from the last [`PollSet::poll`].
    pub fn revents(&self, idx: usize) -> i16 {
        self.fds[idx].revents
    }

    /// Number of registered fds (slot indices are `0..fds_len()`).
    pub fn fds_len(&self) -> usize {
        self.fds.len()
    }
}

/// One stream socket of either flavour, with raw-fd access for the poll
/// set. (The PR-5 plane erased streams to `Box<dyn Read>`, which made
/// readiness multiplexing impossible.)
pub enum NetStream {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream (Nagle disabled by [`dial`]/[`NetListener::accept`]).
    Tcp(TcpStream),
}

impl NetStream {
    /// The raw fd, for poll registration.
    pub fn fd(&self) -> RawFd {
        match self {
            NetStream::Unix(s) => s.as_raw_fd(),
            NetStream::Tcp(s) => s.as_raw_fd(),
        }
    }

    /// Toggles nonblocking mode.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.set_nonblocking(nb),
            NetStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.read(buf),
            NetStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Unix(s) => s.write(buf),
            NetStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Unix(s) => s.flush(),
            NetStream::Tcp(s) => s.flush(),
        }
    }
}

/// A node's listener of either flavour (always nonblocking).
pub enum NetListener {
    /// Unix-domain listener at `<dir>/node<k>.sock`.
    Unix(UnixListener),
    /// TCP listener on `127.0.0.1`, OS-assigned port.
    Tcp(TcpListener),
}

impl NetListener {
    /// Binds per `spec` and returns the listener plus its dialable
    /// address string (`uds:<path>` / `tcp:<addr>`).
    pub fn bind(spec: &ListenSpec, node: NodeId) -> io::Result<(Self, String)> {
        match spec {
            ListenSpec::Uds { dir } => {
                let path = dir.join(format!("node{node}.sock"));
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Ok((NetListener::Unix(l), format!("uds:{}", path.display())))
            }
            ListenSpec::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                l.set_nonblocking(true)?;
                let addr = l.local_addr()?;
                Ok((NetListener::Tcp(l), format!("tcp:{addr}")))
            }
        }
    }

    /// The raw fd, for poll registration.
    pub fn fd(&self) -> RawFd {
        match self {
            NetListener::Unix(l) => l.as_raw_fd(),
            NetListener::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one connection (nonblocking: `WouldBlock` when none).
    /// The accepted stream inherits nonblocking off; callers pick.
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(NetStream::Unix(s))
            }
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(NetStream::Tcp(s))
            }
        }
    }
}

/// Dials a `uds:<path>` / `tcp:<addr>` address string (blocking connect;
/// both flavours complete immediately on localhost).
pub fn dial(addr: &str) -> io::Result<NetStream> {
    if let Some(path) = addr.strip_prefix("uds:") {
        Ok(NetStream::Unix(UnixStream::connect(path)?))
    } else if let Some(sock) = addr.strip_prefix("tcp:") {
        let s = TcpStream::connect(sock)?;
        let _ = s.set_nodelay(true);
        Ok(NetStream::Tcp(s))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bad peer address {addr:?}"),
        ))
    }
}

/// A per-connection outbound byte buffer: frames are encoded straight
/// into it (append-only, front-to-back writes), so the hot path performs
/// no per-frame allocation and one `write()` can carry a whole batch.
pub struct WriteBuf {
    buf: Vec<u8>,
    at: usize,
    frames: usize,
}

impl WriteBuf {
    /// An empty buffer pre-sized so the steady-state batch never grows it.
    pub fn with_capacity(cap: usize) -> Self {
        WriteBuf {
            buf: Vec::with_capacity(cap),
            at: 0,
            frames: 0,
        }
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.at == self.buf.len()
    }

    /// Bytes pending (encoded but not yet written).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Frames appended since the buffer was last empty.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Encodes `frame` in place (no intermediate buffer).
    pub fn push_frame(&mut self, frame: &WireFrame) {
        encode_frame(frame, &mut self.buf);
        self.frames += 1;
    }

    /// The pending byte range, for `write()`.
    pub fn pending_bytes(&self) -> &[u8] {
        &self.buf[self.at..]
    }

    /// Consumes `k` written bytes. Returns `Some(frames)` when the write
    /// emptied the buffer (the completed batch size, for the histogram)
    /// and recycles capacity; `None` while bytes remain.
    pub fn consume(&mut self, k: usize) -> Option<usize> {
        self.at += k;
        debug_assert!(self.at <= self.buf.len());
        if self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
            let batch = self.frames;
            self.frames = 0;
            Some(batch)
        } else {
            None
        }
    }

    /// Drops everything pending (connection died). Returns the frame
    /// count lost, for the wire-drop counters.
    pub fn reset(&mut self) -> usize {
        self.buf.clear();
        self.at = 0;
        std::mem::take(&mut self.frames)
    }

    /// Current heap capacity (for the no-realloc assertions).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Current heap base pointer (for the no-realloc assertions).
    pub fn as_ptr(&self) -> *const u8 {
        self.buf.as_ptr()
    }
}

/// Counters and the frames-per-write histogram the loop accumulates,
/// merged into the node's [`crate::telemetry::NodeCounters`] at the end.
#[derive(Debug, Default)]
pub struct IoStats {
    /// `write()` syscalls issued on data connections.
    pub write_syscalls: u64,
    /// `read()` syscalls that returned data.
    pub read_syscalls: u64,
    /// Heartbeats written on idle links.
    pub heartbeats: u64,
    /// Successful re-dials beyond the first connection per link.
    pub reconnects: u64,
    /// Frames lost with a dying connection or shed at the out-buffer
    /// cap — wire drops the protocol's retransmission tolerates.
    pub conn_frames_dropped: u64,
    /// Frames per buffer-emptying `write()` (the coalescing win,
    /// observable rather than inferred).
    pub batch: LogHistogram,
}

/// Worst-case encoded frame size (length prefix + body), the margin the
/// out-buffer cap check leaves before appending.
const FRAME_MAX: usize = 4 + MAX_FRAME_LEN as usize;

/// The node's control pipe to its supervising shard.
pub enum CtrlPipe {
    /// One bidirectional socketpair end (inproc mode: the shard holds
    /// the other end).
    Stream(UnixStream),
    /// This process's raw stdin/stdout (`--node-worker` process mode).
    /// Read and written as bare fds — never through `Stdin`'s
    /// `BufReader`, whose invisible buffering would hold complete lines
    /// where `poll` cannot see them.
    Stdio,
}

/// The in-loop form of [`CtrlPipe`]: raw single-shot reads plus a
/// blocking writer. `ManuallyDrop` keeps the process's stdio fds open
/// when the wrapper is dropped.
enum CtrlIo {
    Stream(UnixStream),
    Stdio {
        r: ManuallyDrop<File>,
        w: ManuallyDrop<File>,
    },
}

impl CtrlIo {
    fn new(pipe: CtrlPipe) -> Self {
        match pipe {
            CtrlPipe::Stream(s) => CtrlIo::Stream(s),
            CtrlPipe::Stdio => CtrlIo::Stdio {
                r: ManuallyDrop::new(unsafe { File::from_raw_fd(0) }),
                w: ManuallyDrop::new(unsafe { File::from_raw_fd(1) }),
            },
        }
    }

    fn read_fd(&self) -> RawFd {
        match self {
            CtrlIo::Stream(s) => s.as_raw_fd(),
            CtrlIo::Stdio { r, .. } => r.as_raw_fd(),
        }
    }

    /// One `read(2)`. The fd is blocking, so this is only called after
    /// `poll` reported `POLLIN` — a single read on a readable fd never
    /// blocks, and level-triggered poll re-arms any remainder.
    fn read_once(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            CtrlIo::Stream(s) => (&*s).read(buf),
            CtrlIo::Stdio { r, .. } => (&**r).read(buf),
        }
    }
}

impl Write for CtrlIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            CtrlIo::Stream(s) => (&*s).write(buf),
            CtrlIo::Stdio { w, .. } => (&**w).write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            CtrlIo::Stream(s) => (&*s).flush(),
            CtrlIo::Stdio { w, .. } => (&**w).flush(),
        }
    }
}

struct OutLink {
    peer: NodeId,
    addr: String,
    stream: Option<NetStream>,
    out: WriteBuf,
    /// Dial attempts this connection session (resets on success).
    attempt: u32,
    incarnation: u32,
    /// Next dial deadline while disconnected.
    next_dial: Instant,
    /// Link gave up redialing (peer gone for good / shutdown race).
    dead: bool,
    last_write: Instant,
    hb_clock: u64,
}

struct InConn {
    stream: NetStream,
    reader: FrameReader,
    from: Option<NodeId>,
}

/// The single-thread node: every fd the node owns in one poll set, with
/// the protocol engine driven by the caller between I/O bursts.
///
/// `node_main` pumps the loop with the distance to its next protocol
/// deadline, drains [`NodeLoop::inbound`] / [`NodeLoop::ctrl_lines`],
/// steps the engine, and enqueues its outbox through [`NodeLoop::send`].
pub(crate) struct NodeLoop {
    my_id: NodeId,
    t: &'static ClusterTuning,
    listener: NetListener,
    links: Vec<OutLink>,
    conns: Vec<InConn>,
    ctrl: CtrlIo,
    ctrl_eof: bool,
    ctrl_acc: Vec<u8>,
    rng: ChaCha8Rng,
    poll: PollSet,
    scratch: Vec<u8>,
    hello: Vec<u8>,
    stats: IoStats,
    /// Data-plane frames read since the caller last drained.
    pub inbound: Vec<(NodeId, WireFrame)>,
    /// Complete control lines read since the caller last drained.
    pub ctrl_lines: Vec<String>,
}

impl NodeLoop {
    pub fn new(my_id: NodeId, listener: NetListener, ctrl: CtrlPipe, seed: u64) -> Self {
        let t = &TUNING;
        NodeLoop {
            my_id,
            t,
            listener,
            links: Vec::new(),
            conns: Vec::new(),
            ctrl: CtrlIo::new(ctrl),
            ctrl_eof: false,
            ctrl_acc: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            poll: PollSet::new(),
            scratch: vec![0u8; t.io_read_chunk],
            hello: Vec::with_capacity(FRAME_MAX),
            stats: IoStats::default(),
            inbound: Vec::new(),
            ctrl_lines: Vec::new(),
        }
    }

    /// Registers the outbound links (once the peer map arrives over
    /// ctrl); dialing starts on the next pump.
    pub fn connect_peers(&mut self, peers: Vec<(NodeId, String)>) {
        let now = Instant::now();
        self.links = peers
            .into_iter()
            .map(|(peer, addr)| OutLink {
                peer,
                addr,
                stream: None,
                out: WriteBuf::with_capacity(self.t.batch_max_bytes + FRAME_MAX),
                attempt: 0,
                incarnation: 0,
                next_dial: now,
                dead: false,
                last_write: now,
                hb_clock: 0,
            })
            .collect();
    }

    /// True once the supervisor closed the control pipe (treat as stop).
    pub fn ctrl_eof(&self) -> bool {
        self.ctrl_eof
    }

    /// Blocking line write to the supervisor — the declared untimed
    /// `SockWrite(shard.super)` edge (the shard drains unconditionally).
    pub fn write_ctrl(&mut self, text: &str) -> io::Result<()> {
        self.ctrl.write_all(text.as_bytes())?;
        self.ctrl.flush()
    }

    /// The control pipe as a writer, for the multi-line report codec.
    pub fn ctrl_writer(&mut self) -> &mut impl Write {
        &mut self.ctrl
    }

    /// Enqueues one frame for `to`: appends to the edge's write buffer,
    /// flushing at the batch budget and shedding (counted) at the hard
    /// cap.
    pub fn send(&mut self, to: NodeId, frame: &WireFrame) {
        let Some(i) = self.links.iter().position(|l| l.peer == to) else {
            debug_assert!(false, "send to non-neighbour {to}");
            return;
        };
        let l = &mut self.links[i];
        if l.dead {
            self.stats.conn_frames_dropped += 1;
            return;
        }
        if l.out.pending() >= self.t.batch_max_bytes || l.out.frames() >= self.t.batch_max_frames {
            Self::flush_link(l, &mut self.stats);
        }
        if l.out.pending() + FRAME_MAX > self.t.out_buf_cap_bytes {
            // Congested or disconnected peer: bounded buffer, counted
            // wire drop, retransmission recovers.
            self.stats.conn_frames_dropped += 1;
            return;
        }
        l.out.push_frame(frame);
    }

    /// One loop turn: flush pending buffers, fire due timers, then block
    /// in `poll` until I/O readiness or the nearest deadline — capped by
    /// `max_wait`, the caller's distance to its next engine deadline.
    /// Inbound frames and ctrl lines land in the public vectors.
    pub fn pump(&mut self, max_wait: Duration) {
        self.flush_all();
        let now = Instant::now();
        self.run_timers(now, false);
        let timeout = self.next_deadline(now).min(max_wait);
        self.poll_once(Some(timeout), false);
    }

    /// Shutdown flush: keeps writing blocked buffers (POLLOUT waits
    /// only) until everything pending drains or `io_flush_grace`
    /// expires. Undelivered frames become counted wire drops.
    pub fn shutdown_flush(&mut self) {
        let deadline = Instant::now() + self.t.io_flush_grace();
        loop {
            self.flush_all();
            let now = Instant::now();
            let pending = self
                .links
                .iter()
                .any(|l| !l.out.is_empty() && l.stream.is_some());
            if !pending || now >= deadline {
                break;
            }
            self.poll_once(Some(deadline.saturating_duration_since(now)), true);
        }
        for l in &mut self.links {
            self.stats.conn_frames_dropped += l.out.reset() as u64;
        }
    }

    /// Hands the accumulated I/O stats to the caller (for the final
    /// report merge).
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    fn flush_all(&mut self) {
        for l in &mut self.links {
            if !l.out.is_empty() {
                Self::flush_link(l, &mut self.stats);
            }
        }
    }

    /// Writes as much of `l.out` as the socket accepts. On error the
    /// connection dies (buffered bytes become counted wire drops) and the
    /// link redials immediately.
    fn flush_link(l: &mut OutLink, stats: &mut IoStats) {
        let Some(stream) = &mut l.stream else { return };
        while !l.out.is_empty() {
            match stream.write(l.out.pending_bytes()) {
                Ok(0) => {
                    Self::disconnect(l, stats);
                    return;
                }
                Ok(k) => {
                    stats.write_syscalls += 1;
                    l.last_write = Instant::now();
                    if let Some(batch) = l.out.consume(k) {
                        stats.batch.record(batch as u64);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    Self::disconnect(l, stats);
                    return;
                }
            }
        }
    }

    fn disconnect(l: &mut OutLink, stats: &mut IoStats) {
        l.stream = None;
        stats.conn_frames_dropped += l.out.reset() as u64;
        l.attempt = 0;
        l.next_dial = Instant::now();
    }

    /// Fires due dials and heartbeats; `poll` sleeps exactly until the
    /// nearest remaining deadline.
    fn run_timers(&mut self, now: Instant, stopping: bool) {
        for i in 0..self.links.len() {
            let l = &mut self.links[i];
            if l.dead {
                continue;
            }
            if l.stream.is_none() {
                if stopping || now < l.next_dial {
                    continue;
                }
                match dial(&l.addr) {
                    Ok(s) => {
                        if s.set_nonblocking(true).is_err() {
                            l.next_dial = now + Duration::from_millis(self.t.backoff_ms(l.attempt));
                            continue;
                        }
                        if l.incarnation > 0 {
                            self.stats.reconnects += 1;
                        }
                        l.incarnation += 1;
                        l.attempt = 0;
                        // The Hello must precede any buffered frames. A
                        // fresh socket's send buffer is empty, so this
                        // tiny write cannot WouldBlock in practice; if it
                        // somehow fails the link just redials.
                        self.hello.clear();
                        encode_frame(
                            &WireFrame::Hello {
                                node: self.my_id as u16,
                                incarnation: l.incarnation,
                            },
                            &mut self.hello,
                        );
                        let mut s = s;
                        match s.write(&self.hello) {
                            Ok(k) if k == self.hello.len() => {
                                self.stats.write_syscalls += 1;
                                l.stream = Some(s);
                                l.last_write = now;
                                Self::flush_link(l, &mut self.stats);
                            }
                            _ => {
                                l.next_dial = now + Duration::from_millis(1);
                            }
                        }
                    }
                    Err(_) => {
                        l.attempt += 1;
                        if l.attempt > self.t.max_dial_attempts {
                            l.dead = true;
                            self.stats.conn_frames_dropped += l.out.reset() as u64;
                            continue;
                        }
                        let backoff = self.t.backoff_ms(l.attempt);
                        let jitter = self.rng.gen_range(0..=backoff / 2);
                        l.next_dial = now + Duration::from_millis(backoff + jitter);
                    }
                }
            } else if !stopping && now.duration_since(l.last_write) >= self.t.heartbeat() {
                l.hb_clock += 1;
                let hb = WireFrame::Heartbeat {
                    node: self.my_id as u16,
                    clock: l.hb_clock,
                };
                l.out.push_frame(&hb);
                self.stats.heartbeats += 1;
                Self::flush_link(l, &mut self.stats);
            }
        }
    }

    /// Distance to the nearest heartbeat/dial deadline (the poll
    /// timeout); the idle ceiling is one heartbeat period.
    fn next_deadline(&self, now: Instant) -> Duration {
        let mut next: Option<Instant> = None;
        let mut consider = |d: Instant| {
            next = Some(match next {
                Some(n) if n <= d => n,
                _ => d,
            });
        };
        for l in &self.links {
            if l.dead {
                continue;
            }
            match &l.stream {
                Some(_) => consider(l.last_write + self.t.heartbeat()),
                None => consider(l.next_dial),
            }
        }
        match next {
            Some(d) => d.saturating_duration_since(now).min(self.t.heartbeat()),
            None => self.t.heartbeat(),
        }
    }

    fn poll_once(&mut self, timeout: Option<Duration>, stopping: bool) {
        self.poll.clear();
        // While stopping only blocked writes matter: skip the read side
        // so chatty peers cannot stretch the flush window.
        let ctrl_idx = if stopping || self.ctrl_eof {
            usize::MAX
        } else {
            self.poll.push(self.ctrl.read_fd(), POLLIN)
        };
        let listener_idx = if stopping {
            usize::MAX
        } else {
            self.poll.push(self.listener.fd(), POLLIN)
        };
        let conn_base = self.poll.fds_len();
        let n_conns = if stopping { 0 } else { self.conns.len() };
        for c in self.conns.iter().take(n_conns) {
            self.poll.push(c.stream.fd(), POLLIN);
        }
        let mut out_slots: Vec<(usize, usize)> = Vec::with_capacity(self.links.len());
        for (i, l) in self.links.iter().enumerate() {
            if let Some(s) = &l.stream {
                if !l.out.is_empty() {
                    out_slots.push((self.poll.push(s.fd(), POLLOUT), i));
                }
            }
        }
        if self.poll.poll(timeout).is_err() {
            return;
        }

        // Control pipe: one single-shot read per readiness.
        if ctrl_idx != usize::MAX && self.poll.revents(ctrl_idx) & (POLLIN | POLLERR | POLLHUP) != 0
        {
            self.read_ctrl();
        }

        // New inbound connections.
        if listener_idx != usize::MAX && self.poll.revents(listener_idx) & POLLIN != 0 {
            loop {
                match self.listener.accept() {
                    Ok(s) => {
                        if s.set_nonblocking(true).is_ok() {
                            self.conns.push(InConn {
                                stream: s,
                                reader: FrameReader::new(),
                                from: None,
                            });
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Readable inbound connections. Slot `s` was registered for
        // `conns[s]`; walking slots in *reverse* keeps that mapping valid
        // across `swap_remove` (a removal at `s` only disturbs indices
        // ≥ s, all already visited — conns accepted this cycle live past
        // the polled range and get polled next cycle).
        for slot in (0..n_conns).rev() {
            let ev = self.poll.revents(conn_base + slot);
            if ev & (POLLIN | POLLERR | POLLHUP | POLLNVAL) == 0 {
                continue;
            }
            if !self.read_conn(slot) {
                self.conns.swap_remove(slot);
            }
        }

        // Writable outbound connections (previously blocked flushes).
        for (slot, link_i) in out_slots {
            if self.poll.revents(slot) & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0 {
                Self::flush_link(&mut self.links[link_i], &mut self.stats);
            }
        }
    }

    /// One single-shot ctrl read; complete lines move to `ctrl_lines`.
    fn read_ctrl(&mut self) {
        match self.ctrl.read_once(&mut self.scratch) {
            Ok(0) => self.ctrl_eof = true,
            Ok(k) => {
                self.ctrl_acc.extend_from_slice(&self.scratch[..k]);
                while let Some(nl) = self.ctrl_acc.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = self.ctrl_acc.drain(..=nl).collect();
                    let text = String::from_utf8_lossy(&line[..nl]).trim_end().to_string();
                    if !text.is_empty() {
                        self.ctrl_lines.push(text);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => self.ctrl_eof = true,
        }
    }

    /// Drains one readable inbound connection. Returns false when the
    /// connection must be dropped (EOF, error, garbage, pre-Hello data).
    fn read_conn(&mut self, i: usize) -> bool {
        loop {
            let k = match self.conns[i].stream.read(&mut self.scratch) {
                Ok(0) => return false,
                Ok(k) => k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            };
            self.stats.read_syscalls += 1;
            let conn = &mut self.conns[i];
            conn.reader.extend(&self.scratch[..k]);
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(WireFrame::Hello { node, .. })) => conn.from = Some(node as NodeId),
                    Ok(Some(frame)) => match conn.from {
                        // Frames before the Hello: unidentified
                        // connection, drop it (the dialer re-Hellos).
                        None => return false,
                        Some(p) => self.inbound.push((p, frame)),
                    },
                    Ok(None) => break,
                    Err(_) => return false, // garbage on the wire
                }
            }
            if k < self.scratch.len() {
                return true; // short read: socket drained
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssmfp_core::message::GhostId;
    use ssmfp_core::wire::{ClientStamp, WireMessage};

    fn data_frame(seq: u64) -> WireFrame {
        WireFrame::Offer {
            d: 4,
            msg: WireMessage {
                payload: seq,
                color: (seq % 3) as u8,
                ghost: GhostId::Valid(seq),
                stamp: ClientStamp::NONE,
            },
            nonce: seq,
        }
    }

    /// The zero-realloc pin for the hot path: once warmed to the batch
    /// budget, encode/flush cycles never move or grow the buffer.
    #[test]
    fn steady_state_write_path_never_reallocs() {
        let mut wb = WriteBuf::with_capacity(TUNING.batch_max_bytes + FRAME_MAX);
        // Warm one full batch.
        let mut seq = 0u64;
        while wb.pending() < TUNING.batch_max_bytes {
            wb.push_frame(&data_frame(seq));
            seq += 1;
        }
        let batch_frames = wb.frames();
        assert!(batch_frames > 0);
        assert_eq!(wb.consume(wb.pending()), Some(batch_frames));
        let (ptr, cap) = (wb.as_ptr(), wb.capacity());
        // 200 steady-state batch cycles: same allocation throughout.
        for cycle in 0..200u64 {
            while wb.pending() < TUNING.batch_max_bytes {
                wb.push_frame(&data_frame(seq));
                seq += 1;
            }
            // Partial then completing writes both recycle in place.
            let half = wb.pending() / 2;
            assert_eq!(wb.consume(half), None);
            assert!(wb.consume(wb.pending()).is_some());
            assert_eq!(wb.as_ptr(), ptr, "hot path reallocated on cycle {cycle}");
            assert_eq!(wb.capacity(), cap, "hot path grew on cycle {cycle}");
        }
    }

    /// Frames-per-write accounting: a batch completed across partial
    /// writes is attributed once, with the full frame count.
    #[test]
    fn write_buf_counts_frames_per_completed_batch() {
        let mut wb = WriteBuf::with_capacity(4096);
        for seq in 0..10 {
            wb.push_frame(&data_frame(seq));
        }
        assert_eq!(wb.frames(), 10);
        let total = wb.pending();
        assert_eq!(wb.consume(total / 3), None);
        assert_eq!(wb.consume(total - total / 3), Some(10));
        assert!(wb.is_empty());
        assert_eq!(wb.frames(), 0);
    }

    #[test]
    fn reset_reports_dropped_frames() {
        let mut wb = WriteBuf::with_capacity(1024);
        for seq in 0..7 {
            wb.push_frame(&data_frame(seq));
        }
        assert_eq!(wb.reset(), 7);
        assert!(wb.is_empty());
        assert_eq!(wb.pending(), 0);
    }

    /// The poll shim against a real socketpair: writability up front,
    /// readability only after bytes land, timeouts when idle.
    #[test]
    fn poll_set_reports_readiness_on_a_socketpair() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut ps = PollSet::new();

        // Nothing to read yet: a pure POLLIN wait times out.
        ps.clear();
        let ri = ps.push(b.as_raw_fd(), POLLIN);
        let n = ps.poll(Some(Duration::from_millis(1))).unwrap();
        assert_eq!(n, 0);
        assert_eq!(ps.revents(ri) & POLLIN, 0);

        // An empty socket is writable immediately.
        ps.clear();
        let wi = ps.push(a.as_raw_fd(), POLLOUT);
        assert_eq!(ps.poll(Some(Duration::from_millis(100))).unwrap(), 1);
        assert_ne!(ps.revents(wi) & POLLOUT, 0);

        // After a write, the peer polls readable.
        (&a).write_all(&[42u8, 43]).unwrap();
        ps.clear();
        let ri = ps.push(b.as_raw_fd(), POLLIN);
        assert_eq!(ps.poll(Some(Duration::from_millis(100))).unwrap(), 1);
        assert_ne!(ps.revents(ri) & POLLIN, 0);
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 2);
    }

    /// The nonblocking-fd shim against a real pipe-like fd: flipping
    /// `O_NONBLOCK` on turns an empty-read block into `WouldBlock`.
    #[test]
    fn set_nonblocking_fd_flips_o_nonblock() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        set_nonblocking_fd(a.as_raw_fd(), true).expect("set nonblocking");
        let mut buf = [0u8; 4];
        let err = (&a).read(&mut buf).expect_err("empty nonblocking read");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        set_nonblocking_fd(a.as_raw_fd(), false).expect("clear nonblocking");
    }

    /// `raise_nofile_limit` is monotone and never lowers the soft limit.
    #[test]
    fn raise_nofile_limit_is_best_effort_monotone() {
        let before = raise_nofile_limit(0);
        assert!(before > 0, "getrlimit failed");
        let after = raise_nofile_limit(before);
        assert!(after >= before);
    }
}
