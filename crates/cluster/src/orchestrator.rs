//! Cluster orchestration: spawn an N-node topology, feed it a workload,
//! watch it converge, reconcile the per-node ledgers into a cluster-wide
//! SP verdict, and emit a JSON run report.
//!
//! Two launch modes share every other code path:
//! * **Inproc** — each node is a thread calling [`node_main`] over a
//!   socketpair control pipe (fast, used by tests).
//! * **Proc** — each node is its own OS process (`ssmfp-cluster
//!   --node-worker …`) controlled over stdin/stdout, which is the real
//!   deployment shape.

use crate::chaos::{ChaosSpec, PartitionSpec};
use crate::conc::COMPONENT;
use crate::frame::ghost_to_wire;
use crate::node::{node_main, parse_report_body, IoMode, ListenSpec, NodeConfig, NodeReport};
use crate::telemetry::{LogHistogram, NodeCounters};
use crate::tuning::TUNING;
use crate::workload::{is_ack_ghost, WorkloadKind, WorkloadSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ssmfp_core::conc::{
    register_thread, spawn_registered, tracked_channel, SendOutcome, TrackedSender,
};
use ssmfp_core::{reconcile_ledgers, ClusterVerdict, NodeLedger};
use ssmfp_topology::Graph;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How nodes are launched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunMode {
    /// Threads inside this process.
    Inproc,
    /// One OS process per node, running `<exe> --node-worker …`.
    Proc {
        /// Path to the `ssmfp-cluster` binary.
        exe: PathBuf,
    },
}

/// A full cluster run specification.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Topology label for the report.
    pub topology: String,
    /// The graph itself.
    pub graph: Graph,
    /// Run seed.
    pub seed: u64,
    /// Per-node workload.
    pub workload: WorkloadSpec,
    /// Link chaos.
    pub chaos: ChaosSpec,
    /// Socket flavour.
    pub listen: ListenSpec,
    /// Data plane flavour.
    pub io: IoMode,
    /// Launch mode.
    pub mode: RunMode,
    /// Give up (converged = false) after this long.
    pub timeout: Duration,
}

/// Outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Topology label.
    pub topology: String,
    /// Node count.
    pub n: usize,
    /// Run seed.
    pub seed: u64,
    /// Whether the cluster quiesced before the timeout.
    pub converged: bool,
    /// Wall-clock seconds from `start` to convergence (or timeout).
    pub wall_s: f64,
    /// Cluster-wide SP reconciliation.
    pub verdict: ClusterVerdict,
    /// Primaries delivered end-to-end.
    pub primaries_delivered: u64,
    /// Primaries delivered per wall-clock second.
    pub throughput: f64,
    /// Merged one-way latency histogram (µs).
    pub latency: LogHistogram,
    /// Merged frames-per-write histogram (event plane coalescing).
    pub batch: LogHistogram,
    /// Which data plane the run used.
    pub io: IoMode,
    /// Summed per-node counters.
    pub counters: NodeCounters,
    /// The raw per-node reports.
    pub nodes: Vec<NodeReport>,
}

impl RunReport {
    /// Whether the run met the tentpole bar: converged with a clean
    /// cluster-wide SP verdict.
    pub fn clean(&self) -> bool {
        self.converged && self.verdict.clean()
    }

    /// Hand-rolled JSON (the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let v = &self.verdict;
        let violations: Vec<String> = v.violations.iter().map(|x| format!("{:?}", x)).collect();
        let c = &self.counters;
        format!(
            concat!(
                "{{\n",
                "  \"topology\": \"{}\",\n",
                "  \"n\": {},\n",
                "  \"seed\": {},\n",
                "  \"converged\": {},\n",
                "  \"wall_s\": {:.4},\n",
                "  \"sp\": {{\"generated\": {}, \"exactly_once\": {}, \"in_flight\": {}, ",
                "\"invalid_delivered\": {}, \"violations\": {}, \"violation_list\": [{}]}},\n",
                "  \"primaries_delivered\": {},\n",
                "  \"throughput_msgs_per_s\": {:.1},\n",
                "  \"latency_us\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, ",
                "\"p99\": {}, \"p999\": {}, \"max\": {}}},\n",
                "  \"counters\": {{\"frames_sent\": {}, \"frames_received\": {}, ",
                "\"heartbeats_sent\": {}, \"reconnects\": {}, \"chaos_dropped\": {}, ",
                "\"chaos_duplicated\": {}, \"chaos_reordered\": {}, \"partition_dropped\": {}, ",
                "\"backpressure_stalls\": {}, \"inbound_shed\": {}}},\n",
                "  \"io\": {{\"mode\": \"{}\", \"write_syscalls\": {}, \"read_syscalls\": {}, ",
                "\"conn_frames_dropped\": {}, \"frames_per_write\": {{\"count\": {}, ",
                "\"mean\": {:.2}, \"p50\": {}, \"p99\": {}, \"max\": {}}}}}\n",
                "}}"
            ),
            self.topology,
            self.n,
            self.seed,
            self.converged,
            self.wall_s,
            v.generated,
            v.exactly_once,
            v.in_flight,
            v.invalid_delivered,
            v.violations.len(),
            violations
                .iter()
                .map(|s| format!("\"{}\"", s.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(", "),
            self.primaries_delivered,
            self.throughput,
            self.latency.count(),
            self.latency.mean(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.95),
            self.latency.quantile(0.99),
            self.latency.quantile(0.999),
            self.latency.max(),
            c.frames_sent,
            c.frames_received,
            c.heartbeats_sent,
            c.reconnects,
            c.chaos_dropped,
            c.chaos_duplicated,
            c.chaos_reordered,
            c.partition_dropped,
            c.backpressure_stalls,
            c.inbound_shed,
            self.io.as_str(),
            c.write_syscalls,
            c.read_syscalls,
            c.conn_frames_dropped,
            self.batch.count(),
            self.batch.mean(),
            self.batch.quantile(0.50),
            self.batch.quantile(0.99),
            self.batch.max(),
        )
    }
}

/// Picks the partitioned edge for a run seed: a deterministic function of
/// `(graph, seed)`, so process and thread modes agree.
pub fn pick_partition(graph: &Graph, seed: u64, from_arrival: u64, len: u64) -> PartitionSpec {
    let edges = graph.edges();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9A27_11E5_0DD5_EEDF);
    let (a, b) = edges[rng.gen_range(0..edges.len())];
    PartitionSpec {
        a,
        b,
        from_arrival,
        len,
    }
}

enum NodeHandle {
    Thread {
        ctrl_w: UnixStream,
        join: JoinHandle<io::Result<NodeReport>>,
    },
    Proc {
        child: Child,
        stdin: std::process::ChildStdin,
    },
}

impl NodeHandle {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            NodeHandle::Thread { ctrl_w, .. } => {
                writeln!(ctrl_w, "{line}")?;
                ctrl_w.flush()
            }
            NodeHandle::Proc { stdin, .. } => {
                writeln!(stdin, "{line}")?;
                stdin.flush()
            }
        }
    }

    fn finish(self) {
        match self {
            NodeHandle::Thread { ctrl_w, join } => {
                drop(ctrl_w);
                let _ = join.join();
            }
            NodeHandle::Proc { mut child, stdin } => {
                drop(stdin);
                let deadline = Instant::now() + TUNING.proc_exit_grace();
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            thread::sleep(TUNING.proc_wait_poll());
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        }
    }
}

fn spawn_line_reader(id: usize, r: impl Read + Send + 'static, tx: TrackedSender<(usize, String)>) {
    spawn_registered(COMPONENT, "orch.line-reader", move || {
        for line in BufReader::new(r).lines() {
            let Ok(line) = line else { return };
            if tx.send((id, line)) == SendOutcome::Disconnected {
                return;
            }
        }
    });
}

/// Serializes a node config into `--node-worker` CLI arguments (the
/// inverse of [`parse_node_args`]).
pub fn node_args(cfg: &NodeConfig) -> Vec<String> {
    let edges = cfg
        .edges
        .iter()
        .map(|(a, b)| format!("{a}-{b}"))
        .collect::<Vec<_>>()
        .join(",");
    let listen = match &cfg.listen {
        ListenSpec::Uds { dir } => format!("uds:{}", dir.display()),
        ListenSpec::Tcp => "tcp".to_string(),
    };
    let workload = match cfg.workload.kind {
        WorkloadKind::Open { rate_per_sec } => {
            format!("open:{rate_per_sec}:{}", cfg.workload.messages)
        }
        WorkloadKind::Closed { outstanding } => {
            format!("closed:{outstanding}:{}", cfg.workload.messages)
        }
    };
    let mut chaos = format!("{}:{}", cfg.chaos.seed, cfg.chaos.faults_per_link);
    if let Some(p) = cfg.chaos.partition {
        chaos.push_str(&format!(":{}-{}:{}:{}", p.a, p.b, p.from_arrival, p.len));
    }
    vec![
        "--id".into(),
        cfg.node.to_string(),
        "--n".into(),
        cfg.n.to_string(),
        "--edges".into(),
        edges,
        "--seed".into(),
        cfg.seed.to_string(),
        "--listen".into(),
        listen,
        "--io".into(),
        cfg.io.as_str().into(),
        "--workload".into(),
        workload,
        "--chaos".into(),
        chaos,
    ]
}

/// Parses the arguments produced by [`node_args`]. `Err` carries a usage
/// message.
pub fn parse_node_args(args: &[String]) -> Result<NodeConfig, String> {
    let mut cfg = NodeConfig {
        node: usize::MAX,
        n: 0,
        edges: Vec::new(),
        seed: 0,
        listen: ListenSpec::Tcp,
        io: IoMode::default(),
        workload: WorkloadSpec {
            kind: WorkloadKind::Closed { outstanding: 1 },
            messages: 0,
        },
        chaos: ChaosSpec::none(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--id" => cfg.node = val()?.parse().map_err(|e| format!("--id: {e}"))?,
            "--n" => cfg.n = val()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--edges" => {
                for pair in val()?.split(',') {
                    let (a, b) = pair
                        .split_once('-')
                        .ok_or_else(|| format!("bad edge {pair:?}"))?;
                    cfg.edges.push((
                        a.parse().map_err(|e| format!("edge: {e}"))?,
                        b.parse().map_err(|e| format!("edge: {e}"))?,
                    ));
                }
            }
            "--seed" => cfg.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--listen" => {
                let v = val()?;
                cfg.listen = if v == "tcp" {
                    ListenSpec::Tcp
                } else if let Some(dir) = v.strip_prefix("uds:") {
                    ListenSpec::Uds {
                        dir: PathBuf::from(dir),
                    }
                } else {
                    return Err(format!("bad --listen {v:?}"));
                };
            }
            "--io" => {
                let v = val()?;
                cfg.io = IoMode::parse(v).ok_or_else(|| format!("bad --io {v:?}"))?;
            }
            "--workload" => cfg.workload = parse_workload(val()?)?,
            "--chaos" => cfg.chaos = parse_chaos(val()?)?,
            other => return Err(format!("unknown node-worker flag {other:?}")),
        }
    }
    if cfg.node == usize::MAX || cfg.n == 0 || cfg.edges.is_empty() {
        return Err("--id, --n and --edges are required".into());
    }
    Ok(cfg)
}

/// Parses `open:<rate>:<msgs>` / `closed:<k>:<msgs>`.
pub fn parse_workload(s: &str) -> Result<WorkloadSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let bad = || format!("bad workload {s:?} (want open:<rate>:<msgs> or closed:<k>:<msgs>)");
    if parts.len() != 3 {
        return Err(bad());
    }
    let messages: u64 = parts[2].parse().map_err(|_| bad())?;
    let kind = match parts[0] {
        "open" => WorkloadKind::Open {
            rate_per_sec: parts[1].parse().map_err(|_| bad())?,
        },
        "closed" => WorkloadKind::Closed {
            outstanding: parts[1].parse().map_err(|_| bad())?,
        },
        _ => return Err(bad()),
    };
    Ok(WorkloadSpec { kind, messages })
}

/// Parses `<seed>:<faults>[:<a>-<b>:<from>:<len>]`.
pub fn parse_chaos(s: &str) -> Result<ChaosSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let bad = || format!("bad chaos {s:?} (want <seed>:<faults>[:<a>-<b>:<from>:<len>])");
    if parts.len() != 2 && parts.len() != 5 {
        return Err(bad());
    }
    let mut spec = ChaosSpec {
        seed: parts[0].parse().map_err(|_| bad())?,
        faults_per_link: parts[1].parse().map_err(|_| bad())?,
        partition: None,
    };
    if parts.len() == 5 {
        let (a, b) = parts[2].split_once('-').ok_or_else(bad)?;
        spec.partition = Some(PartitionSpec {
            a: a.parse().map_err(|_| bad())?,
            b: b.parse().map_err(|_| bad())?,
            from_arrival: parts[3].parse().map_err(|_| bad())?,
            len: parts[4].parse().map_err(|_| bad())?,
        });
    }
    Ok(spec)
}

fn node_config(spec: &ClusterSpec, p: usize) -> NodeConfig {
    NodeConfig {
        node: p,
        n: spec.graph.n(),
        edges: spec.graph.edges().to_vec(),
        seed: spec.seed,
        listen: spec.listen.clone(),
        io: spec.io,
        workload: spec.workload,
        chaos: spec.chaos,
    }
}

/// Runs a cluster to convergence (or timeout) and reconciles the ledgers.
pub fn run_cluster(spec: &ClusterSpec) -> io::Result<RunReport> {
    register_thread(COMPONENT, "orch.main");
    let model = crate::conc::model(&TUNING);
    let n = spec.graph.n();
    let (line_tx, line_rx, _line_stats) =
        tracked_channel::<(usize, String)>(COMPONENT, model.channel_decl("orch.lines"));
    let mut handles: Vec<NodeHandle> = Vec::with_capacity(n);

    for p in 0..n {
        let cfg = node_config(spec, p);
        match &spec.mode {
            RunMode::Inproc => {
                let (orch_side, node_side) = UnixStream::pair()?;
                let node_r = node_side.try_clone()?;
                let join = spawn_registered(COMPONENT, "node.main", move || {
                    node_main(&cfg, node_r, node_side)
                });
                spawn_line_reader(p, orch_side.try_clone()?, line_tx.clone());
                handles.push(NodeHandle::Thread {
                    ctrl_w: orch_side,
                    join,
                });
            }
            RunMode::Proc { exe } => {
                let mut child = Command::new(exe)
                    .arg("--node-worker")
                    .args(node_args(&cfg))
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()?;
                let stdin = child.stdin.take().expect("piped stdin");
                let stdout = child.stdout.take().expect("piped stdout");
                spawn_line_reader(p, stdout, line_tx.clone());
                handles.push(NodeHandle::Proc { child, stdin });
            }
        }
    }
    drop(line_tx);

    let recv_or_timeout = |rx: &Receiver<(usize, String)>,
                           deadline: Instant|
     -> io::Result<Option<(usize, String)>> {
        let now = Instant::now();
        if now >= deadline {
            return Ok(None);
        }
        match rx.recv_timeout(deadline - now) {
            Ok(v) => Ok(Some(v)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::other("every node hung up before reporting"))
            }
        }
    };

    // --- gather ready addresses ---
    let setup_deadline = Instant::now() + spec.timeout;
    let mut addrs: Vec<Option<String>> = vec![None; n];
    let mut pending_lines: Vec<(usize, String)> = Vec::new();
    while addrs.iter().any(Option::is_none) {
        let Some((p, line)) = recv_or_timeout(&line_rx, setup_deadline)? else {
            for h in handles {
                h.finish();
            }
            return Err(io::Error::other("timed out waiting for ready"));
        };
        if let Some(addr) = line.strip_prefix("ready ") {
            addrs[p] = Some(addr.to_string());
        } else {
            pending_lines.push((p, line));
        }
    }
    let peer_line = format!(
        "peers {}",
        addrs
            .iter()
            .map(|a| a.as_deref().expect("all ready"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for h in &mut handles {
        h.write_line(&peer_line)?;
    }
    for h in &mut handles {
        h.write_line("start")?;
    }

    // --- watch status until converged or timed out ---
    #[derive(Clone, Copy, Default, PartialEq)]
    struct Status {
        done: bool,
        generated: u64,
        delivered: u64,
        held: u64,
    }
    let started = Instant::now();
    let deadline = started + spec.timeout;
    let mut status: Vec<Status> = vec![Status::default(); n];
    let mut last_snapshot: Option<Vec<Status>> = None;
    let mut stable: u32 = 0;
    let mut converged = false;
    let mut wall_s;
    loop {
        wall_s = started.elapsed().as_secs_f64();
        let next = if let Some(l) = pending_lines.pop() {
            Some(l)
        } else {
            recv_or_timeout(&line_rx, deadline)?
        };
        let Some((p, line)) = next else {
            break; // timeout: not converged
        };
        let mut it = line.split_whitespace();
        if it.next() != Some("status") {
            continue;
        }
        let mut num = || it.next().and_then(|t| t.parse::<u64>().ok()).unwrap_or(0);
        status[p] = Status {
            done: num() == 1,
            generated: num(),
            delivered: num(),
            held: num(),
        };
        let all_done = status.iter().all(|s| s.done);
        let held: u64 = status.iter().map(|s| s.held).sum();
        let generated: u64 = status.iter().map(|s| s.generated).sum();
        let delivered: u64 = status.iter().map(|s| s.delivered).sum();
        if all_done && held == 0 && generated == delivered && generated > 0 {
            if last_snapshot.as_deref() == Some(&status[..]) {
                stable += 1;
                if stable >= TUNING.stable_snapshots {
                    converged = true;
                    wall_s = started.elapsed().as_secs_f64();
                    break;
                }
            } else {
                last_snapshot = Some(status.clone());
                stable = 1;
            }
        } else {
            last_snapshot = None;
            stable = 0;
        }
    }

    // --- stop everyone, collect reports ---
    for h in &mut handles {
        let _ = h.write_line("stop");
    }
    let report_deadline = Instant::now() + TUNING.report_grace();
    let mut bufs: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut ended = vec![false; n];
    while ended.iter().any(|e| !e) {
        let Some((p, line)) = recv_or_timeout(&line_rx, report_deadline)? else {
            break;
        };
        if line == "end" {
            ended[p] = true;
        }
        bufs[p].push(line);
    }
    for h in handles {
        h.finish();
    }

    let mut nodes: Vec<NodeReport> = Vec::with_capacity(n);
    for (p, buf) in bufs.into_iter().enumerate() {
        let mut it = buf
            .into_iter()
            .skip_while(|l| !l.starts_with("report "))
            .skip(1);
        let report = parse_report_body(p, &mut it)
            .ok_or_else(|| io::Error::other(format!("node {p} sent no parsable report")))?;
        nodes.push(report);
    }

    // --- reconcile + aggregate ---
    let ledgers: Vec<NodeLedger> = nodes
        .iter()
        .map(|r| NodeLedger {
            node: r.node,
            generated: r
                .generated
                .iter()
                .map(|&(g, d)| (ghost_to_wire(g), d))
                .collect(),
            delivered: r.delivered.iter().map(|&g| ghost_to_wire(g)).collect(),
            held: r.held.iter().map(|&g| ghost_to_wire(g)).collect(),
        })
        .collect();
    let verdict = reconcile_ledgers(&ledgers);
    let mut latency = LogHistogram::new();
    let mut batch = LogHistogram::new();
    let mut counters = NodeCounters::default();
    let mut primaries_delivered = 0u64;
    for r in &nodes {
        latency.merge(&r.latency);
        batch.merge(&r.batch);
        primaries_delivered += r.delivered.iter().filter(|&&g| !is_ack_ghost(g)).count() as u64;
        let c = &r.counters;
        counters.frames_sent += c.frames_sent;
        counters.frames_received += c.frames_received;
        counters.heartbeats_sent += c.heartbeats_sent;
        counters.reconnects += c.reconnects;
        counters.chaos_dropped += c.chaos_dropped;
        counters.chaos_duplicated += c.chaos_duplicated;
        counters.chaos_reordered += c.chaos_reordered;
        counters.partition_dropped += c.partition_dropped;
        counters.backpressure_stalls += c.backpressure_stalls;
        counters.inbound_shed += c.inbound_shed;
        counters.write_syscalls += c.write_syscalls;
        counters.read_syscalls += c.read_syscalls;
        counters.conn_frames_dropped += c.conn_frames_dropped;
    }
    let throughput = if wall_s > 0.0 {
        primaries_delivered as f64 / wall_s
    } else {
        0.0
    };
    Ok(RunReport {
        topology: spec.topology.clone(),
        n,
        seed: spec.seed,
        converged,
        wall_s,
        verdict,
        primaries_delivered,
        throughput,
        latency,
        batch,
        io: spec.io,
        counters,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_args_roundtrip() {
        let cfg = NodeConfig {
            node: 2,
            n: 5,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            seed: 99,
            listen: ListenSpec::Uds {
                dir: PathBuf::from("/tmp/x"),
            },
            io: IoMode::Blocking,
            workload: WorkloadSpec {
                kind: WorkloadKind::Open {
                    rate_per_sec: 250.0,
                },
                messages: 40,
            },
            chaos: ChaosSpec {
                seed: 7,
                faults_per_link: 3,
                partition: Some(PartitionSpec {
                    a: 1,
                    b: 2,
                    from_arrival: 10,
                    len: 25,
                }),
            },
        };
        let args = node_args(&cfg);
        let back = parse_node_args(&args).unwrap();
        assert_eq!(back.node, cfg.node);
        assert_eq!(back.n, cfg.n);
        assert_eq!(back.edges, cfg.edges);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.listen, cfg.listen);
        assert_eq!(back.io, cfg.io);
        assert_eq!(back.workload, cfg.workload);
        assert_eq!(back.chaos, cfg.chaos);
    }

    #[test]
    fn io_mode_defaults_to_event_when_flag_absent() {
        let args: Vec<String> = [
            "--id",
            "0",
            "--n",
            "2",
            "--edges",
            "0-1",
            "--seed",
            "1",
            "--listen",
            "tcp",
            "--workload",
            "closed:1:1",
            "--chaos",
            "0:0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_node_args(&args).unwrap();
        assert_eq!(cfg.io, IoMode::Event);
        assert!(parse_node_args(&["--io".to_string(), "epoll".to_string()]).is_err());
    }

    #[test]
    fn workload_and_chaos_parsers_reject_garbage() {
        assert!(parse_workload("open:fast:10").is_err());
        assert!(parse_workload("poisson:1:10").is_err());
        assert!(parse_chaos("1").is_err());
        assert!(parse_chaos("1:2:0-1:5").is_err());
        assert!(parse_workload("closed:4:100").is_ok());
        assert!(parse_chaos("3:2:0-4:10:40").is_ok());
    }

    #[test]
    fn partition_pick_is_deterministic() {
        let g = ssmfp_topology::gen::ring(6);
        let a = pick_partition(&g, 11, 5, 30);
        let b = pick_partition(&g, 11, 5, 30);
        assert_eq!(a, b);
        assert!(g.has_edge(a.a, a.b));
    }
}
